//! Crash-consistent write-ahead job journal.
//!
//! The journal is one append-only file (`journal.wal` under the server's
//! `checkpoint_root`) recording every job admission, every trace line a
//! runner emits, the last durable iteration at each suspend point, and
//! each job's terminal frame. A daemon killed with `SIGKILL` mid-run
//! recovers *all* tenant jobs on restart by replaying the journal —
//! completed jobs come back with their full replayable event log, and
//! interrupted jobs are re-admitted with their log truncated to the
//! prefix covered by their newest on-disk checkpoint, so the resumed
//! session re-emits the remainder byte-identically.
//!
//! ## Record framing
//!
//! Each record is `[u32 len][u64 fnv1a(payload)][payload]`, all
//! little-endian, with the payload built by [`yoso_persist::ByteWriter`]
//! (the same checksummed container discipline as the snapshot format).
//! The framing gives the reader two distinct failure modes:
//!
//! * **torn tail** — the file ends mid-record, or the declared length is
//!   implausible (`0` or beyond [`MAX_RECORD_LEN`]). This is the
//!   expected signature of a crash during an append; recovery stops
//!   there and everything before it is intact.
//! * **corrupt record** — the length is plausible but the checksum (or
//!   the payload decode) fails. Recovery *skips* that record and keeps
//!   scanning at the next boundary; a job whose `admit` record is the
//!   casualty is skipped as a whole (typed in
//!   [`Recovery::corrupt_records`] / [`Recovery::orphan_lines`]), never
//!   a crash.
//!
//! ## Durability model
//!
//! Appends go through the OS page cache; a `SIGKILL` loses nothing that
//! `write(2)` returned for, so kill-9 recovery does not depend on fsync
//! at all. `fsync` (counted in `server.journal_fsyncs`) matters only for
//! power loss and is issued every `fsync_every` appends plus at every
//! terminal record, bounding the power-loss exposure window without
//! paying a disk flush per trace line.
//!
//! On startup the server compacts the journal: recovered jobs are
//! rewritten (admit + truncated log + terminal frames) to a tmp file
//! that is fsynced and atomically renamed over the old journal, so
//! replay is idempotent across repeated crashes and the file does not
//! grow without bound across restarts.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use yoso_persist::{fnv1a, ByteReader, ByteWriter};

/// File name of the journal under the server's `checkpoint_root`.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Hard cap on one record's payload length. A declared length beyond
/// this is treated as a torn/corrupt tail, not an allocation request.
pub const MAX_RECORD_LEN: u32 = 4 << 20;

const KIND_ADMIT: u8 = 1;
const KIND_LINE: u8 = 2;
const KIND_DURABLE: u8 = 3;
const KIND_DONE: u8 = 4;
const KIND_RESUMED: u8 = 5;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was admitted; `spec_json` is its `job_spec` frame.
    Admit {
        /// Server-assigned job id.
        job: u64,
        /// The spec's standalone frame form.
        spec_json: String,
    },
    /// One trace line a runner emitted for the job.
    Line {
        /// Which job emitted it.
        job: u64,
        /// The raw JSONL trace line.
        line: String,
    },
    /// The job reached a durable point: a checkpoint covering
    /// `iteration` completed iterations is on disk.
    Durable {
        /// Which job.
        job: u64,
        /// Completed iterations the checkpoint covers.
        iteration: u64,
    },
    /// The job finished; `done_json` is its `job_done` frame and
    /// `pareto_json` the `pareto_front` frame for completed runs.
    Done {
        /// Which job.
        job: u64,
        /// Serialized `job_done` reply frame.
        done_json: String,
        /// Serialized `pareto_front` reply frame, when the run
        /// completed successfully.
        pareto_json: Option<String>,
    },
    /// A previously finished (suspended) job was resumed: its terminal
    /// frame no longer describes it, so recovery must treat it as
    /// in-flight again.
    Resumed {
        /// Which job.
        job: u64,
    },
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::Admit { job, spec_json } => {
                w.put_u8(KIND_ADMIT);
                w.put_u64(*job);
                w.put_str(spec_json);
            }
            Record::Line { job, line } => {
                w.put_u8(KIND_LINE);
                w.put_u64(*job);
                w.put_str(line);
            }
            Record::Durable { job, iteration } => {
                w.put_u8(KIND_DURABLE);
                w.put_u64(*job);
                w.put_u64(*iteration);
            }
            Record::Done {
                job,
                done_json,
                pareto_json,
            } => {
                w.put_u8(KIND_DONE);
                w.put_u64(*job);
                w.put_str(done_json);
                w.put_bool(pareto_json.is_some());
                if let Some(p) = pareto_json {
                    w.put_str(p);
                }
            }
            Record::Resumed { job } => {
                w.put_u8(KIND_RESUMED);
                w.put_u64(*job);
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = ByteReader::new(payload);
        let kind = r.take_u8().ok()?;
        let job = r.take_u64().ok()?;
        Some(match kind {
            KIND_ADMIT => Record::Admit {
                job,
                spec_json: r.take_str().ok()?,
            },
            KIND_LINE => Record::Line {
                job,
                line: r.take_str().ok()?,
            },
            KIND_DURABLE => Record::Durable {
                job,
                iteration: r.take_u64().ok()?,
            },
            KIND_DONE => {
                let done_json = r.take_str().ok()?;
                let pareto_json = if r.take_bool().ok()? {
                    Some(r.take_str().ok()?)
                } else {
                    None
                };
                Record::Done {
                    job,
                    done_json,
                    pareto_json,
                }
            }
            KIND_RESUMED => Record::Resumed { job },
            _ => return None,
        })
    }

    fn frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// True for records that should force a flush to disk regardless of
    /// the fsync cadence (admissions and terminal frames — the records
    /// recovery cannot reconstruct from anywhere else).
    fn is_boundary(&self) -> bool {
        matches!(
            self,
            Record::Admit { .. }
                | Record::Done { .. }
                | Record::Durable { .. }
                | Record::Resumed { .. }
        )
    }
}

/// Append handle to the journal file.
pub struct Journal {
    file: File,
    /// `fsync` every this many appends (`0` = never on cadence; boundary
    /// records still sync).
    fsync_every: u64,
    appends_since_sync: u64,
    fsyncs: u64,
}

impl Journal {
    /// Opens (creating if missing) the journal under `root` in append
    /// mode.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: &Path, fsync_every: u64) -> io::Result<Journal> {
        std::fs::create_dir_all(root)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(root.join(JOURNAL_FILE))?;
        Ok(Journal {
            file,
            fsync_every,
            appends_since_sync: 0,
            fsyncs: 0,
        })
    }

    /// Appends one record; returns whether this append fsynced.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, rec: &Record) -> io::Result<bool> {
        self.file.write_all(&rec.frame())?;
        self.appends_since_sync += 1;
        let due = rec.is_boundary()
            || (self.fsync_every > 0 && self.appends_since_sync >= self.fsync_every);
        if due {
            self.sync()?;
        }
        Ok(due)
    }

    /// Forces an fsync of everything appended so far.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        self.fsyncs += 1;
        Ok(())
    }

    /// `fsync` calls issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// Server-assigned id from the admit record.
    pub job: u64,
    /// The spec's `job_spec` frame.
    pub spec_json: String,
    /// Trace lines journaled for the job, in emit order.
    pub lines: Vec<String>,
    /// Highest durable iteration recorded (suspend points).
    pub durable: Option<u64>,
    /// Terminal `job_done` frame, when the job finished.
    pub done_json: Option<String>,
    /// `pareto_front` frame for completed runs.
    pub pareto_json: Option<String>,
}

/// Everything a journal scan reconstructs, plus its damage report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Recovered jobs in ascending id order.
    pub jobs: Vec<RecoveredJob>,
    /// Records whose checksum or payload decode failed and were
    /// skipped.
    pub corrupt_records: u64,
    /// Line/durable/done records referencing a job with no (valid)
    /// admit record — the typed signature of a corrupt admission, which
    /// skips the whole job rather than crashing.
    pub orphan_lines: u64,
    /// True when the scan stopped at a torn tail (crash mid-append).
    pub torn_tail: bool,
}

impl Recovery {
    /// Highest job id seen, for seeding the server's id counter.
    pub fn max_job_id(&self) -> u64 {
        self.jobs.iter().map(|j| j.job).max().unwrap_or(0)
    }
}

/// Scans the journal under `root` and reconstructs per-job state.
/// Missing journal ⇒ empty recovery. Never fails on damaged contents:
/// corrupt records are skipped (and counted), a torn tail stops the
/// scan.
///
/// # Errors
///
/// Propagates only filesystem read errors (not content damage).
pub fn recover(root: &Path) -> io::Result<Recovery> {
    let path = root.join(JOURNAL_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovery::default()),
        Err(e) => return Err(e),
    }

    let mut rec = Recovery::default();
    let mut jobs: Vec<RecoveredJob> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 12 {
            rec.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len == 0 || len > MAX_RECORD_LEN {
            rec.torn_tail = true;
            break;
        }
        let len = len as usize;
        if bytes.len() - pos - 12 < len {
            rec.torn_tail = true;
            break;
        }
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[pos + 4..pos + 12]);
        let checksum = u64::from_le_bytes(sum);
        let payload = &bytes[pos + 12..pos + 12 + len];
        pos += 12 + len;
        if fnv1a(payload) != checksum {
            rec.corrupt_records += 1;
            continue;
        }
        let Some(record) = Record::decode(payload) else {
            rec.corrupt_records += 1;
            continue;
        };
        match record {
            Record::Admit { job, spec_json } => {
                if jobs.iter().all(|j| j.job != job) {
                    jobs.push(RecoveredJob {
                        job,
                        spec_json,
                        lines: Vec::new(),
                        durable: None,
                        done_json: None,
                        pareto_json: None,
                    });
                }
            }
            Record::Line { job, line } => match jobs.iter_mut().find(|j| j.job == job) {
                Some(j) => j.lines.push(line),
                None => rec.orphan_lines += 1,
            },
            Record::Durable { job, iteration } => match jobs.iter_mut().find(|j| j.job == job) {
                Some(j) => j.durable = Some(j.durable.map_or(iteration, |d| d.max(iteration))),
                None => rec.orphan_lines += 1,
            },
            Record::Done {
                job,
                done_json,
                pareto_json,
            } => match jobs.iter_mut().find(|j| j.job == job) {
                Some(j) => {
                    j.done_json = Some(done_json);
                    j.pareto_json = pareto_json;
                }
                None => rec.orphan_lines += 1,
            },
            Record::Resumed { job } => match jobs.iter_mut().find(|j| j.job == job) {
                Some(j) => {
                    j.done_json = None;
                    j.pareto_json = None;
                }
                None => rec.orphan_lines += 1,
            },
        }
    }
    jobs.sort_by_key(|j| j.job);
    rec.jobs = jobs;
    Ok(rec)
}

/// Rewrites the journal under `root` to exactly the given jobs
/// (compaction), using the tmp + fsync + atomic-rename discipline, and
/// returns a fresh append handle onto the rewritten file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn rewrite(root: &Path, jobs: &[RecoveredJob], fsync_every: u64) -> io::Result<Journal> {
    std::fs::create_dir_all(root)?;
    let tmp = root.join(format!("{JOURNAL_FILE}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        for j in jobs {
            f.write_all(
                &Record::Admit {
                    job: j.job,
                    spec_json: j.spec_json.clone(),
                }
                .frame(),
            )?;
            for line in &j.lines {
                f.write_all(
                    &Record::Line {
                        job: j.job,
                        line: line.clone(),
                    }
                    .frame(),
                )?;
            }
            if let Some(iteration) = j.durable {
                f.write_all(
                    &Record::Durable {
                        job: j.job,
                        iteration,
                    }
                    .frame(),
                )?;
            }
            if let Some(done_json) = &j.done_json {
                f.write_all(
                    &Record::Done {
                        job: j.job,
                        done_json: done_json.clone(),
                        pareto_json: j.pareto_json.clone(),
                    }
                    .frame(),
                )?;
            }
        }
        f.sync_data()?;
    }
    std::fs::rename(&tmp, root.join(JOURNAL_FILE))?;
    if let Ok(dir) = File::open(root) {
        let _ = dir.sync_data();
    }
    let mut journal = Journal::open(root, fsync_every)?;
    journal.fsyncs = 1; // the rewrite's own sync
    Ok(journal)
}

/// The journal path under `root` (for tests and tooling).
pub fn journal_path(root: &Path) -> PathBuf {
    root.join(JOURNAL_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SALT: AtomicU64 = AtomicU64::new(0);
        let n = SALT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("yoso_journal_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn write_job(root: &Path, job: u64, lines: &[&str], done: bool) {
        let mut j = Journal::open(root, 0).expect("open");
        j.append(&Record::Admit {
            job,
            spec_json: format!("{{\"event\":\"job_spec\",\"job\":{job}}}"),
        })
        .expect("admit");
        for line in lines {
            j.append(&Record::Line {
                job,
                line: (*line).to_string(),
            })
            .expect("line");
        }
        if done {
            j.append(&Record::Done {
                job,
                done_json: format!("{{\"event\":\"job_done\",\"job\":{job}}}"),
                pareto_json: None,
            })
            .expect("done");
        }
    }

    #[test]
    fn records_round_trip_through_the_frame_codec() {
        let records = vec![
            Record::Admit {
                job: 7,
                spec_json: "{\"event\":\"job_spec\"}".to_string(),
            },
            Record::Line {
                job: 7,
                line: "{\"event\":\"search_iter\",\"iteration\":0}".to_string(),
            },
            Record::Durable {
                job: 7,
                iteration: 12,
            },
            Record::Done {
                job: 7,
                done_json: "{\"event\":\"job_done\"}".to_string(),
                pareto_json: Some("{\"event\":\"pareto_front\"}".to_string()),
            },
        ];
        for rec in records {
            let frame = rec.frame();
            let payload = &frame[12..];
            assert_eq!(Record::decode(payload), Some(rec));
        }
    }

    #[test]
    fn append_and_recover_round_trip() {
        let root = temp_root("roundtrip");
        write_job(&root, 1, &["l0", "l1"], true);
        write_job(&root, 2, &["a"], false);
        let rec = recover(&root).expect("recover");
        assert_eq!(rec.corrupt_records, 0);
        assert!(!rec.torn_tail);
        assert_eq!(rec.jobs.len(), 2);
        assert_eq!(rec.jobs[0].job, 1);
        assert_eq!(rec.jobs[0].lines, vec!["l0", "l1"]);
        assert!(rec.jobs[0].done_json.is_some());
        assert_eq!(rec.jobs[1].job, 2);
        assert!(rec.jobs[1].done_json.is_none());
        assert_eq!(rec.max_job_id(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_journal_recovers_empty() {
        let root = temp_root("missing");
        let rec = recover(&root).expect("recover");
        assert_eq!(rec, Recovery::default());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_stops_the_scan_but_keeps_the_prefix() {
        let root = temp_root("torn");
        write_job(&root, 1, &["l0", "l1"], false);
        // Simulate a crash mid-append: chop bytes off the file tail.
        let path = journal_path(&root);
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        let rec = recover(&root).expect("recover");
        assert!(rec.torn_tail);
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].lines, vec!["l0"], "prefix before the tear");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let root = temp_root("corrupt");
        write_job(&root, 1, &["l0", "l1", "l2"], false);
        // Flip a payload byte inside the second line record; its
        // checksum no longer matches, so recovery must skip exactly it.
        let path = journal_path(&root);
        let mut bytes = std::fs::read(&path).expect("read");
        let needle = b"l1";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("find l1");
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let rec = recover(&root).expect("recover");
        assert_eq!(rec.corrupt_records, 1);
        assert!(!rec.torn_tail);
        assert_eq!(rec.jobs[0].lines, vec!["l0", "l2"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_admit_skips_the_whole_job() {
        let root = temp_root("orphan");
        write_job(&root, 1, &["a0"], false);
        write_job(&root, 2, &["b0", "b1"], false);
        // Corrupt job 2's admit record payload.
        let path = journal_path(&root);
        let mut bytes = std::fs::read(&path).expect("read");
        let needle = b"\"job\":2";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("find admit 2");
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let rec = recover(&root).expect("recover");
        assert_eq!(rec.corrupt_records, 1);
        assert_eq!(rec.orphan_lines, 2, "job 2's lines are orphaned");
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].job, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn resumed_record_clears_the_terminal_frame() {
        let root = temp_root("resumed");
        write_job(&root, 1, &["l0"], true);
        let mut j = Journal::open(&root, 0).expect("open");
        j.append(&Record::Resumed { job: 1 }).expect("resumed");
        drop(j);
        let rec = recover(&root).expect("recover");
        assert_eq!(rec.jobs.len(), 1);
        assert!(rec.jobs[0].done_json.is_none(), "resume voided the done");
        assert_eq!(rec.jobs[0].lines, vec!["l0"], "lines survive the resume");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rewrite_compacts_idempotently() {
        let root = temp_root("rewrite");
        write_job(&root, 1, &["l0", "l1"], true);
        write_job(&root, 2, &["a"], false);
        let before = recover(&root).expect("recover");
        let size_before = std::fs::metadata(journal_path(&root)).expect("stat").len();
        // Compact with job 2's log truncated (as startup recovery does).
        let mut jobs = before.jobs.clone();
        jobs[1].lines.clear();
        let journal = rewrite(&root, &jobs, 0).expect("rewrite");
        assert_eq!(journal.fsyncs(), 1);
        drop(journal);
        let after = recover(&root).expect("recover");
        assert_eq!(after.jobs, jobs);
        let size_after = std::fs::metadata(journal_path(&root)).expect("stat").len();
        assert!(size_after < size_before);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsync_cadence_counts_boundary_and_periodic_syncs() {
        let root = temp_root("fsync");
        let mut j = Journal::open(&root, 3).expect("open");
        let synced = j
            .append(&Record::Admit {
                job: 1,
                spec_json: "{}".to_string(),
            })
            .expect("admit");
        assert!(synced, "admissions always sync");
        let mut periodic = 0;
        for i in 0..9 {
            if j.append(&Record::Line {
                job: 1,
                line: format!("l{i}"),
            })
            .expect("line")
            {
                periodic += 1;
            }
        }
        assert_eq!(periodic, 3, "every 3rd line append syncs");
        assert_eq!(j.fsyncs(), 4);
        let _ = std::fs::remove_dir_all(&root);
    }
}
