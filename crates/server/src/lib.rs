//! # yoso-server
//!
//! Co-design-as-a-service: a multi-tenant search daemon over
//! [`yoso_core::session::SearchSession`].
//!
//! The server listens on plain TCP and speaks the versioned framed-JSON
//! protocol defined in [`proto`] (one newline-terminated flat JSON
//! object per frame — no external async runtime, no serde on the wire).
//! Each accepted job runs as a `SearchSession` on a fixed pool of
//! runner threads; its structured trace stream is captured live through
//! a [`yoso_trace::Trace::forward`] sink and fanned out byte-identical
//! to every subscribed connection, so a served job's `search_iter`
//! JSONL is exactly what the same seed produces in-process.
//!
//! Multi-tenancy:
//!
//! * **Shared simulator cache** — all tenants hit the process-wide
//!   [`yoso_accel::cache`]; runner threads tag themselves with
//!   [`yoso_accel::cache::set_thread_tenant`] so per-tenant hit rates
//!   are accounted (`tenant_stats`), and a design point simulated for
//!   one tenant is a cache hit for every other.
//! * **Admission control** — at most `max_concurrent_jobs` run at
//!   once; up to `queue_capacity` more wait in a FIFO queue; beyond
//!   that submits are refused with
//!   [`proto::ErrorCode::AdmissionFull`] (backpressure, not
//!   buffering).
//! * **Fault isolation** — runner threads enter a per-tenant
//!   [`yoso_chaos`] scope ([`yoso_chaos::scope_for`] of the tenant
//!   name), so tenant-scoped fault rules hit only that tenant's jobs;
//!   each tenant's injected faults and quarantined candidates accrue
//!   to a ledger, and once a configured `tenant_fault_budget` is
//!   exhausted further submissions from that tenant are refused with
//!   [`proto::ErrorCode::FaultBudgetExhausted`].
//!
//! Serving resilience (DESIGN.md §13):
//!
//! * **Crash consistency** — with a `checkpoint_root` configured, every
//!   admission, trace line and terminal frame is appended to a
//!   checksummed write-ahead [`journal`]; a daemon killed with
//!   `SIGKILL` mid-run recovers *all* tenant jobs on restart
//!   (interrupted jobs auto-resume from their newest checkpoint and
//!   replay `search_iter` streams byte-identically; finished jobs come
//!   back fully replayable).
//! * **Connection hardening** — per-connection read/write deadlines,
//!   heartbeat `ping`/`pong` probes on idle connections, bounded
//!   per-subscriber write queues with slow-consumer eviction, and a
//!   graceful drain shutdown with a deadline (counters:
//!   `server.slow_client_evictions`, `server.heartbeats_missed`,
//!   `server.journal_fsyncs`, `server.drain_timeouts`).
//! * **Network chaos** — the outbound write path is instrumented with
//!   the `conn_drop` / `partial_write` / `stall` / `garbage_frame`
//!   fault kinds of [`yoso_chaos`], so a seeded plan can prove clients
//!   self-heal (see `yoso-client`'s `ResilientClient`).
//!
//! Suspend/resume rides on the session's crash-safe checkpoints
//! ([`yoso_persist`] snapshots): a `suspend` request raises the job's
//! cancel flag, the session stops at the next update boundary and
//! writes a suspend checkpoint, and a later `resume` — on this server
//! process *or a freshly restarted one* — replays bit-identically from
//! the `spec.json` + checkpoint persisted under
//! `checkpoint_root/<job>/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod proto;

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use proto::{ErrorCode, JobDone, JobSpec, JobState, JobStatus, Reply, Request, ServerStats};
use yoso_arch::NetworkSkeleton;
use yoso_chaos::FaultKind;
use yoso_core::error::Error as CoreError;
use yoso_core::evaluation::SurrogateEvaluator;
use yoso_core::session::SearchSession;
use yoso_trace::Trace;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Runner threads — jobs executing simultaneously.
    pub max_concurrent_jobs: usize,
    /// Jobs allowed to wait beyond the running ones; submits past this
    /// are refused with [`ErrorCode::AdmissionFull`].
    pub queue_capacity: usize,
    /// Cumulative faults (injected + quarantined) a tenant may accrue
    /// before its submissions are refused. `None` disables the ledger
    /// check.
    pub tenant_fault_budget: Option<u64>,
    /// Directory for per-job persistence (`<root>/<job>/spec.json` +
    /// checkpoints) and the write-ahead job journal. `None` disables
    /// suspend-to-disk, across-restart resume and crash recovery.
    pub checkpoint_root: Option<PathBuf>,
    /// Skeleton for the server-side surrogate evaluator; must match
    /// the one an in-process run uses for byte-identical streams.
    pub skeleton: NetworkSkeleton,
    /// Per-connection socket read deadline; doubles as the heartbeat
    /// interval — an idle connection gets a `ping` probe each time the
    /// deadline elapses.
    pub read_timeout: Duration,
    /// Per-connection socket write deadline, so a stalled client can
    /// never pin the connection's writer thread.
    pub write_timeout: Duration,
    /// Consecutive unanswered heartbeat probes before the connection
    /// is declared dead and closed (`server.heartbeats_missed`).
    pub heartbeat_misses: u32,
    /// Bound on a connection's outbound frame queue; a subscriber that
    /// falls this far behind is evicted (`server.slow_client_evictions`)
    /// rather than buffered without bound.
    pub max_subscriber_queue: usize,
    /// How long [`Server::shutdown`] waits for runner threads to drain
    /// before journaling-and-abandoning their jobs
    /// (`server.drain_timeouts`).
    pub drain_timeout: Duration,
    /// Journal fsync cadence: flush to disk every this many appends
    /// (admissions and terminal records always sync). `0` syncs only
    /// at those boundaries.
    pub journal_fsync_every: u64,
    /// Replay the job journal at startup, restoring finished jobs'
    /// replayable logs and auto-resuming interrupted ones. Only
    /// meaningful with a `checkpoint_root`.
    pub recover_jobs: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_concurrent_jobs: 4,
            queue_capacity: 256,
            tenant_fault_budget: None,
            checkpoint_root: None,
            skeleton: NetworkSkeleton::tiny(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            heartbeat_misses: 3,
            max_subscriber_queue: 4096,
            drain_timeout: Duration::from_secs(30),
            journal_fsync_every: 64,
            recover_jobs: true,
        }
    }
}

/// Resilience counters, mirrored into [`yoso_trace`] (`server.*`) and
/// the `server_stats` wire frame.
#[derive(Default)]
struct Counters {
    slow_client_evictions: AtomicU64,
    heartbeats_missed: AtomicU64,
    journal_fsyncs: AtomicU64,
    drain_timeouts: AtomicU64,
    jobs_recovered: AtomicU64,
}

/// Writer half of one client connection: a bounded frame queue drained
/// by a dedicated writer thread, so producers (runner threads pushing
/// job events) never block on a slow socket. A queue overflowing its
/// bound evicts the subscriber — memory stays bounded no matter how
/// stalled the client is. All outbound frames pass the network-chaos
/// injection sites.
struct ConnWriter {
    queue: Mutex<VecDeque<String>>,
    cv: Condvar,
    alive: AtomicBool,
    /// Set when the read loop ends: the writer thread drains what is
    /// queued, then exits.
    closing: AtomicBool,
    cap: usize,
    stream: TcpStream,
    counters: Arc<Counters>,
    /// Salt decorrelating this connection's chaos draws from other
    /// connections'.
    chaos_salt: u64,
}

impl ConnWriter {
    fn new(stream: TcpStream, cap: usize, counters: Arc<Counters>, chaos_salt: u64) -> Self {
        ConnWriter {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            alive: AtomicBool::new(true),
            closing: AtomicBool::new(false),
            cap: cap.max(1),
            stream,
            counters,
            chaos_salt,
        }
    }

    /// Enqueues one frame for the writer thread. Never blocks: if the
    /// queue is at capacity the connection is evicted instead.
    fn send(&self, frame: &str) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.cap {
            drop(q);
            self.counters
                .slow_client_evictions
                .fetch_add(1, Ordering::Relaxed);
            yoso_trace::counter_add("server.slow_client_evictions", 1);
            self.close();
            return;
        }
        q.push_back(frame.to_string());
        drop(q);
        self.cv.notify_one();
    }

    /// Marks the connection for graceful teardown: queued frames are
    /// still written, then the writer thread exits.
    fn finish(&self) {
        self.closing.store(true, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Hard-closes the connection: drops queued frames and shuts the
    /// socket down.
    fn close(&self) {
        self.alive.store(false, Ordering::Relaxed);
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.cv.notify_all();
        let _ = self.stream.shutdown(NetShutdown::Both);
    }

    /// The writer thread body: pops frames and writes them with the
    /// chaos injection sites applied.
    fn writer_loop(self: &Arc<Self>) {
        let mut frame_idx: u64 = 0;
        loop {
            let frame = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(f) = q.pop_front() {
                        break Some(f);
                    }
                    if self.closing.load(Ordering::Relaxed) || !self.alive.load(Ordering::Relaxed) {
                        break None;
                    }
                    q = self.cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(frame) = frame else { return };
            if !self.write_frame(&frame, frame_idx) {
                self.close();
                return;
            }
            frame_idx += 1;
        }
    }

    /// Writes one frame, applying the network fault kinds when a chaos
    /// plan is armed. Returns false when the connection should die.
    fn write_frame(&self, frame: &str, idx: u64) -> bool {
        let mut s = &self.stream;
        if yoso_chaos::armed() {
            if yoso_chaos::should_fault_indexed(FaultKind::ConnDrop, idx, 0, self.chaos_salt) {
                return false;
            }
            if yoso_chaos::should_fault_indexed(FaultKind::Stall, idx, 0, self.chaos_salt) {
                std::thread::sleep(yoso_chaos::delay_of(FaultKind::Stall));
            }
            if yoso_chaos::should_fault_indexed(FaultKind::GarbageFrame, idx, 0, self.chaos_salt)
                && writeln!(s, "\u{1}\u{2}!!not-a-frame!!{{{{").is_err()
            {
                return false;
            }
            if yoso_chaos::should_fault_indexed(FaultKind::PartialWrite, idx, 0, self.chaos_salt) {
                // Half a frame, no newline, then drop the connection —
                // the signature of a peer dying mid-write.
                let half = &frame.as_bytes()[..frame.len() / 2];
                let _ = s.write_all(half).and_then(|()| s.flush());
                return false;
            }
        }
        writeln!(s, "{frame}").and_then(|()| s.flush()).is_ok()
    }
}

/// One job's ordered event log plus its live subscribers. Replay and
/// attach happen under the same lock as appends, so a subscriber sees
/// every line exactly once, in order.
struct JobLog {
    job: u64,
    lines: Vec<String>,
    subs: Vec<Arc<ConnWriter>>,
    /// Pre-serialized `pareto_front` frame for a completed run, sent
    /// right before the `job_done` frame and replayed on `subscribe`.
    pareto: Option<String>,
    done: Option<JobDone>,
}

impl JobLog {
    fn push(&mut self, line: &str) {
        let seq = self.lines.len() as u64;
        self.lines.push(line.to_string());
        if self.subs.is_empty() {
            return;
        }
        let frame = Reply::Event {
            job: self.job,
            seq,
            line: line.to_string(),
        }
        .to_json();
        self.subs.retain(|s| s.alive.load(Ordering::Relaxed));
        for sub in &self.subs {
            sub.send(&frame);
        }
    }

    fn finish(&mut self, pareto: Option<String>, done: JobDone) {
        let frame = Reply::Done(done.clone()).to_json();
        for sub in self.subs.drain(..) {
            if let Some(p) = &pareto {
                sub.send(p);
            }
            sub.send(&frame);
        }
        self.pareto = pareto;
        self.done = Some(done);
    }

    /// Replays the log from event sequence `from` (0 = everything),
    /// then attaches for live events (or the terminal frames, for a
    /// finished job). `from` past the end replays nothing old — the
    /// idempotent-resume contract a reconnecting client relies on.
    fn attach_from(&mut self, sub: Arc<ConnWriter>, from: u64) {
        for (seq, line) in self.lines.iter().enumerate().skip(from as usize) {
            let frame = Reply::Event {
                job: self.job,
                seq: seq as u64,
                line: line.clone(),
            }
            .to_json();
            sub.send(&frame);
        }
        if let Some(done) = &self.done {
            if let Some(p) = &self.pareto {
                sub.send(p);
            }
            sub.send(&Reply::Done(done.clone()).to_json());
        } else {
            self.subs.push(sub);
        }
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    iterations_done: Arc<AtomicU64>,
    best_reward: Option<f64>,
    error: Option<String>,
    checkpoint: Option<PathBuf>,
    log: Arc<Mutex<JobLog>>,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Job {
        Job {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            iterations_done: Arc::new(AtomicU64::new(0)),
            best_reward: None,
            error: None,
            checkpoint: None,
            log: Arc::new(Mutex::new(JobLog {
                job: id,
                lines: Vec::new(),
                subs: Vec::new(),
                pareto: None,
                done: None,
            })),
        }
    }

    fn status(&self, id: u64) -> JobStatus {
        JobStatus {
            job: id,
            tenant: self.spec.tenant.clone(),
            state: self.state,
            iterations_done: self.iterations_done.load(Ordering::Relaxed),
            iterations_total: self.spec.config.iterations as u64,
            best_reward: self.best_reward,
            error: self.error.clone(),
            checkpoint: self
                .checkpoint
                .as_ref()
                .map(|p| p.to_string_lossy().into_owned()),
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    jobs: Mutex<HashMap<u64, Job>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    shutting_down: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    tenant_faults: Mutex<HashMap<String, u64>>,
    conns: Mutex<Vec<Weak<ConnWriter>>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    journal: Option<Mutex<journal::Journal>>,
    counters: Arc<Counters>,
    conn_salt: AtomicU64,
}

impl Shared {
    fn job_dir(&self, id: u64) -> Option<PathBuf> {
        self.cfg
            .checkpoint_root
            .as_ref()
            .map(|root| root.join(id.to_string()))
    }

    fn charge_tenant(&self, tenant: &str, faults: u64) {
        if faults == 0 {
            return;
        }
        let mut ledger = self.tenant_faults.lock().unwrap_or_else(|e| e.into_inner());
        *ledger.entry(tenant.to_string()).or_insert(0) += faults;
    }

    /// Appends one record to the job journal (no-op without one).
    fn journal_append(&self, rec: &journal::Record) -> std::io::Result<()> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let mut j = journal.lock().unwrap_or_else(|e| e.into_inner());
        if j.append(rec)? {
            self.counters.journal_fsyncs.fetch_add(1, Ordering::Relaxed);
            yoso_trace::counter_add("server.journal_fsyncs", 1);
        }
        Ok(())
    }
}

/// Parses the completed-iteration count out of a checkpoint file name
/// (`ckpt_<iteration:08>.snap`, the format of
/// [`yoso_core::checkpoint::checkpoint_file_name`]).
fn checkpoint_iteration(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("ckpt_")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

fn is_search_iter(line: &str) -> bool {
    line.starts_with("{\"event\":\"search_iter\"")
}

/// The prefix of a journaled line log covered by a checkpoint at `k`
/// completed iterations: everything up to (excluding) the `(k+1)`-th
/// `search_iter` line. The resumed session re-emits the remainder
/// byte-identically, so keeping more would duplicate events.
fn truncate_to_iterations(lines: &[String], k: u64) -> Vec<String> {
    let mut out = Vec::new();
    let mut seen = 0u64;
    for line in lines {
        if is_search_iter(line) {
            if seen == k {
                break;
            }
            seen += 1;
        }
        out.push(line.clone());
    }
    out
}

/// A running daemon. Dropping (or calling [`shutdown`](Server::shutdown))
/// stops accepting, cancels running jobs at their next checkpoint
/// boundary, and drains every thread (with a deadline on the runners).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
    stopped: bool,
}

impl Server {
    /// Binds, replays the job journal (when persistence is configured),
    /// spawns the runner pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable, or a
    /// filesystem error from opening/compacting the journal. Damaged
    /// journal *contents* never fail startup — corrupt records and
    /// jobs are skipped, typed in the recovery counters.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let runner_count = cfg.max_concurrent_jobs.max(1);
        let counters = Arc::new(Counters::default());

        // Journal recovery, before anything can run: reconstruct jobs,
        // compact the journal, and queue interrupted jobs for resume.
        let mut restored: Vec<(u64, Job)> = Vec::new();
        let mut resume_queue: VecDeque<u64> = VecDeque::new();
        let mut max_restored_id = 0u64;
        let journal = match &cfg.checkpoint_root {
            Some(root) => {
                if cfg.recover_jobs {
                    let recovery = journal::recover(root)?;
                    let mut compacted: Vec<journal::RecoveredJob> = Vec::new();
                    for rec in recovery.jobs {
                        match restore_job(root, &rec) {
                            Some((job, auto_resume, kept)) => {
                                max_restored_id = max_restored_id.max(rec.job);
                                if auto_resume {
                                    resume_queue.push_back(rec.job);
                                }
                                compacted.push(journal::RecoveredJob { lines: kept, ..rec });
                                restored.push((rec.job, job));
                            }
                            None => {
                                // Unparseable spec or terminal frame:
                                // skip the job, drop it from the
                                // compacted journal.
                            }
                        }
                    }
                    counters
                        .jobs_recovered
                        .fetch_add(restored.len() as u64, Ordering::Relaxed);
                    yoso_trace::counter_add("server.jobs_recovered", restored.len() as u64);
                    Some(Mutex::new(journal::rewrite(
                        root,
                        &compacted,
                        cfg.journal_fsync_every,
                    )?))
                } else {
                    Some(Mutex::new(journal::Journal::open(
                        root,
                        cfg.journal_fsync_every,
                    )?))
                }
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            cfg,
            jobs: Mutex::new(restored.into_iter().collect()),
            queue: Mutex::new(resume_queue),
            queue_cv: Condvar::new(),
            next_id: AtomicU64::new(max_restored_id + 1),
            shutting_down: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            tenant_faults: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            journal,
            counters,
            conn_salt: AtomicU64::new(0),
        });
        let runners = (0..runner_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("yoso-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn runner thread")
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("yoso-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            runners,
            stopped: false,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until some client sends a `shutdown` request (the daemon
    /// binary's main-thread parking spot).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting, cancels running jobs (they suspend at the next
    /// boundary when persistence is on), closes client connections and
    /// drains every thread. Runner threads get `drain_timeout` to
    /// finish; one that overruns is journaled-and-abandoned
    /// (`server.drain_timeouts`) — its job is recoverable from the
    /// journal on the next start.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        {
            let jobs = self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            for job in jobs.values() {
                if job.state == JobState::Running {
                    job.cancel.store(true, Ordering::SeqCst);
                }
            }
        }
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for conn in conns.iter().filter_map(Weak::upgrade) {
                conn.close();
            }
        }
        let handlers = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in handlers {
            let _ = h.join();
        }
        // Drain the runners with a deadline instead of unbounded joins:
        // a job wedged past the deadline is abandoned — every line it
        // emitted is already journaled, so the next start recovers it.
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        for r in self.runners.drain(..) {
            while !r.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if r.is_finished() {
                let _ = r.join();
            } else {
                self.shared
                    .counters
                    .drain_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                yoso_trace::counter_add("server.drain_timeouts", 1);
            }
        }
        if let Some(journal) = &self.shared.journal {
            let _ = journal.lock().unwrap_or_else(|e| e.into_inner()).sync();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Rebuilds one in-memory [`Job`] from a journal-recovered record.
/// Returns the job, whether it must be auto-resumed, and the (possibly
/// truncated) line log it was seeded with; `None` when the record is
/// unusable (unparseable spec/terminal frame).
fn restore_job(root: &Path, rec: &journal::RecoveredJob) -> Option<(Job, bool, Vec<String>)> {
    let spec = JobSpec::parse(rec.spec_json.trim()).ok()?;
    let id = rec.job;
    let dir = root.join(id.to_string());
    let mut job = Job::new(id, spec);

    let done = match &rec.done_json {
        Some(frame) => match Reply::parse(frame) {
            Ok(Reply::Done(done)) => Some(done),
            _ => return None,
        },
        None => None,
    };

    match done {
        Some(done) if done.state == JobState::Completed || done.state == JobState::Failed => {
            // Finished: restore the full replayable log and terminal
            // frames; nothing to run.
            job.state = done.state;
            job.best_reward = done.best_reward;
            job.error = done.error.clone();
            job.iterations_done
                .store(done.iterations, Ordering::Relaxed);
            let mut log = job.log.lock().unwrap_or_else(|e| e.into_inner());
            log.lines = rec.lines.clone();
            log.pareto = rec.pareto_json.clone();
            log.done = Some(done);
            drop(log);
            Some((job, false, rec.lines.clone()))
        }
        Some(done) => {
            // Suspended on purpose: restore as suspended, log truncated
            // to the checkpoint the suspend wrote; wait for `resume`.
            let checkpoint = yoso_core::checkpoint::latest_checkpoint(&dir)
                .ok()
                .flatten();
            let k = rec
                .durable
                .or_else(|| checkpoint.as_deref().and_then(checkpoint_iteration))
                .unwrap_or(done.iterations);
            let kept = truncate_to_iterations(&rec.lines, k);
            job.state = JobState::Suspended;
            job.checkpoint = checkpoint;
            job.iterations_done.store(
                kept.iter().filter(|l| is_search_iter(l)).count() as u64,
                Ordering::Relaxed,
            );
            job.log.lock().unwrap_or_else(|e| e.into_inner()).lines = kept.clone();
            Some((job, false, kept))
        }
        None => {
            // Interrupted mid-run (crash): seed the log with the prefix
            // the newest checkpoint covers and auto-resume; the session
            // re-emits the remainder byte-identically.
            let checkpoint = yoso_core::checkpoint::latest_checkpoint(&dir)
                .ok()
                .flatten();
            let k = checkpoint
                .as_deref()
                .and_then(checkpoint_iteration)
                .unwrap_or(0);
            let kept = truncate_to_iterations(&rec.lines, k);
            job.state = JobState::Queued;
            job.checkpoint = checkpoint;
            job.iterations_done.store(
                kept.iter().filter(|l| is_search_iter(l)).count() as u64,
                Ordering::Relaxed,
            );
            job.log.lock().unwrap_or_else(|e| e.into_inner()).lines = kept.clone();
            Some((job, true, kept))
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Deadlines before the stream reaches any thread: a half-open
        // client can stall a read or write for at most one timeout.
        let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        let shared2 = shared.clone();
        let handle = std::thread::Builder::new()
            .name("yoso-conn".to_string())
            .spawn(move || handle_conn(&shared2, stream))
            .expect("spawn connection thread");
        shared
            .handlers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

/// One read attempt's outcome on a connection.
enum ReadOutcome {
    /// A complete line (without the newline).
    Line(String),
    /// The socket read deadline elapsed with no data.
    TimedOut,
    /// The line exceeded [`proto::MAX_FRAME_LEN`]; the overflow was
    /// discarded through the next newline.
    Oversized,
    /// EOF or a hard socket error.
    Closed,
}

/// Reads one newline-terminated frame with a hard length cap, so a
/// hostile peer cannot make the server buffer an unbounded line. `buf`
/// carries a partial line across read timeouts; `overflowed` remembers
/// that the line in progress already blew the cap (its bytes are being
/// discarded until the newline).
fn read_frame_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    overflowed: &mut bool,
) -> ReadOutcome {
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return ReadOutcome::Closed,
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ReadOutcome::TimedOut;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let over = *overflowed || buf.len() + nl > proto::MAX_FRAME_LEN;
                if !over {
                    buf.extend_from_slice(&chunk[..nl]);
                }
                reader.consume(nl + 1);
                *overflowed = false;
                if over {
                    buf.clear();
                    return ReadOutcome::Oversized;
                }
                let line = String::from_utf8_lossy(buf).into_owned();
                buf.clear();
                return ReadOutcome::Line(line);
            }
            None => {
                let n = chunk.len();
                if !*overflowed && buf.len() + n <= proto::MAX_FRAME_LEN {
                    buf.extend_from_slice(chunk);
                } else {
                    // Past the cap: drop bytes (bounded memory) until
                    // the newline shows up, then report the oversize.
                    *overflowed = true;
                    buf.clear();
                }
                reader.consume(n);
            }
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let salt = shared.conn_salt.fetch_add(1, Ordering::Relaxed);
    let writer = Arc::new(ConnWriter::new(
        write_half,
        shared.cfg.max_subscriber_queue,
        shared.counters.clone(),
        salt,
    ));
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::downgrade(&writer));
    let writer_thread = {
        let writer = writer.clone();
        std::thread::Builder::new()
            .name("yoso-conn-writer".to_string())
            .spawn(move || writer.writer_loop())
            .expect("spawn connection writer thread")
    };

    let mut reader = BufReader::new(stream);
    let mut partial = Vec::new();
    let mut overflowed = false;
    let mut misses: u32 = 0;
    loop {
        match read_frame_line(&mut reader, &mut partial, &mut overflowed) {
            ReadOutcome::Line(line) => {
                misses = 0;
                if line.trim().is_empty() {
                    continue;
                }
                let req = Request::parse(&line);
                if matches!(req, Ok(Request::Pong)) {
                    continue; // heartbeat answer; nothing to reply
                }
                let reply = match req {
                    Ok(req) => handle_request(shared, &writer, req),
                    Err(e) => Reply::Error {
                        code: e.code,
                        message: e.message,
                    },
                };
                writer.send(&reply.to_json());
            }
            ReadOutcome::TimedOut => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                misses += 1;
                if misses > shared.cfg.heartbeat_misses {
                    shared
                        .counters
                        .heartbeats_missed
                        .fetch_add(1, Ordering::Relaxed);
                    yoso_trace::counter_add("server.heartbeats_missed", 1);
                    break;
                }
                writer.send(&Reply::Ping.to_json());
            }
            ReadOutcome::Oversized => {
                writer.send(
                    &Reply::Error {
                        code: ErrorCode::MalformedFrame,
                        message: format!("frame exceeds {} byte cap", proto::MAX_FRAME_LEN),
                    }
                    .to_json(),
                );
            }
            ReadOutcome::Closed => break,
        }
        if !writer.alive.load(Ordering::Relaxed) {
            break;
        }
    }
    writer.finish();
    let _ = writer_thread.join();
    writer.close();
}

fn handle_request(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, req: Request) -> Reply {
    match req {
        Request::Submit { spec, stream } => submit(shared, writer, spec, stream),
        Request::Status { job } => with_job(shared, job, |id, j| Reply::Status(j.status(id))),
        Request::Suspend { job } => suspend(shared, job),
        Request::Resume { job, stream } => resume(shared, writer, job, stream),
        Request::Subscribe { job, from_seq } => {
            subscribe(shared, writer, job, from_seq.unwrap_or(0))
        }
        Request::Stats => Reply::Stats(stats(shared)),
        Request::Pong => Reply::Ping, // unreachable; pongs are consumed in handle_conn
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            {
                let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
                for job in jobs.values() {
                    if job.state == JobState::Running {
                        job.cancel.store(true, Ordering::SeqCst);
                    }
                }
            }
            shared.queue_cv.notify_all();
            let mut requested = shared
                .shutdown_requested
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *requested = true;
            shared.shutdown_cv.notify_all();
            Reply::ShuttingDown
        }
    }
}

fn error(code: ErrorCode, message: impl Into<String>) -> Reply {
    Reply::Error {
        code,
        message: message.into(),
    }
}

fn with_job(shared: &Shared, id: u64, f: impl FnOnce(u64, &Job) -> Reply) -> Reply {
    let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    match jobs.get(&id) {
        Some(job) => f(id, job),
        None => error(ErrorCode::UnknownJob, format!("no job {id}")),
    }
}

fn submit(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, spec: JobSpec, stream: bool) -> Reply {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error(ErrorCode::ShuttingDown, "server is shutting down");
    }
    if let Some(budget) = shared.cfg.tenant_fault_budget {
        let ledger = shared
            .tenant_faults
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let spent = ledger.get(&spec.tenant).copied().unwrap_or(0);
        if spent >= budget {
            return error(
                ErrorCode::FaultBudgetExhausted,
                format!(
                    "tenant {:?} has accrued {spent} faults (budget {budget})",
                    spec.tenant
                ),
            );
        }
    }
    {
        let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= shared.cfg.queue_capacity {
            return error(
                ErrorCode::AdmissionFull,
                format!("queue at capacity ({} pending)", queue.len()),
            );
        }
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if let Some(dir) = shared.job_dir(id) {
        let persisted = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("spec.json"), format!("{}\n", spec.to_json())));
        if let Err(e) = persisted {
            return error(
                ErrorCode::Internal,
                format!("persist spec for job {id}: {e}"),
            );
        }
    }
    // Write-ahead: the admission is durable before the job exists, so
    // a crash at any later point recovers it.
    if let Err(e) = shared.journal_append(&journal::Record::Admit {
        job: id,
        spec_json: spec.to_json(),
    }) {
        return error(
            ErrorCode::Internal,
            format!("journal admit for job {id}: {e}"),
        );
    }
    let job = Job::new(id, spec);
    if stream {
        job.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .attach_from(writer.clone(), 0);
    }
    shared
        .jobs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, job);
    enqueue(shared, id);
    Reply::Submitted { job: id }
}

fn enqueue(shared: &Shared, id: u64) {
    shared
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(id);
    shared.queue_cv.notify_one();
}

fn suspend(shared: &Shared, id: u64) -> Reply {
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(job) = jobs.get_mut(&id) else {
        return error(ErrorCode::UnknownJob, format!("no job {id}"));
    };
    match job.state {
        JobState::Running => {
            // The runner observes the flag at the next update boundary,
            // writes a suspend checkpoint and emits `job_done` with
            // state `suspended`.
            job.cancel.store(true, Ordering::SeqCst);
            Reply::Status(job.status(id))
        }
        JobState::Queued => {
            job.state = JobState::Suspended;
            drop(jobs);
            shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|&q| q != id);
            let _ = shared.journal_append(&journal::Record::Done {
                job: id,
                done_json: Reply::Done(JobDone {
                    job: id,
                    state: JobState::Suspended,
                    iterations: 0,
                    best_reward: None,
                    error: None,
                })
                .to_json(),
                pareto_json: None,
            });
            with_job(shared, id, |id, j| Reply::Status(j.status(id)))
        }
        other => error(
            ErrorCode::InvalidState,
            format!("job {id} is {other}, not running or queued"),
        ),
    }
}

fn resume(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, id: u64, stream: bool) -> Reply {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error(ErrorCode::ShuttingDown, "server is shutting down");
    }
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(job) = jobs.get_mut(&id) {
        if job.state != JobState::Suspended {
            return error(
                ErrorCode::InvalidState,
                format!("job {id} is {}, not suspended", job.state),
            );
        }
        job.state = JobState::Queued;
        job.cancel.store(false, Ordering::SeqCst);
        let mut log = job.log.lock().unwrap_or_else(|e| e.into_inner());
        log.pareto = None;
        log.done = None;
        if stream {
            log.subs.push(writer.clone());
        }
        drop(log);
        let reply = Reply::Status(job.status(id));
        drop(jobs);
        let _ = shared.journal_append(&journal::Record::Resumed { job: id });
        enqueue(shared, id);
        return reply;
    }
    drop(jobs);
    // Not in the registry: resurrect a job persisted by a previous
    // server process from its on-disk spec + latest checkpoint.
    let Some(dir) = shared.job_dir(id) else {
        return error(ErrorCode::UnknownJob, format!("no job {id}"));
    };
    let spec_line = match std::fs::read_to_string(dir.join("spec.json")) {
        Ok(s) => s,
        Err(_) => {
            return error(
                ErrorCode::UnknownJob,
                format!("no job {id} (registry or disk)"),
            )
        }
    };
    let spec = match JobSpec::parse(spec_line.trim()) {
        Ok(s) => s,
        Err(e) => {
            return error(
                ErrorCode::Internal,
                format!("corrupt spec for job {id}: {e}"),
            )
        }
    };
    let checkpoint = match yoso_core::checkpoint::latest_checkpoint(&dir) {
        Ok(c) => c,
        Err(e) => {
            return error(
                ErrorCode::Internal,
                format!("scan checkpoints for job {id}: {e}"),
            )
        }
    };
    // Keep new ids clear of resurrected ones.
    shared.next_id.fetch_max(id + 1, Ordering::SeqCst);
    let _ = shared.journal_append(&journal::Record::Admit {
        job: id,
        spec_json: spec.to_json(),
    });
    let _ = shared.journal_append(&journal::Record::Resumed { job: id });
    let mut job = Job::new(id, spec);
    job.checkpoint = checkpoint;
    if stream {
        job.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .attach_from(writer.clone(), 0);
    }
    let reply = Reply::Status(job.status(id));
    shared
        .jobs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, job);
    enqueue(shared, id);
    reply
}

fn subscribe(shared: &Shared, writer: &Arc<ConnWriter>, id: u64, from_seq: u64) -> Reply {
    let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(job) = jobs.get(&id) else {
        return error(ErrorCode::UnknownJob, format!("no job {id}"));
    };
    // Replay + attach under the log lock: the reply frame is written
    // after the replayed frames, so the client sees replay, then the
    // status reply, then live events.
    job.log
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .attach_from(writer.clone(), from_seq);
    Reply::Status(job.status(id))
}

fn stats(shared: &Shared) -> ServerStats {
    let mut out = ServerStats::default();
    {
        let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        for job in jobs.values() {
            match job.state {
                JobState::Queued => out.queued += 1,
                JobState::Running => out.running += 1,
                JobState::Suspended => out.suspended += 1,
                JobState::Completed => out.completed += 1,
                JobState::Failed => out.failed += 1,
            }
        }
    }
    let cache = yoso_accel::cache::stats();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
    out.cache_hit_rate = cache.hit_rate();
    out.tenants = yoso_accel::cache::tenant_stats().len() as u64;
    let c = &shared.counters;
    out.slow_client_evictions = c.slow_client_evictions.load(Ordering::Relaxed);
    out.heartbeats_missed = c.heartbeats_missed.load(Ordering::Relaxed);
    out.journal_fsyncs = c.journal_fsyncs.load(Ordering::Relaxed);
    out.drain_timeouts = c.drain_timeouts.load(Ordering::Relaxed);
    out.jobs_recovered = c.jobs_recovered.load(Ordering::Relaxed);
    out
}

/// Renders a completed outcome's non-dominated archive as the wire
/// [`proto::ParetoFront`], in the archive's canonical order. The
/// numeric fields cross the codec bit-exact, so comparing a served
/// front against the in-process `outcome.pareto()` is an `==` check.
pub fn pareto_front_of(job: u64, outcome: &yoso_core::search::SearchOutcome) -> proto::ParetoFront {
    proto::ParetoFront {
        job,
        entries: outcome
            .pareto()
            .iter()
            .map(|r| proto::ParetoEntry {
                iteration: r.iteration as u64,
                accuracy: r.eval.accuracy,
                latency_ms: r.eval.latency_ms,
                energy_mj: r.eval.energy_mj,
                reward: r.reward,
                hw: r.point.hw.to_string(),
            })
            .collect(),
    }
}

fn runner_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        run_job(shared, id);
    }
}

fn run_job(shared: &Arc<Shared>, id: u64) {
    let (spec, cancel, iterations_done, log, checkpoint) = {
        let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&id) else { return };
        if job.state != JobState::Queued {
            return; // suspended while queued; skip the stale queue entry
        }
        job.state = JobState::Running;
        (
            job.spec.clone(),
            job.cancel.clone(),
            job.iterations_done.clone(),
            job.log.clone(),
            job.checkpoint.clone(),
        )
    };

    // Tenant context for this run: cache accounting and chaos scoping
    // both key off thread-locals on the runner thread (evaluation is
    // serial on the session's thread, so every simulator lookup and
    // serial fault site lands here).
    let tenant_tag = yoso_accel::cache::tenant_tag(&spec.tenant);
    yoso_accel::cache::set_thread_tenant(Some(&tenant_tag));
    yoso_chaos::set_thread_scope(Some(yoso_chaos::scope_for(&spec.tenant)));

    let evaluator = SurrogateEvaluator::new(shared.cfg.skeleton.clone());
    let trace = {
        let log = log.clone();
        let iterations_done = iterations_done.clone();
        let shared = shared.clone();
        Trace::forward(move |line: &str| {
            if is_search_iter(line) {
                iterations_done.fetch_add(1, Ordering::Relaxed);
            }
            // Journal first, then fan out: a line a subscriber saw is
            // always recoverable after a crash.
            let _ = shared.journal_append(&journal::Record::Line {
                job: id,
                line: line.to_string(),
            });
            log.lock().unwrap_or_else(|e| e.into_inner()).push(line);
        })
    };

    let result = (|| -> Result<yoso_core::search::SearchOutcome, CoreError> {
        let mut builder = match &checkpoint {
            Some(path) => SearchSession::resume_from(path)?,
            None => {
                let mut b = spec.apply(SearchSession::builder());
                if let Some(dir) = shared.job_dir(id) {
                    b = b.checkpoint_dir(dir);
                }
                b
            }
        };
        builder = builder
            .evaluator(&evaluator)
            .scoring_precision(spec.scoring)
            .trace(trace)
            .cancel_flag(cancel.clone());
        if let Some(f) = spec.fault_budget {
            builder = builder.fault_budget(f);
        }
        builder.run()
    })();

    yoso_accel::cache::set_thread_tenant(None);
    yoso_chaos::set_thread_scope(None);

    let (pareto, done) = {
        let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&id) else { return };
        match result {
            Ok(outcome) => {
                job.state = JobState::Completed;
                let best = if outcome.history.is_empty() {
                    None
                } else {
                    Some(outcome.best().reward)
                };
                job.best_reward = best;
                iterations_done.store(outcome.history.len() as u64, Ordering::Relaxed);
                shared.charge_tenant(&job.spec.tenant, outcome.quarantine.len() as u64);
                let pareto = Reply::ParetoFront(pareto_front_of(id, &outcome)).to_json();
                (
                    Some(pareto),
                    JobDone {
                        job: id,
                        state: JobState::Completed,
                        iterations: outcome.history.len() as u64,
                        best_reward: best,
                        error: None,
                    },
                )
            }
            Err(CoreError::Canceled {
                iterations,
                checkpoint,
            }) => {
                job.state = JobState::Suspended;
                job.checkpoint = checkpoint;
                let _ = shared.journal_append(&journal::Record::Durable {
                    job: id,
                    iteration: iterations as u64,
                });
                (
                    None,
                    JobDone {
                        job: id,
                        state: JobState::Suspended,
                        iterations: iterations as u64,
                        best_reward: None,
                        error: None,
                    },
                )
            }
            Err(e) => {
                if let CoreError::FaultBudgetExhausted { faults, .. } = &e {
                    shared.charge_tenant(&job.spec.tenant, *faults);
                }
                let msg = e.to_string();
                job.state = JobState::Failed;
                job.error = Some(msg.clone());
                (
                    None,
                    JobDone {
                        job: id,
                        state: JobState::Failed,
                        iterations: iterations_done.load(Ordering::Relaxed),
                        best_reward: None,
                        error: Some(msg),
                    },
                )
            }
        }
    };
    let _ = shared.journal_append(&journal::Record::Done {
        job: id,
        done_json: Reply::Done(done.clone()).to_json(),
        pareto_json: pareto.clone(),
    });
    log.lock()
        .unwrap_or_else(|e| e.into_inner())
        .finish(pareto, done);
}
