//! # yoso-server
//!
//! Co-design-as-a-service: a multi-tenant search daemon over
//! [`yoso_core::session::SearchSession`].
//!
//! The server listens on plain TCP and speaks the versioned framed-JSON
//! protocol defined in [`proto`] (one newline-terminated flat JSON
//! object per frame — no external async runtime, no serde on the wire).
//! Each accepted job runs as a `SearchSession` on a fixed pool of
//! runner threads; its structured trace stream is captured live through
//! a [`yoso_trace::Trace::forward`] sink and fanned out byte-identical
//! to every subscribed connection, so a served job's `search_iter`
//! JSONL is exactly what the same seed produces in-process.
//!
//! Multi-tenancy:
//!
//! * **Shared simulator cache** — all tenants hit the process-wide
//!   [`yoso_accel::cache`]; runner threads tag themselves with
//!   [`yoso_accel::cache::set_thread_tenant`] so per-tenant hit rates
//!   are accounted (`tenant_stats`), and a design point simulated for
//!   one tenant is a cache hit for every other.
//! * **Admission control** — at most `max_concurrent_jobs` run at
//!   once; up to `queue_capacity` more wait in a FIFO queue; beyond
//!   that submits are refused with
//!   [`proto::ErrorCode::AdmissionFull`] (backpressure, not
//!   buffering).
//! * **Fault isolation** — runner threads enter a per-tenant
//!   [`yoso_chaos`] scope ([`yoso_chaos::scope_for`] of the tenant
//!   name), so tenant-scoped fault rules hit only that tenant's jobs;
//!   each tenant's injected faults and quarantined candidates accrue
//!   to a ledger, and once a configured `tenant_fault_budget` is
//!   exhausted further submissions from that tenant are refused with
//!   [`proto::ErrorCode::FaultBudgetExhausted`].
//!
//! Suspend/resume rides on the session's crash-safe checkpoints
//! ([`yoso_persist`] snapshots): a `suspend` request raises the job's
//! cancel flag, the session stops at the next update boundary and
//! writes a suspend checkpoint, and a later `resume` — on this server
//! process *or a freshly restarted one* — replays bit-identically from
//! the `spec.json` + checkpoint persisted under
//! `checkpoint_root/<job>/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

use proto::{ErrorCode, JobDone, JobSpec, JobState, JobStatus, Reply, Request, ServerStats};
use yoso_arch::NetworkSkeleton;
use yoso_core::error::Error as CoreError;
use yoso_core::evaluation::SurrogateEvaluator;
use yoso_core::session::SearchSession;
use yoso_trace::Trace;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Runner threads — jobs executing simultaneously.
    pub max_concurrent_jobs: usize,
    /// Jobs allowed to wait beyond the running ones; submits past this
    /// are refused with [`ErrorCode::AdmissionFull`].
    pub queue_capacity: usize,
    /// Cumulative faults (injected + quarantined) a tenant may accrue
    /// before its submissions are refused. `None` disables the ledger
    /// check.
    pub tenant_fault_budget: Option<u64>,
    /// Directory for per-job persistence (`<root>/<job>/spec.json` +
    /// checkpoints). `None` disables suspend-to-disk and
    /// across-restart resume.
    pub checkpoint_root: Option<PathBuf>,
    /// Skeleton for the server-side surrogate evaluator; must match
    /// the one an in-process run uses for byte-identical streams.
    pub skeleton: NetworkSkeleton,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_concurrent_jobs: 4,
            queue_capacity: 256,
            tenant_fault_budget: None,
            checkpoint_root: None,
            skeleton: NetworkSkeleton::tiny(),
        }
    }
}

/// Serialized writer half of one client connection. All frame writes
/// go through the mutex so concurrently streaming jobs never interleave
/// partial lines; a failed write marks the connection dead and further
/// sends become no-ops.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
            alive: AtomicBool::new(true),
        }
    }

    fn send(&self, frame: &str) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let ok = writeln!(&mut *s, "{frame}")
            .and_then(|()| s.flush())
            .is_ok();
        if !ok {
            self.alive.store(false, Ordering::Relaxed);
        }
    }

    fn close(&self) {
        self.alive.store(false, Ordering::Relaxed);
        let s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let _ = s.shutdown(NetShutdown::Both);
    }
}

/// One job's ordered event log plus its live subscribers. Replay and
/// attach happen under the same lock as appends, so a subscriber sees
/// every line exactly once, in order.
struct JobLog {
    job: u64,
    lines: Vec<String>,
    subs: Vec<Arc<ConnWriter>>,
    /// Pre-serialized `pareto_front` frame for a completed run, sent
    /// right before the `job_done` frame and replayed on `subscribe`.
    pareto: Option<String>,
    done: Option<JobDone>,
}

impl JobLog {
    fn push(&mut self, line: &str) {
        let seq = self.lines.len() as u64;
        self.lines.push(line.to_string());
        if self.subs.is_empty() {
            return;
        }
        let frame = Reply::Event {
            job: self.job,
            seq,
            line: line.to_string(),
        }
        .to_json();
        self.subs.retain(|s| s.alive.load(Ordering::Relaxed));
        for sub in &self.subs {
            sub.send(&frame);
        }
    }

    fn finish(&mut self, pareto: Option<String>, done: JobDone) {
        let frame = Reply::Done(done.clone()).to_json();
        for sub in self.subs.drain(..) {
            if let Some(p) = &pareto {
                sub.send(p);
            }
            sub.send(&frame);
        }
        self.pareto = pareto;
        self.done = Some(done);
    }

    fn attach(&mut self, sub: Arc<ConnWriter>) {
        for (seq, line) in self.lines.iter().enumerate() {
            let frame = Reply::Event {
                job: self.job,
                seq: seq as u64,
                line: line.clone(),
            }
            .to_json();
            sub.send(&frame);
        }
        if let Some(done) = &self.done {
            if let Some(p) = &self.pareto {
                sub.send(p);
            }
            sub.send(&Reply::Done(done.clone()).to_json());
        } else {
            self.subs.push(sub);
        }
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    iterations_done: Arc<AtomicU64>,
    best_reward: Option<f64>,
    error: Option<String>,
    checkpoint: Option<PathBuf>,
    log: Arc<Mutex<JobLog>>,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Job {
        Job {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            iterations_done: Arc::new(AtomicU64::new(0)),
            best_reward: None,
            error: None,
            checkpoint: None,
            log: Arc::new(Mutex::new(JobLog {
                job: id,
                lines: Vec::new(),
                subs: Vec::new(),
                pareto: None,
                done: None,
            })),
        }
    }

    fn status(&self, id: u64) -> JobStatus {
        JobStatus {
            job: id,
            tenant: self.spec.tenant.clone(),
            state: self.state,
            iterations_done: self.iterations_done.load(Ordering::Relaxed),
            iterations_total: self.spec.config.iterations as u64,
            best_reward: self.best_reward,
            error: self.error.clone(),
            checkpoint: self
                .checkpoint
                .as_ref()
                .map(|p| p.to_string_lossy().into_owned()),
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    jobs: Mutex<HashMap<u64, Job>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    shutting_down: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    tenant_faults: Mutex<HashMap<String, u64>>,
    conns: Mutex<Vec<Weak<ConnWriter>>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn job_dir(&self, id: u64) -> Option<PathBuf> {
        self.cfg
            .checkpoint_root
            .as_ref()
            .map(|root| root.join(id.to_string()))
    }

    fn charge_tenant(&self, tenant: &str, faults: u64) {
        if faults == 0 {
            return;
        }
        let mut ledger = self.tenant_faults.lock().unwrap_or_else(|e| e.into_inner());
        *ledger.entry(tenant.to_string()).or_insert(0) += faults;
    }
}

/// A running daemon. Dropping (or calling [`shutdown`](Server::shutdown))
/// stops accepting, cancels running jobs at their next checkpoint
/// boundary, and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
    stopped: bool,
}

impl Server {
    /// Binds, spawns the runner pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let runner_count = cfg.max_concurrent_jobs.max(1);
        let shared = Arc::new(Shared {
            cfg,
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            tenant_faults: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let runners = (0..runner_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("yoso-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn runner thread")
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("yoso-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            runners,
            stopped: false,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until some client sends a `shutdown` request (the daemon
    /// binary's main-thread parking spot).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting, cancels running jobs (they suspend at the next
    /// boundary when persistence is on), closes client connections and
    /// joins every thread.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        {
            let jobs = self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            for job in jobs.values() {
                if job.state == JobState::Running {
                    job.cancel.store(true, Ordering::SeqCst);
                }
            }
        }
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for conn in conns.iter().filter_map(Weak::upgrade) {
                conn.close();
            }
        }
        let handlers = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in handlers {
            let _ = h.join();
        }
        for r in self.runners.drain(..) {
            let _ = r.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared2 = shared.clone();
        let handle = std::thread::Builder::new()
            .name("yoso-conn".to_string())
            .spawn(move || handle_conn(&shared2, stream))
            .expect("spawn connection thread");
        shared
            .handlers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = Arc::new(ConnWriter::new(write_half));
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::downgrade(&writer));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match Request::parse(&line) {
            Ok(req) => handle_request(shared, &writer, req),
            Err(e) => Reply::Error {
                code: e.code,
                message: e.message,
            },
        };
        writer.send(&reply.to_json());
        if !writer.alive.load(Ordering::Relaxed) {
            break;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, req: Request) -> Reply {
    match req {
        Request::Submit { spec, stream } => submit(shared, writer, spec, stream),
        Request::Status { job } => with_job(shared, job, |id, j| Reply::Status(j.status(id))),
        Request::Suspend { job } => suspend(shared, job),
        Request::Resume { job, stream } => resume(shared, writer, job, stream),
        Request::Subscribe { job } => subscribe(shared, writer, job),
        Request::Stats => Reply::Stats(stats(shared)),
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            {
                let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
                for job in jobs.values() {
                    if job.state == JobState::Running {
                        job.cancel.store(true, Ordering::SeqCst);
                    }
                }
            }
            shared.queue_cv.notify_all();
            let mut requested = shared
                .shutdown_requested
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *requested = true;
            shared.shutdown_cv.notify_all();
            Reply::ShuttingDown
        }
    }
}

fn error(code: ErrorCode, message: impl Into<String>) -> Reply {
    Reply::Error {
        code,
        message: message.into(),
    }
}

fn with_job(shared: &Shared, id: u64, f: impl FnOnce(u64, &Job) -> Reply) -> Reply {
    let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    match jobs.get(&id) {
        Some(job) => f(id, job),
        None => error(ErrorCode::UnknownJob, format!("no job {id}")),
    }
}

fn submit(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, spec: JobSpec, stream: bool) -> Reply {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error(ErrorCode::ShuttingDown, "server is shutting down");
    }
    if let Some(budget) = shared.cfg.tenant_fault_budget {
        let ledger = shared
            .tenant_faults
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let spent = ledger.get(&spec.tenant).copied().unwrap_or(0);
        if spent >= budget {
            return error(
                ErrorCode::FaultBudgetExhausted,
                format!(
                    "tenant {:?} has accrued {spent} faults (budget {budget})",
                    spec.tenant
                ),
            );
        }
    }
    {
        let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= shared.cfg.queue_capacity {
            return error(
                ErrorCode::AdmissionFull,
                format!("queue at capacity ({} pending)", queue.len()),
            );
        }
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if let Some(dir) = shared.job_dir(id) {
        let persisted = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("spec.json"), format!("{}\n", spec.to_json())));
        if let Err(e) = persisted {
            return error(
                ErrorCode::Internal,
                format!("persist spec for job {id}: {e}"),
            );
        }
    }
    let job = Job::new(id, spec);
    if stream {
        job.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .attach(writer.clone());
    }
    shared
        .jobs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, job);
    enqueue(shared, id);
    Reply::Submitted { job: id }
}

fn enqueue(shared: &Shared, id: u64) {
    shared
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(id);
    shared.queue_cv.notify_one();
}

fn suspend(shared: &Shared, id: u64) -> Reply {
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(job) = jobs.get_mut(&id) else {
        return error(ErrorCode::UnknownJob, format!("no job {id}"));
    };
    match job.state {
        JobState::Running => {
            // The runner observes the flag at the next update boundary,
            // writes a suspend checkpoint and emits `job_done` with
            // state `suspended`.
            job.cancel.store(true, Ordering::SeqCst);
            Reply::Status(job.status(id))
        }
        JobState::Queued => {
            job.state = JobState::Suspended;
            drop(jobs);
            shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|&q| q != id);
            with_job(shared, id, |id, j| Reply::Status(j.status(id)))
        }
        other => error(
            ErrorCode::InvalidState,
            format!("job {id} is {other}, not running or queued"),
        ),
    }
}

fn resume(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, id: u64, stream: bool) -> Reply {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return error(ErrorCode::ShuttingDown, "server is shutting down");
    }
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(job) = jobs.get_mut(&id) {
        if job.state != JobState::Suspended {
            return error(
                ErrorCode::InvalidState,
                format!("job {id} is {}, not suspended", job.state),
            );
        }
        job.state = JobState::Queued;
        job.cancel.store(false, Ordering::SeqCst);
        let mut log = job.log.lock().unwrap_or_else(|e| e.into_inner());
        log.pareto = None;
        log.done = None;
        if stream {
            log.subs.push(writer.clone());
        }
        drop(log);
        let reply = Reply::Status(job.status(id));
        drop(jobs);
        enqueue(shared, id);
        return reply;
    }
    drop(jobs);
    // Not in the registry: resurrect a job persisted by a previous
    // server process from its on-disk spec + latest checkpoint.
    let Some(dir) = shared.job_dir(id) else {
        return error(ErrorCode::UnknownJob, format!("no job {id}"));
    };
    let spec_line = match std::fs::read_to_string(dir.join("spec.json")) {
        Ok(s) => s,
        Err(_) => {
            return error(
                ErrorCode::UnknownJob,
                format!("no job {id} (registry or disk)"),
            )
        }
    };
    let spec = match JobSpec::parse(spec_line.trim()) {
        Ok(s) => s,
        Err(e) => {
            return error(
                ErrorCode::Internal,
                format!("corrupt spec for job {id}: {e}"),
            )
        }
    };
    let checkpoint = match yoso_core::checkpoint::latest_checkpoint(&dir) {
        Ok(c) => c,
        Err(e) => {
            return error(
                ErrorCode::Internal,
                format!("scan checkpoints for job {id}: {e}"),
            )
        }
    };
    // Keep new ids clear of resurrected ones.
    shared.next_id.fetch_max(id + 1, Ordering::SeqCst);
    let mut job = Job::new(id, spec);
    job.checkpoint = checkpoint;
    if stream {
        job.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .attach(writer.clone());
    }
    let reply = Reply::Status(job.status(id));
    shared
        .jobs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, job);
    enqueue(shared, id);
    reply
}

fn subscribe(shared: &Shared, writer: &Arc<ConnWriter>, id: u64) -> Reply {
    let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(job) = jobs.get(&id) else {
        return error(ErrorCode::UnknownJob, format!("no job {id}"));
    };
    // Replay + attach under the log lock: the reply frame is written
    // after the replayed frames, so the client sees replay, then the
    // status reply, then live events.
    job.log
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .attach(writer.clone());
    Reply::Status(job.status(id))
}

fn stats(shared: &Shared) -> ServerStats {
    let mut out = ServerStats::default();
    {
        let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        for job in jobs.values() {
            match job.state {
                JobState::Queued => out.queued += 1,
                JobState::Running => out.running += 1,
                JobState::Suspended => out.suspended += 1,
                JobState::Completed => out.completed += 1,
                JobState::Failed => out.failed += 1,
            }
        }
    }
    let cache = yoso_accel::cache::stats();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
    out.cache_hit_rate = cache.hit_rate();
    out.tenants = yoso_accel::cache::tenant_stats().len() as u64;
    out
}

/// Renders a completed outcome's non-dominated archive as the wire
/// [`proto::ParetoFront`], in the archive's canonical order. The
/// numeric fields cross the codec bit-exact, so comparing a served
/// front against the in-process `outcome.pareto()` is an `==` check.
pub fn pareto_front_of(job: u64, outcome: &yoso_core::search::SearchOutcome) -> proto::ParetoFront {
    proto::ParetoFront {
        job,
        entries: outcome
            .pareto()
            .iter()
            .map(|r| proto::ParetoEntry {
                iteration: r.iteration as u64,
                accuracy: r.eval.accuracy,
                latency_ms: r.eval.latency_ms,
                energy_mj: r.eval.energy_mj,
                reward: r.reward,
                hw: r.point.hw.to_string(),
            })
            .collect(),
    }
}

fn runner_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        run_job(shared, id);
    }
}

fn run_job(shared: &Arc<Shared>, id: u64) {
    let (spec, cancel, iterations_done, log, checkpoint) = {
        let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&id) else { return };
        if job.state != JobState::Queued {
            return; // suspended while queued; skip the stale queue entry
        }
        job.state = JobState::Running;
        (
            job.spec.clone(),
            job.cancel.clone(),
            job.iterations_done.clone(),
            job.log.clone(),
            job.checkpoint.clone(),
        )
    };

    // Tenant context for this run: cache accounting and chaos scoping
    // both key off thread-locals on the runner thread (evaluation is
    // serial on the session's thread, so every simulator lookup and
    // serial fault site lands here).
    let tenant_tag = yoso_accel::cache::tenant_tag(&spec.tenant);
    yoso_accel::cache::set_thread_tenant(Some(&tenant_tag));
    yoso_chaos::set_thread_scope(Some(yoso_chaos::scope_for(&spec.tenant)));

    let evaluator = SurrogateEvaluator::new(shared.cfg.skeleton.clone());
    let trace = {
        let log = log.clone();
        let iterations_done = iterations_done.clone();
        Trace::forward(move |line: &str| {
            if line.starts_with("{\"event\":\"search_iter\"") {
                iterations_done.fetch_add(1, Ordering::Relaxed);
            }
            log.lock().unwrap_or_else(|e| e.into_inner()).push(line);
        })
    };

    let result = (|| -> Result<yoso_core::search::SearchOutcome, CoreError> {
        let mut builder = match &checkpoint {
            Some(path) => SearchSession::resume_from(path)?,
            None => {
                let mut b = spec.apply(SearchSession::builder());
                if let Some(dir) = shared.job_dir(id) {
                    b = b.checkpoint_dir(dir);
                }
                b
            }
        };
        builder = builder
            .evaluator(&evaluator)
            .scoring_precision(spec.scoring)
            .trace(trace)
            .cancel_flag(cancel.clone());
        if let Some(f) = spec.fault_budget {
            builder = builder.fault_budget(f);
        }
        builder.run()
    })();

    yoso_accel::cache::set_thread_tenant(None);
    yoso_chaos::set_thread_scope(None);

    let (pareto, done) = {
        let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&id) else { return };
        match result {
            Ok(outcome) => {
                job.state = JobState::Completed;
                let best = if outcome.history.is_empty() {
                    None
                } else {
                    Some(outcome.best().reward)
                };
                job.best_reward = best;
                iterations_done.store(outcome.history.len() as u64, Ordering::Relaxed);
                shared.charge_tenant(&job.spec.tenant, outcome.quarantine.len() as u64);
                let pareto = Reply::ParetoFront(pareto_front_of(id, &outcome)).to_json();
                (
                    Some(pareto),
                    JobDone {
                        job: id,
                        state: JobState::Completed,
                        iterations: outcome.history.len() as u64,
                        best_reward: best,
                        error: None,
                    },
                )
            }
            Err(CoreError::Canceled {
                iterations,
                checkpoint,
            }) => {
                job.state = JobState::Suspended;
                job.checkpoint = checkpoint;
                (
                    None,
                    JobDone {
                        job: id,
                        state: JobState::Suspended,
                        iterations: iterations as u64,
                        best_reward: None,
                        error: None,
                    },
                )
            }
            Err(e) => {
                if let CoreError::FaultBudgetExhausted { faults, .. } = &e {
                    shared.charge_tenant(&job.spec.tenant, *faults);
                }
                let msg = e.to_string();
                job.state = JobState::Failed;
                job.error = Some(msg.clone());
                (
                    None,
                    JobDone {
                        job: id,
                        state: JobState::Failed,
                        iterations: iterations_done.load(Ordering::Relaxed),
                        best_reward: None,
                        error: Some(msg),
                    },
                )
            }
        }
    };
    log.lock()
        .unwrap_or_else(|e| e.into_inner())
        .finish(pareto, done);
}
