//! Versioned wire protocol for the yoso-server daemon.
//!
//! Every frame on the wire is one newline-terminated flat JSON object in
//! the [`yoso_trace::Event`] dialect: an `"event"` key naming the frame
//! kind, a `"v"` key carrying [`PROTO_VERSION`], and scalar fields. The
//! codec is hand-rolled (no serde on the wire) and round-trips exactly —
//! [`Request`] and [`Reply`] each expose `to_json` / `parse`.
//!
//! | direction | frames |
//! |---|---|
//! | client → server | `submit`, `status`, `suspend`, `resume`, `subscribe`, `stats`, `shutdown`, `pong` |
//! | server → client (reply) | `submitted`, `job_status`, `server_stats`, `shutting_down`, `error` |
//! | server → client (stream) | `job_event`, `pareto_front`, `job_done`, `ping` |
//!
//! Stream frames (`job_event` / `pareto_front` / `job_done`) may arrive
//! *between* a request and its reply on the same connection; clients
//! must buffer them ([`yoso-client`](../../yoso_client/index.html)
//! does). `pareto_front` is additive in protocol version 1: it carries
//! the completed job's non-dominated archive (one flat frame, numbered
//! per-entry scalar fields) immediately before `job_done`, and is
//! replayed by `subscribe`.
//!
//! A [`JobSpec`] converts losslessly to and from a
//! [`SearchSessionBuilder`]: see [`JobSpec::apply`] and
//! [`JobSpec::from_builder`].

use yoso_core::evaluation::ScoringPrecision;
use yoso_core::reward::{Constraints, RewardConfig, RewardForm};
use yoso_core::search::SearchConfig;
use yoso_core::session::{SearchSessionBuilder, Strategy};
use yoso_trace::{Event, Value};

/// Wire protocol version carried in the `"v"` field of every frame.
///
/// The `ping`/`pong` heartbeat frames and the optional `from_seq` field
/// on `subscribe` are *additive* in version 1: peers that predate them
/// never see a `ping` unless they stall, and omitting `from_seq` keeps
/// the original replay-from-zero semantics.
pub const PROTO_VERSION: u64 = 1;

/// Hard cap on the byte length of a single wire frame. Longer lines are
/// rejected as [`ErrorCode::MalformedFrame`] before JSON parsing, so a
/// hostile or corrupted peer cannot make the decoder buffer unbounded
/// input.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Hard cap on the declared entry count of a `pareto_front` frame. The
/// decoder allocates from the *declared* count, so it must be bounded
/// before the allocation, not after.
pub const MAX_PARETO_ENTRIES: u64 = 65_536;

/// Typed error codes carried in `error` reply frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not parseable as a protocol request.
    MalformedFrame,
    /// The frame's `"v"` field does not match [`PROTO_VERSION`].
    UnsupportedVersion,
    /// A submit frame decoded but its job spec is invalid.
    InvalidSpec,
    /// The referenced job id is unknown (registry and disk).
    UnknownJob,
    /// The pending-job queue is at capacity; retry later.
    AdmissionFull,
    /// The tenant's cumulative fault budget is exhausted; its
    /// submissions are refused until the server restarts the ledger.
    FaultBudgetExhausted,
    /// The job is not in a state that allows the request (e.g.
    /// resuming a job that is not suspended).
    InvalidState,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// An internal server error; the message has details.
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::InvalidSpec => "invalid_spec",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::AdmissionFull => "admission_full",
            ErrorCode::FaultBudgetExhausted => "fault_budget_exhausted",
            ErrorCode::InvalidState => "invalid_state",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "malformed_frame" => ErrorCode::MalformedFrame,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "invalid_spec" => ErrorCode::InvalidSpec,
            "unknown_job" => ErrorCode::UnknownJob,
            "admission_full" => ErrorCode::AdmissionFull,
            "fault_budget_exhausted" => ErrorCode::FaultBudgetExhausted,
            "invalid_state" => ErrorCode::InvalidState,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A protocol decode/encode failure, tagged with the [`ErrorCode`] a
/// server should reply with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What kind of failure this is.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn malformed(msg: impl Into<String>) -> Self {
        ProtoError {
            code: ErrorCode::MalformedFrame,
            message: msg.into(),
        }
    }

    fn invalid(msg: impl Into<String>) -> Self {
        ProtoError {
            code: ErrorCode::InvalidSpec,
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner slot.
    Queued,
    /// A runner thread is executing the search.
    Running,
    /// Stopped at a checkpoint boundary; resumable.
    Suspended,
    /// Finished successfully.
    Completed,
    /// Finished with an error.
    Failed,
}

impl JobState {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Suspended => "suspended",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "suspended" => JobState::Suspended,
            "completed" => JobState::Completed,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything needed to run a search job on the server: the tenant it
/// bills to, the strategy/config/reward triple a
/// [`SearchSessionBuilder`] takes, and the optional session knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant name; scopes cache accounting and fault budgets.
    pub tenant: String,
    /// Which search algorithm to run.
    pub strategy: Strategy,
    /// Iterations / rollouts / seed / population / tournament.
    pub config: SearchConfig,
    /// The multi-objective reward.
    pub reward: RewardConfig,
    /// HyperNet scoring precision.
    pub scoring: ScoringPrecision,
    /// Per-job injected-fault budget (graceful degradation).
    pub fault_budget: Option<u64>,
    /// Checkpoint cadence in iterations.
    pub checkpoint_every: Option<usize>,
}

impl JobSpec {
    /// A spec with the paper-default strategy/config and no optional
    /// knobs set.
    pub fn new(tenant: impl Into<String>, reward: RewardConfig) -> Self {
        JobSpec {
            tenant: tenant.into(),
            strategy: Strategy::default(),
            config: SearchConfig::default(),
            reward,
            scoring: ScoringPrecision::default(),
            fault_budget: None,
            checkpoint_every: None,
        }
    }

    /// Applies this spec to a session builder (everything except the
    /// evaluator, trace and cancel flag, which are process-local).
    #[must_use]
    pub fn apply<'a>(&self, builder: SearchSessionBuilder<'a>) -> SearchSessionBuilder<'a> {
        let mut b = builder
            .strategy(self.strategy)
            .config(self.config.clone())
            .reward(self.reward)
            .scoring_precision(self.scoring);
        if let Some(n) = self.checkpoint_every {
            b = b.checkpoint_every(n);
        }
        if let Some(f) = self.fault_budget {
            b = b.fault_budget(f);
        }
        b
    }

    /// Recovers a spec from a configured builder, the inverse of
    /// [`apply`](Self::apply): `JobSpec::from_builder(t,
    /// spec.apply(b))` equals `spec` whenever `spec.tenant == t`.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::InvalidSpec`] when the builder has no
    /// reward configured (a reward is mandatory on the wire).
    pub fn from_builder(
        tenant: impl Into<String>,
        builder: &SearchSessionBuilder<'_>,
    ) -> Result<JobSpec, ProtoError> {
        let reward = builder
            .configured_reward()
            .copied()
            .ok_or_else(|| ProtoError::invalid("builder has no reward configured"))?;
        Ok(JobSpec {
            tenant: tenant.into(),
            strategy: builder.configured_strategy(),
            config: builder.configured_config().clone(),
            reward,
            scoring: builder.configured_scoring_precision().unwrap_or_default(),
            fault_budget: builder.configured_fault_budget(),
            checkpoint_every: builder.configured_checkpoint_every(),
        })
    }

    /// Flattens the spec's fields into a frame under construction.
    fn write(&self, ev: Event) -> Event {
        let mut ev = ev
            .with_str("tenant", &self.tenant)
            .with_str("strategy", self.strategy.name())
            .with_u64("iterations", self.config.iterations as u64)
            .with_u64("rollouts", self.config.rollouts_per_update as u64)
            .with_u64("seed", self.config.seed)
            .with_u64("population", self.config.population as u64)
            .with_u64("tournament", self.config.tournament as u64)
            .with_f64("alpha1", self.reward.alpha1)
            .with_f64("omega1", self.reward.omega1)
            .with_f64("alpha2", self.reward.alpha2)
            .with_f64("omega2", self.reward.omega2)
            .with_f64("t_lat_ms", self.reward.constraints.t_lat_ms)
            .with_f64("t_eer_mj", self.reward.constraints.t_eer_mj)
            .with_str(
                "form",
                match self.reward.form {
                    RewardForm::WeightedProduct => "weighted_product",
                    RewardForm::Additive => "additive",
                },
            )
            .with_bool("hard_constraints", self.reward.hard_constraints)
            .with_bool("saturate", self.reward.saturate_below_threshold)
            .with_str(
                "scoring",
                match self.scoring {
                    ScoringPrecision::F32 => "f32",
                    ScoringPrecision::Int8 => "int8",
                },
            );
        if let Some(f) = self.fault_budget {
            ev = ev.with_u64("fault_budget", f);
        }
        if let Some(n) = self.checkpoint_every {
            ev = ev.with_u64("checkpoint_every", n as u64);
        }
        ev
    }

    /// Reads a spec back out of a frame.
    fn read(ev: &Event) -> Result<JobSpec, ProtoError> {
        let tenant = get_str(ev, "tenant")?.to_string();
        if tenant.is_empty() {
            return Err(ProtoError::invalid("empty tenant name"));
        }
        let strategy_name = get_str(ev, "strategy")?;
        let strategy = Strategy::from_name(strategy_name)
            .ok_or_else(|| ProtoError::invalid(format!("unknown strategy {strategy_name:?}")))?;
        let config = SearchConfig {
            iterations: get_u64(ev, "iterations")? as usize,
            rollouts_per_update: get_u64(ev, "rollouts")? as usize,
            seed: get_u64(ev, "seed")?,
            population: get_u64(ev, "population")? as usize,
            tournament: get_u64(ev, "tournament")? as usize,
        };
        if config.iterations == 0 {
            return Err(ProtoError::invalid("iterations must be > 0"));
        }
        let form = match get_str(ev, "form")? {
            "weighted_product" => RewardForm::WeightedProduct,
            "additive" => RewardForm::Additive,
            other => {
                return Err(ProtoError::invalid(format!(
                    "unknown reward form {other:?}"
                )))
            }
        };
        let reward = RewardConfig {
            alpha1: get_f64(ev, "alpha1")?,
            omega1: get_f64(ev, "omega1")?,
            alpha2: get_f64(ev, "alpha2")?,
            omega2: get_f64(ev, "omega2")?,
            constraints: Constraints {
                t_lat_ms: get_f64(ev, "t_lat_ms")?,
                t_eer_mj: get_f64(ev, "t_eer_mj")?,
            },
            form,
            hard_constraints: get_bool(ev, "hard_constraints")?,
            saturate_below_threshold: get_bool(ev, "saturate")?,
        };
        let scoring = match get_str(ev, "scoring")? {
            "f32" => ScoringPrecision::F32,
            "int8" => ScoringPrecision::Int8,
            other => return Err(ProtoError::invalid(format!("unknown scoring {other:?}"))),
        };
        Ok(JobSpec {
            tenant,
            strategy,
            config,
            reward,
            scoring,
            fault_budget: ev.get_u64("fault_budget"),
            checkpoint_every: ev.get_u64("checkpoint_every").map(|n| n as usize),
        })
    }

    /// Serializes the spec as a standalone `job_spec` frame (used for
    /// the on-disk `spec.json` that survives server restarts).
    pub fn to_json(&self) -> String {
        self.write(versioned("job_spec")).to_json()
    }

    /// Parses a standalone `job_spec` frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on malformed JSON, a version mismatch, a
    /// wrong frame kind or invalid spec fields.
    pub fn parse(line: &str) -> Result<JobSpec, ProtoError> {
        let ev = parse_versioned(line)?;
        if ev.kind != "job_spec" {
            return Err(ProtoError::malformed(format!(
                "expected job_spec frame, got {:?}",
                ev.kind
            )));
        }
        JobSpec::read(&ev)
    }
}

/// A snapshot of one job's lifecycle, returned by `status`, `suspend`,
/// `resume` and `subscribe`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// `search_iter` events emitted so far.
    pub iterations_done: u64,
    /// Total iterations the spec asks for.
    pub iterations_total: u64,
    /// Best reward seen (completed jobs only).
    pub best_reward: Option<f64>,
    /// Failure message (failed jobs only).
    pub error: Option<String>,
    /// Latest checkpoint path (suspended jobs with persistence).
    pub checkpoint: Option<String>,
}

/// Terminal stream frame: how a job run ended.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDone {
    /// Which job finished.
    pub job: u64,
    /// `completed`, `suspended` or `failed`.
    pub state: JobState,
    /// Iterations in the history at the end of the run.
    pub iterations: u64,
    /// Best reward (completed jobs only).
    pub best_reward: Option<f64>,
    /// Failure message (failed jobs only).
    pub error: Option<String>,
}

/// One record of a job's non-dominated Pareto archive as it crosses
/// the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// Search iteration that produced the record.
    pub iteration: u64,
    /// Predicted accuracy (maximized).
    pub accuracy: f64,
    /// Predicted latency in milliseconds (minimized).
    pub latency_ms: f64,
    /// Predicted energy in millijoules (minimized).
    pub energy_mj: f64,
    /// Scalar reward under the job's reward config.
    pub reward: f64,
    /// Rendered hardware configuration (`HwConfig` display form).
    pub hw: String,
}

/// Stream frame carrying a completed job's full non-dominated archive.
///
/// Emitted once per successful run, immediately before the `job_done`
/// frame, and replayed by `subscribe` after the `job_event` log. The
/// entries arrive in the archive's canonical order (ascending latency)
/// so the frame is bit-identical across server thread counts and
/// kill-and-resume.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    /// Which job the archive belongs to.
    pub job: u64,
    /// Non-dominated records in canonical archive order.
    pub entries: Vec<ParetoEntry>,
}

/// Aggregate server counters returned by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Jobs waiting for a runner.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs suspended at a checkpoint.
    pub suspended: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Process-wide simulator-cache hits.
    pub cache_hits: u64,
    /// Process-wide simulator-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when no lookups yet.
    pub cache_hit_rate: f64,
    /// Distinct tenants seen by the cache accounting.
    pub tenants: u64,
    /// Subscribers evicted because their bounded write queue filled
    /// (additive in v1; absent means 0).
    pub slow_client_evictions: u64,
    /// Connections closed after missing consecutive heartbeat probes
    /// (additive in v1; absent means 0).
    pub heartbeats_missed: u64,
    /// `fsync` calls issued by the job journal (additive in v1; absent
    /// means 0).
    pub journal_fsyncs: u64,
    /// Shutdown drains that hit their deadline and journaled-and-
    /// abandoned a running job (additive in v1; absent means 0).
    pub drain_timeouts: u64,
    /// Jobs recovered from the journal at startup (additive in v1;
    /// absent means 0).
    pub jobs_recovered: u64,
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a new job; `stream` attaches this connection to the
    /// job's live event stream.
    Submit {
        /// What to run.
        spec: JobSpec,
        /// Stream `job_event` frames back on this connection.
        stream: bool,
    },
    /// Query one job's status.
    Status {
        /// Job id.
        job: u64,
    },
    /// Ask a queued/running job to suspend at the next checkpoint
    /// boundary.
    Suspend {
        /// Job id.
        job: u64,
    },
    /// Re-enqueue a suspended job (also resurrects jobs persisted by a
    /// previous server process from `spec.json` + checkpoints).
    Resume {
        /// Job id.
        job: u64,
        /// Stream `job_event` frames back on this connection.
        stream: bool,
    },
    /// Replay a job's event log, then attach for live events.
    Subscribe {
        /// Job id.
        job: u64,
        /// Replay starts at this 0-based event sequence number;
        /// `None` replays from the beginning (additive in v1 — how a
        /// reconnecting client resumes without duplicate events).
        from_seq: Option<u64>,
    },
    /// Fetch aggregate server counters.
    Stats,
    /// Ask the server to shut down.
    Shutdown,
    /// Heartbeat response to a server [`Reply::Ping`] (additive in
    /// v1). Carries no payload; receipt alone proves liveness.
    Pong,
}

impl Request {
    /// Serializes to one newline-free JSON frame.
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit { spec, stream } => spec
                .write(versioned("submit"))
                .with_bool("stream", *stream)
                .to_json(),
            Request::Status { job } => versioned("status").with_u64("job", *job).to_json(),
            Request::Suspend { job } => versioned("suspend").with_u64("job", *job).to_json(),
            Request::Resume { job, stream } => versioned("resume")
                .with_u64("job", *job)
                .with_bool("stream", *stream)
                .to_json(),
            Request::Subscribe { job, from_seq } => {
                let mut ev = versioned("subscribe").with_u64("job", *job);
                if let Some(seq) = from_seq {
                    ev = ev.with_u64("from_seq", *seq);
                }
                ev.to_json()
            }
            Request::Stats => versioned("stats").to_json(),
            Request::Shutdown => versioned("shutdown").to_json(),
            Request::Pong => versioned("pong").to_json(),
        }
    }

    /// Parses one frame.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::MalformedFrame`] for unparseable JSON or missing
    /// fields, [`ErrorCode::UnsupportedVersion`] for a `"v"` mismatch,
    /// [`ErrorCode::InvalidSpec`] for a submit frame with bad spec
    /// fields.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let ev = parse_versioned(line)?;
        Ok(match ev.kind.as_str() {
            "submit" => Request::Submit {
                spec: JobSpec::read(&ev)?,
                stream: get_bool(&ev, "stream")?,
            },
            "status" => Request::Status {
                job: get_u64(&ev, "job")?,
            },
            "suspend" => Request::Suspend {
                job: get_u64(&ev, "job")?,
            },
            "resume" => Request::Resume {
                job: get_u64(&ev, "job")?,
                stream: get_bool(&ev, "stream")?,
            },
            "subscribe" => Request::Subscribe {
                job: get_u64(&ev, "job")?,
                from_seq: ev.get_u64("from_seq"),
            },
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            "pong" => Request::Pong,
            other => {
                return Err(ProtoError::malformed(format!(
                    "unknown request kind {other:?}"
                )))
            }
        })
    }
}

/// A server → client frame (replies and stream events).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A submit was accepted.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// Reply to `status` / `suspend` / `resume` / `subscribe`.
    Status(JobStatus),
    /// Reply to `stats`.
    Stats(ServerStats),
    /// One live (or replayed) trace line from a job's stream. `line`
    /// is the raw `search_iter`-dialect JSONL line, byte-exact.
    Event {
        /// Which job emitted it.
        job: u64,
        /// 0-based position in the job's event log.
        seq: u64,
        /// The raw trace line.
        line: String,
    },
    /// A completed job's non-dominated archive, streamed right before
    /// [`Reply::Done`] and replayed by `subscribe`.
    ParetoFront(ParetoFront),
    /// Terminal stream frame for a job run.
    Done(JobDone),
    /// Reply to `shutdown`.
    ShuttingDown,
    /// Heartbeat probe sent when a connection has been idle past its
    /// read deadline (additive in v1); the client answers with
    /// [`Request::Pong`].
    Ping,
    /// Any request failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Serializes to one newline-free JSON frame.
    pub fn to_json(&self) -> String {
        match self {
            Reply::Submitted { job } => versioned("submitted").with_u64("job", *job).to_json(),
            Reply::Status(s) => {
                let mut ev = versioned("job_status")
                    .with_u64("job", s.job)
                    .with_str("tenant", &s.tenant)
                    .with_str("state", s.state.name())
                    .with_u64("iterations_done", s.iterations_done)
                    .with_u64("iterations_total", s.iterations_total);
                if let Some(r) = s.best_reward {
                    ev = ev.with_f64("best_reward", r);
                }
                if let Some(e) = &s.error {
                    ev = ev.with_str("error", e);
                }
                if let Some(c) = &s.checkpoint {
                    ev = ev.with_str("checkpoint", c);
                }
                ev.to_json()
            }
            Reply::Stats(s) => versioned("server_stats")
                .with_u64("queued", s.queued)
                .with_u64("running", s.running)
                .with_u64("suspended", s.suspended)
                .with_u64("completed", s.completed)
                .with_u64("failed", s.failed)
                .with_u64("cache_hits", s.cache_hits)
                .with_u64("cache_misses", s.cache_misses)
                .with_f64("cache_hit_rate", s.cache_hit_rate)
                .with_u64("tenants", s.tenants)
                .with_u64("slow_client_evictions", s.slow_client_evictions)
                .with_u64("heartbeats_missed", s.heartbeats_missed)
                .with_u64("journal_fsyncs", s.journal_fsyncs)
                .with_u64("drain_timeouts", s.drain_timeouts)
                .with_u64("jobs_recovered", s.jobs_recovered)
                .to_json(),
            Reply::Event { job, seq, line } => versioned("job_event")
                .with_u64("job", *job)
                .with_u64("seq", *seq)
                .with_str("line", line)
                .to_json(),
            Reply::ParetoFront(front) => {
                let mut ev = versioned("pareto_front")
                    .with_u64("job", front.job)
                    .with_u64("count", front.entries.len() as u64);
                for (i, e) in front.entries.iter().enumerate() {
                    ev = ev
                        .with_u64(format!("iter{i}"), e.iteration)
                        .with_f64(format!("acc{i}"), e.accuracy)
                        .with_f64(format!("lat{i}"), e.latency_ms)
                        .with_f64(format!("eer{i}"), e.energy_mj)
                        .with_f64(format!("rew{i}"), e.reward)
                        .with_str(format!("hw{i}"), &e.hw);
                }
                ev.to_json()
            }
            Reply::Done(d) => {
                let mut ev = versioned("job_done")
                    .with_u64("job", d.job)
                    .with_str("state", d.state.name())
                    .with_u64("iterations", d.iterations);
                if let Some(r) = d.best_reward {
                    ev = ev.with_f64("best_reward", r);
                }
                if let Some(e) = &d.error {
                    ev = ev.with_str("error", e);
                }
                ev.to_json()
            }
            Reply::ShuttingDown => versioned("shutting_down").to_json(),
            Reply::Ping => versioned("ping").to_json(),
            Reply::Error { code, message } => versioned("error")
                .with_str("code", code.name())
                .with_str("message", message)
                .to_json(),
        }
    }

    /// Parses one frame.
    ///
    /// # Errors
    ///
    /// As [`Request::parse`].
    pub fn parse(line: &str) -> Result<Reply, ProtoError> {
        let ev = parse_versioned(line)?;
        Ok(match ev.kind.as_str() {
            "submitted" => Reply::Submitted {
                job: get_u64(&ev, "job")?,
            },
            "job_status" => {
                let state_name = get_str(&ev, "state")?;
                Reply::Status(JobStatus {
                    job: get_u64(&ev, "job")?,
                    tenant: get_str(&ev, "tenant")?.to_string(),
                    state: JobState::from_name(state_name).ok_or_else(|| {
                        ProtoError::malformed(format!("unknown job state {state_name:?}"))
                    })?,
                    iterations_done: get_u64(&ev, "iterations_done")?,
                    iterations_total: get_u64(&ev, "iterations_total")?,
                    best_reward: ev.get_f64("best_reward"),
                    error: ev.get_str("error").map(str::to_string),
                    checkpoint: ev.get_str("checkpoint").map(str::to_string),
                })
            }
            "server_stats" => Reply::Stats(ServerStats {
                queued: get_u64(&ev, "queued")?,
                running: get_u64(&ev, "running")?,
                suspended: get_u64(&ev, "suspended")?,
                completed: get_u64(&ev, "completed")?,
                failed: get_u64(&ev, "failed")?,
                cache_hits: get_u64(&ev, "cache_hits")?,
                cache_misses: get_u64(&ev, "cache_misses")?,
                cache_hit_rate: get_f64(&ev, "cache_hit_rate")?,
                tenants: get_u64(&ev, "tenants")?,
                slow_client_evictions: ev.get_u64("slow_client_evictions").unwrap_or(0),
                heartbeats_missed: ev.get_u64("heartbeats_missed").unwrap_or(0),
                journal_fsyncs: ev.get_u64("journal_fsyncs").unwrap_or(0),
                drain_timeouts: ev.get_u64("drain_timeouts").unwrap_or(0),
                jobs_recovered: ev.get_u64("jobs_recovered").unwrap_or(0),
            }),
            "job_event" => Reply::Event {
                job: get_u64(&ev, "job")?,
                seq: get_u64(&ev, "seq")?,
                line: get_str(&ev, "line")?.to_string(),
            },
            "pareto_front" => {
                let count = get_u64(&ev, "count")?;
                // The allocation below trusts `count`; cap it first so a
                // hostile frame cannot request an absurd reservation.
                if count > MAX_PARETO_ENTRIES {
                    return Err(ProtoError::malformed(format!(
                        "pareto_front count {count} exceeds cap {MAX_PARETO_ENTRIES}"
                    )));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for i in 0..count {
                    entries.push(ParetoEntry {
                        iteration: get_u64(&ev, &format!("iter{i}"))?,
                        accuracy: get_f64(&ev, &format!("acc{i}"))?,
                        latency_ms: get_f64(&ev, &format!("lat{i}"))?,
                        energy_mj: get_f64(&ev, &format!("eer{i}"))?,
                        reward: get_f64(&ev, &format!("rew{i}"))?,
                        hw: get_str(&ev, &format!("hw{i}"))?.to_string(),
                    });
                }
                Reply::ParetoFront(ParetoFront {
                    job: get_u64(&ev, "job")?,
                    entries,
                })
            }
            "job_done" => {
                let state_name = get_str(&ev, "state")?;
                Reply::Done(JobDone {
                    job: get_u64(&ev, "job")?,
                    state: JobState::from_name(state_name).ok_or_else(|| {
                        ProtoError::malformed(format!("unknown job state {state_name:?}"))
                    })?,
                    iterations: get_u64(&ev, "iterations")?,
                    best_reward: ev.get_f64("best_reward"),
                    error: ev.get_str("error").map(str::to_string),
                })
            }
            "shutting_down" => Reply::ShuttingDown,
            "ping" => Reply::Ping,
            "error" => {
                let code_name = get_str(&ev, "code")?;
                Reply::Error {
                    code: ErrorCode::from_name(code_name).ok_or_else(|| {
                        ProtoError::malformed(format!("unknown error code {code_name:?}"))
                    })?,
                    message: get_str(&ev, "message")?.to_string(),
                }
            }
            other => {
                return Err(ProtoError::malformed(format!(
                    "unknown reply kind {other:?}"
                )))
            }
        })
    }
}

fn versioned(kind: &str) -> Event {
    Event::new(kind).with_u64("v", PROTO_VERSION)
}

fn parse_versioned(line: &str) -> Result<Event, ProtoError> {
    if line.len() > MAX_FRAME_LEN {
        return Err(ProtoError::malformed(format!(
            "frame of {} bytes exceeds cap {MAX_FRAME_LEN}",
            line.len()
        )));
    }
    let ev = Event::parse(line).map_err(|e| ProtoError::malformed(e.to_string()))?;
    match ev.get_u64("v") {
        Some(PROTO_VERSION) => Ok(ev),
        Some(v) => Err(ProtoError {
            code: ErrorCode::UnsupportedVersion,
            message: format!("protocol version {v} (this server speaks {PROTO_VERSION})"),
        }),
        None => Err(ProtoError::malformed("missing \"v\" version field")),
    }
}

fn get_str<'e>(ev: &'e Event, name: &str) -> Result<&'e str, ProtoError> {
    ev.get_str(name)
        .ok_or_else(|| ProtoError::malformed(format!("missing string field {name:?}")))
}

fn get_u64(ev: &Event, name: &str) -> Result<u64, ProtoError> {
    ev.get_u64(name)
        .ok_or_else(|| ProtoError::malformed(format!("missing integer field {name:?}")))
}

fn get_f64(ev: &Event, name: &str) -> Result<f64, ProtoError> {
    ev.get_f64(name)
        .ok_or_else(|| ProtoError::malformed(format!("missing float field {name:?}")))
}

fn get_bool(ev: &Event, name: &str) -> Result<bool, ProtoError> {
    match ev.get(name) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(ProtoError::malformed(format!(
            "missing boolean field {name:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoso_core::session::SearchSession;

    fn sample_spec() -> JobSpec {
        JobSpec {
            tenant: "acme".to_string(),
            strategy: Strategy::Evolution,
            config: SearchConfig {
                iterations: 40,
                rollouts_per_update: 4,
                seed: 7,
                population: 12,
                tournament: 3,
            },
            reward: RewardConfig {
                alpha1: 0.25,
                omega1: -0.7,
                alpha2: 0.75,
                omega2: -0.07,
                constraints: Constraints {
                    t_lat_ms: 55.5,
                    t_eer_mj: 2.25,
                },
                form: RewardForm::Additive,
                hard_constraints: true,
                saturate_below_threshold: true,
            },
            scoring: ScoringPrecision::Int8,
            fault_budget: Some(9),
            checkpoint_every: Some(5),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Submit {
                spec: sample_spec(),
                stream: true,
            },
            Request::Submit {
                spec: JobSpec::new("solo", RewardConfig::balanced(Constraints::paper())),
                stream: false,
            },
            Request::Status { job: 3 },
            Request::Suspend { job: 9 },
            Request::Resume {
                job: 9,
                stream: true,
            },
            Request::Subscribe {
                job: 1,
                from_seq: None,
            },
            Request::Subscribe {
                job: 1,
                from_seq: Some(42),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Pong,
        ];
        for req in requests {
            let line = req.to_json();
            assert_eq!(Request::parse(&line).unwrap(), req, "frame: {line}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = vec![
            Reply::Submitted { job: 17 },
            Reply::Status(JobStatus {
                job: 17,
                tenant: "acme".to_string(),
                state: JobState::Suspended,
                iterations_done: 12,
                iterations_total: 40,
                best_reward: Some(1.25),
                error: None,
                checkpoint: Some("/tmp/jobs/17/ckpt_000012.snap".to_string()),
            }),
            Reply::Status(JobStatus {
                job: 2,
                tenant: "other".to_string(),
                state: JobState::Failed,
                iterations_done: 3,
                iterations_total: 10,
                best_reward: None,
                error: Some("fault budget exhausted: 4 faults > budget 3".to_string()),
                checkpoint: None,
            }),
            Reply::Stats(ServerStats {
                queued: 1,
                running: 2,
                suspended: 3,
                completed: 4,
                failed: 5,
                cache_hits: 100,
                cache_misses: 25,
                cache_hit_rate: 0.8,
                tenants: 8,
                slow_client_evictions: 2,
                heartbeats_missed: 1,
                journal_fsyncs: 37,
                drain_timeouts: 1,
                jobs_recovered: 3,
            }),
            Reply::Event {
                job: 17,
                seq: 4,
                line: "{\"event\":\"search_iter\",\"iter\":4,\"reward\":0.5}".to_string(),
            },
            Reply::ParetoFront(ParetoFront {
                job: 17,
                entries: vec![
                    ParetoEntry {
                        iteration: 3,
                        accuracy: 0.91,
                        latency_ms: 12.5,
                        energy_mj: 0.75,
                        reward: 1.375,
                        hw: "pes=64 gbuf_kb=128 rbuf_bytes=512".to_string(),
                    },
                    ParetoEntry {
                        iteration: 31,
                        accuracy: 0.94,
                        latency_ms: 19.25,
                        energy_mj: 1.5,
                        reward: 1.25,
                        hw: "pes=256 gbuf_kb=256 rbuf_bytes=1024".to_string(),
                    },
                ],
            }),
            Reply::ParetoFront(ParetoFront {
                job: 4,
                entries: Vec::new(),
            }),
            Reply::Done(JobDone {
                job: 17,
                state: JobState::Completed,
                iterations: 40,
                best_reward: Some(1.5),
                error: None,
            }),
            Reply::ShuttingDown,
            Reply::Ping,
            Reply::Error {
                code: ErrorCode::AdmissionFull,
                message: "queue at capacity (64 pending)".to_string(),
            },
        ];
        for reply in replies {
            let line = reply.to_json();
            assert_eq!(Reply::parse(&line).unwrap(), reply, "frame: {line}");
        }
    }

    #[test]
    fn event_line_payload_is_byte_exact_through_the_codec() {
        // A stream frame must deliver the inner trace line byte-for-byte
        // even when it contains quotes, backslashes and non-ASCII text.
        let inner = "{\"event\":\"search_iter\",\"iter\":0,\"note\":\"q\\\"uo\\\\te\u{00e9}\"}";
        let frame = Reply::Event {
            job: 1,
            seq: 0,
            line: inner.to_string(),
        }
        .to_json();
        match Reply::parse(&frame).unwrap() {
            Reply::Event { line, .. } => assert_eq!(line, inner),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn pareto_front_frame_is_bit_exact_through_the_codec() {
        // Archive objectives must survive the wire without rounding so
        // the served front can be compared `==` against the in-process
        // archive. Use values with awkward binary expansions.
        let front = ParetoFront {
            job: 9,
            entries: vec![ParetoEntry {
                iteration: u64::MAX >> 12,
                accuracy: 0.1 + 0.2,
                latency_ms: 1.0 / 3.0,
                energy_mj: 6.02214076e-23,
                reward: -1.7976931348623157e308,
                hw: "pes=8 gbuf_kb=16 rbuf_bytes=\"64\"".to_string(),
            }],
        };
        let line = Reply::ParetoFront(front.clone()).to_json();
        match Reply::parse(&line).unwrap() {
            Reply::ParetoFront(back) => {
                assert_eq!(back.job, front.job);
                assert_eq!(back.entries.len(), 1);
                let (a, b) = (&back.entries[0], &front.entries[0]);
                assert_eq!(a.iteration, b.iteration);
                assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
                assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
                assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits());
                assert_eq!(a.reward.to_bits(), b.reward.to_bits());
                assert_eq!(a.hw, b.hw);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn spec_round_trips_through_builder() {
        let spec = sample_spec();
        let builder = spec.apply(SearchSession::builder());
        let back = JobSpec::from_builder("acme", &builder).unwrap();
        assert_eq!(back, spec);

        // And through the standalone frame form.
        let line = spec.to_json();
        assert_eq!(JobSpec::parse(&line).unwrap(), spec);
    }

    #[test]
    fn from_builder_requires_a_reward() {
        let err = JobSpec::from_builder("t", &SearchSession::builder()).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidSpec);
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let line = Event::new("stats").with_u64("v", 99).to_json();
        let err = Request::parse(&line).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);

        let unversioned = Event::new("stats").to_json();
        let err = Request::parse(&unversioned).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);

        let err = Request::parse("not json at all").unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);
    }

    #[test]
    fn invalid_spec_fields_are_typed() {
        let mut spec = sample_spec();
        spec.config.iterations = 0;
        let line = Request::Submit {
            spec,
            stream: false,
        }
        .to_json();
        let err = Request::parse(&line).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidSpec);
    }

    #[test]
    fn stats_counter_fields_are_additive() {
        // A v1 frame from a peer that predates the resilience counters
        // must still parse, with the new counters defaulting to zero.
        let legacy = versioned("server_stats")
            .with_u64("queued", 1)
            .with_u64("running", 2)
            .with_u64("suspended", 0)
            .with_u64("completed", 3)
            .with_u64("failed", 0)
            .with_u64("cache_hits", 10)
            .with_u64("cache_misses", 5)
            .with_f64("cache_hit_rate", 0.666)
            .with_u64("tenants", 2)
            .to_json();
        match Reply::parse(&legacy).unwrap() {
            Reply::Stats(s) => {
                assert_eq!(s.queued, 1);
                assert_eq!(s.slow_client_evictions, 0);
                assert_eq!(s.heartbeats_missed, 0);
                assert_eq!(s.journal_fsyncs, 0);
                assert_eq!(s.drain_timeouts, 0);
                assert_eq!(s.jobs_recovered, 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_parsing() {
        let mut line = String::from("{\"event\":\"stats\",\"v\":1,\"pad\":\"");
        line.push_str(&"x".repeat(MAX_FRAME_LEN));
        line.push_str("\"}");
        let err = Request::parse(&line).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);
        assert!(err.message.contains("exceeds cap"), "{}", err.message);
    }

    #[test]
    fn pareto_count_is_capped_before_allocation() {
        // A hostile frame declaring u64::MAX entries must bounce with a
        // typed error instead of reserving memory for them.
        let line = versioned("pareto_front")
            .with_u64("job", 1)
            .with_u64("count", u64::MAX)
            .to_json();
        let err = Reply::parse(&line).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedFrame);
        assert!(err.message.contains("exceeds cap"), "{}", err.message);
    }

    #[test]
    fn names_round_trip() {
        for code in [
            ErrorCode::MalformedFrame,
            ErrorCode::UnsupportedVersion,
            ErrorCode::InvalidSpec,
            ErrorCode::UnknownJob,
            ErrorCode::AdmissionFull,
            ErrorCode::FaultBudgetExhausted,
            ErrorCode::InvalidState,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_name(code.name()), Some(code));
        }
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Suspended,
            JobState::Completed,
            JobState::Failed,
        ] {
            assert_eq!(JobState::from_name(state.name()), Some(state));
        }
    }
}
