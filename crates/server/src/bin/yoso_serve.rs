//! The yoso-server daemon binary.
//!
//! ```text
//! yoso_serve [--addr HOST:PORT] [--max-jobs N] [--queue-cap N]
//!            [--checkpoint-root DIR] [--tenant-fault-budget N]
//!            [--chaos-plan FILE] [--read-timeout-ms N]
//!            [--write-timeout-ms N] [--heartbeat-misses N]
//!            [--max-sub-queue N] [--drain-timeout-ms N]
//!            [--journal-fsync-every N] [--no-recover]
//!            [--bind-retry-ms N]
//! ```
//!
//! Binds, prints `listening on <addr>` to stdout (port 0 resolves to a
//! free port, so drivers can parse the line), then serves until a
//! client sends a `shutdown` frame. With a `--checkpoint-root`, jobs
//! recorded in the write-ahead journal are recovered at startup — a
//! daemon killed with `SIGKILL` and relaunched on the same root picks
//! its tenants' jobs back up (pass `--no-recover` to opt out).
//!
//! `--bind-retry-ms` keeps retrying a failed bind for that long — how a
//! restart drill rebinds the fixed port an earlier incarnation held
//! moments before.

use std::time::{Duration, Instant};

use yoso_server::{Server, ServerConfig};

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn main() {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = arg("--addr") {
        cfg.addr = addr;
    }
    if let Some(n) = arg("--max-jobs").and_then(|v| v.parse().ok()) {
        cfg.max_concurrent_jobs = n;
    }
    if let Some(n) = arg("--queue-cap").and_then(|v| v.parse().ok()) {
        cfg.queue_capacity = n;
    }
    if let Some(dir) = arg("--checkpoint-root") {
        cfg.checkpoint_root = Some(dir.into());
    }
    if let Some(b) = arg("--tenant-fault-budget").and_then(|v| v.parse().ok()) {
        cfg.tenant_fault_budget = Some(b);
    }
    if let Some(ms) = arg("--read-timeout-ms").and_then(|v| v.parse().ok()) {
        cfg.read_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = arg("--write-timeout-ms").and_then(|v| v.parse().ok()) {
        cfg.write_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = arg("--heartbeat-misses").and_then(|v| v.parse().ok()) {
        cfg.heartbeat_misses = n;
    }
    if let Some(n) = arg("--max-sub-queue").and_then(|v| v.parse().ok()) {
        cfg.max_subscriber_queue = n;
    }
    if let Some(ms) = arg("--drain-timeout-ms").and_then(|v| v.parse().ok()) {
        cfg.drain_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = arg("--journal-fsync-every").and_then(|v| v.parse().ok()) {
        cfg.journal_fsync_every = n;
    }
    if present("--no-recover") {
        cfg.recover_jobs = false;
    }
    if let Some(path) = arg("--chaos-plan") {
        let plan = yoso_chaos::FaultPlan::load(&path)
            .unwrap_or_else(|e| panic!("--chaos-plan {path}: {e}"));
        eprintln!(
            "[chaos] armed plan from {path}: seed {}, {} rule(s)",
            plan.seed,
            plan.rules.len()
        );
        yoso_chaos::install(&plan);
    }

    let retry_for = Duration::from_millis(
        arg("--bind-retry-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    );
    let deadline = Instant::now() + retry_for;
    let server = loop {
        match Server::start(cfg.clone()) {
            Ok(server) => break server,
            Err(e) if Instant::now() < deadline => {
                eprintln!("bind {}: {e}; retrying", cfg.addr);
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("bind: {e}"),
        }
    };
    println!("listening on {}", server.addr());
    server.wait_for_shutdown_request();
    eprintln!("shutdown requested; draining");
    server.shutdown();
}
