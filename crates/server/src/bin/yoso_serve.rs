//! The yoso-server daemon binary.
//!
//! ```text
//! yoso_serve [--addr HOST:PORT] [--max-jobs N] [--queue-cap N]
//!            [--checkpoint-root DIR] [--tenant-fault-budget N]
//!            [--chaos-plan FILE]
//! ```
//!
//! Binds, prints `listening on <addr>` to stdout (port 0 resolves to a
//! free port, so drivers can parse the line), then serves until a
//! client sends a `shutdown` frame.

use yoso_server::{Server, ServerConfig};

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = arg("--addr") {
        cfg.addr = addr;
    }
    if let Some(n) = arg("--max-jobs").and_then(|v| v.parse().ok()) {
        cfg.max_concurrent_jobs = n;
    }
    if let Some(n) = arg("--queue-cap").and_then(|v| v.parse().ok()) {
        cfg.queue_capacity = n;
    }
    if let Some(dir) = arg("--checkpoint-root") {
        cfg.checkpoint_root = Some(dir.into());
    }
    if let Some(b) = arg("--tenant-fault-budget").and_then(|v| v.parse().ok()) {
        cfg.tenant_fault_budget = Some(b);
    }
    if let Some(path) = arg("--chaos-plan") {
        let plan = yoso_chaos::FaultPlan::load(&path)
            .unwrap_or_else(|e| panic!("--chaos-plan {path}: {e}"));
        eprintln!(
            "[chaos] armed plan from {path}: seed {}, {} rule(s)",
            plan.seed,
            plan.rules.len()
        );
        yoso_chaos::install(&plan);
    }

    let server = Server::start(cfg).unwrap_or_else(|e| panic!("bind: {e}"));
    println!("listening on {}", server.addr());
    server.wait_for_shutdown_request();
    eprintln!("shutdown requested; draining");
    server.shutdown();
}
