//! Property tests of the search-space machinery across skeleton shapes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_arch::{Genotype, LayerKind, NetworkSkeleton, NetworkStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any (cells, reductions, channels, resolution) skeleton that leaves
    /// at least 1x1 resolution compiles any genotype consistently.
    #[test]
    fn arbitrary_skeletons_compile(
        seed in 0u64..1000,
        num_cells in 1usize..8,
        reductions in 0usize..3,
        init_channels in 4usize..17,
        input_hw in 8usize..17,
    ) {
        let reductions = reductions.min(num_cells);
        // Resolution must stay integral across every reduction.
        prop_assume!(input_hw % (1 << reductions) == 0);
        prop_assume!(input_hw >> reductions >= 1);
        let sk = NetworkSkeleton {
            input_hw,
            input_channels: 3,
            num_classes: 10,
            init_channels,
            num_cells,
            reduction_positions: NetworkSkeleton::evenly_spaced(num_cells, reductions),
        };
        let g = Genotype::random(&mut StdRng::seed_from_u64(seed));
        let plan = sk.compile(&g);
        prop_assert_eq!(plan.cells.len(), num_cells);
        // Channel schedule: doubled once per reduction position < cells.
        let n_red = plan.cells.iter().filter(|c| c.is_reduction).count();
        prop_assert_eq!(
            plan.cells.last().unwrap().c,
            init_channels << n_red
        );
        // Stats recomputed from scratch agree.
        let stats = NetworkStats::from_layers(&plan.layers);
        prop_assert_eq!(stats, plan.stats);
    }

    /// Doubling init channels multiplies dense-conv MACs by ~4 (both cin
    /// and cout double) — sanity of the workload model scaling.
    #[test]
    fn macs_scale_quadratically_with_width(seed in 0u64..500) {
        let g = Genotype::random(&mut StdRng::seed_from_u64(seed));
        let mut sk1 = NetworkSkeleton::tiny();
        sk1.init_channels = 8;
        let mut sk2 = sk1.clone();
        sk2.init_channels = 16;
        let p1 = sk1.compile(&g);
        let p2 = sk2.compile(&g);
        let r = p2.stats.conv_macs as f64 / p1.stats.conv_macs.max(1) as f64;
        // Stem (3->C) scales linearly, everything else quadratically.
        prop_assert!(r > 2.5 && r < 4.5, "ratio {}", r);
    }

    /// The compiled layer list contains exactly one stem, one classifier,
    /// one global pool, and 2 preprocessing convs per cell.
    #[test]
    fn layer_census(seed in 0u64..500) {
        let g = Genotype::random(&mut StdRng::seed_from_u64(seed));
        let sk = NetworkSkeleton::paper_default();
        let plan = sk.compile(&g);
        let count = |pred: &dyn Fn(&str) -> bool| {
            plan.layers.iter().filter(|l| pred(&l.name)).count()
        };
        prop_assert_eq!(count(&|n| n == "stem"), 1);
        prop_assert_eq!(count(&|n| n == "classifier"), 1);
        prop_assert_eq!(count(&|n| n == "gap"), 1);
        prop_assert_eq!(count(&|n| n.contains(".prep")), 2 * sk.num_cells);
        // Each internal node contributes exactly two op slots.
        let op_slots = count(&|n| n.contains(".op"));
        // dwconv ops emit two layers (.dw + .pw); everything else one.
        let dw_layers = plan
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::DwConv { .. }))
            .count();
        prop_assert_eq!(op_slots, sk.num_cells * 5 * 2 + dw_layers);
    }

    /// Pool layers never carry weights; conv layers always do.
    #[test]
    fn weight_accounting(seed in 0u64..500) {
        let g = Genotype::random(&mut StdRng::seed_from_u64(seed));
        let plan = NetworkSkeleton::tiny().compile(&g);
        for l in &plan.layers {
            match l.kind {
                LayerKind::Pool { .. } | LayerKind::GlobalPool { .. } => {
                    prop_assert_eq!(l.weights(), 0)
                }
                _ => prop_assert!(l.weights() > 0, "{} has no weights", l.name),
            }
        }
    }
}
