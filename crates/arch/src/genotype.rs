//! Cell genotypes: the DNN half of the co-design search space.
//!
//! A cell is a DAG of `B = 7` nodes (paper §III-D): nodes 0 and 1 are the
//! outputs of the previous two cells; each of the five internal nodes picks
//! two earlier nodes and applies one operation to each, summing the
//! results (Eq. 5). Cell output is the concatenation of internal nodes
//! that feed no other node.

use crate::op::Op;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of nodes per cell (paper: `B = 7`).
pub const NODES_PER_CELL: usize = 7;
/// Number of internal (choice-bearing) nodes per cell.
pub const INTERNAL_NODES: usize = NODES_PER_CELL - 2;
/// Hyper-parameters per internal node: two inputs and two ops.
pub const PARAMS_PER_NODE: usize = 4;
/// DNN hyper-parameters per cell.
pub const PARAMS_PER_CELL: usize = INTERNAL_NODES * PARAMS_PER_NODE;
/// Total DNN hyper-parameters (`S = 40` in the paper: two cell types).
pub const DNN_PARAMS: usize = 2 * PARAMS_PER_CELL;

/// Configuration of one internal node: two input nodes and the operation
/// applied to each (Eq. 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeGene {
    /// Index of the first input node (must be `<` this node's index).
    pub in1: usize,
    /// Operation applied to the first input.
    pub op1: Op,
    /// Index of the second input node (must be `<` this node's index).
    pub in2: usize,
    /// Operation applied to the second input.
    pub op2: Op,
}

/// Genotype of one cell: the five internal nodes in order (indices 2..=6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellGenotype {
    /// Internal node genes; entry `i` configures node `i + 2`.
    pub nodes: [NodeGene; INTERNAL_NODES],
}

impl CellGenotype {
    /// Validates the DAG constraint: every input index precedes its node.
    pub fn is_valid(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, g)| {
            let node_idx = i + 2;
            g.in1 < node_idx && g.in2 < node_idx
        })
    }

    /// Samples a uniformly random valid cell genotype.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut nodes = [NodeGene {
            in1: 0,
            op1: Op::Conv3,
            in2: 0,
            op2: Op::Conv3,
        }; INTERNAL_NODES];
        for (i, g) in nodes.iter_mut().enumerate() {
            let node_idx = i + 2;
            g.in1 = rng.random_range(0..node_idx);
            g.op1 = Op::from_index(rng.random_range(0..Op::COUNT));
            g.in2 = rng.random_range(0..node_idx);
            g.op2 = Op::from_index(rng.random_range(0..Op::COUNT));
        }
        CellGenotype { nodes }
    }

    /// Indices of internal nodes that are used as an input by a later node.
    pub fn used_internal_nodes(&self) -> Vec<usize> {
        let mut used = [false; NODES_PER_CELL];
        for g in &self.nodes {
            used[g.in1] = true;
            used[g.in2] = true;
        }
        (2..NODES_PER_CELL).filter(|&i| used[i]).collect()
    }

    /// Indices of internal nodes that feed no other node; their outputs are
    /// concatenated to form the cell output. Never empty (the last node
    /// can't feed anything).
    pub fn output_nodes(&self) -> Vec<usize> {
        let used = self.used_internal_nodes();
        (2..NODES_PER_CELL).filter(|i| !used.contains(i)).collect()
    }

    /// Number of concatenated output nodes.
    pub fn output_arity(&self) -> usize {
        self.output_nodes().len()
    }

    /// Multiset histogram of the 10 op slots, indexed by [`Op::index`].
    pub fn op_histogram(&self) -> [usize; Op::COUNT] {
        let mut h = [0usize; Op::COUNT];
        for g in &self.nodes {
            h[g.op1.index()] += 1;
            h[g.op2.index()] += 1;
        }
        h
    }
}

impl fmt::Display for CellGenotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, g) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "n{}=({}<-{}, {}<-{})", i + 2, g.op1, g.in1, g.op2, g.in2)?;
        }
        Ok(())
    }
}

/// Full network genotype: a normal cell and a reduction cell (shared by
/// every instance of the respective kind, as in NASNet/DARTS/the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Genotype {
    /// Stride-1 cell repeated at constant resolution.
    pub normal: CellGenotype,
    /// Stride-2 cell that halves resolution and doubles channels.
    pub reduction: CellGenotype,
}

impl Genotype {
    /// Samples a uniformly random valid genotype.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Genotype {
            normal: CellGenotype::random(rng),
            reduction: CellGenotype::random(rng),
        }
    }

    /// Validates both cells.
    pub fn is_valid(&self) -> bool {
        self.normal.is_valid() && self.reduction.is_valid()
    }
}

impl fmt::Display for Genotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "normal[{}] reduction[{}]", self.normal, self.reduction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constants_match_paper() {
        assert_eq!(NODES_PER_CELL, 7);
        assert_eq!(DNN_PARAMS, 40, "paper: S = 40");
    }

    #[test]
    fn random_genotypes_valid() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let g = Genotype::random(&mut rng);
            assert!(g.is_valid());
        }
    }

    #[test]
    fn output_nodes_never_empty_and_contains_last() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = CellGenotype::random(&mut rng);
            let out = c.output_nodes();
            assert!(!out.is_empty());
            assert!(
                out.contains(&(NODES_PER_CELL - 1)),
                "last node is never an input"
            );
            assert!(out.len() <= INTERNAL_NODES);
        }
    }

    #[test]
    fn op_histogram_sums_to_slots() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = CellGenotype::random(&mut rng);
        let h = c.op_histogram();
        assert_eq!(h.iter().sum::<usize>(), INTERNAL_NODES * 2);
    }

    #[test]
    fn invalid_genotype_detected() {
        let mut c = CellGenotype::random(&mut StdRng::seed_from_u64(3));
        c.nodes[0].in1 = 5; // node 2 cannot take input from node 5
        assert!(!c.is_valid());
    }

    #[test]
    fn display_is_informative() {
        let c = CellGenotype::random(&mut StdRng::seed_from_u64(4));
        let s = c.to_string();
        assert!(s.contains("n2="));
        assert!(s.contains("n6="));
    }

    #[test]
    fn used_and_output_partition_internal_nodes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let c = CellGenotype::random(&mut rng);
            let used = c.used_internal_nodes();
            let out = c.output_nodes();
            assert_eq!(used.len() + out.len(), INTERNAL_NODES);
            for u in &used {
                assert!(!out.contains(u));
            }
        }
    }
}
