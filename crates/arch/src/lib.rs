//! # yoso-arch
//!
//! The joint DNN + accelerator search space of the YOSO co-design
//! framework (DATE 2020):
//!
//! * [`Op`] — the six candidate cell operations;
//! * [`Genotype`] / [`CellGenotype`] — NASNet-style normal + reduction
//!   cells with `B = 7` nodes (Eq. 5 of the paper);
//! * [`HwConfig`] — systolic-array configuration (PE array, global buffer,
//!   register buffer, dataflow — Table 1);
//! * [`ActionSpace`] — the 44-symbol action-sequence codec used by the RL
//!   controller (`S = 40`, `L = 4`, §III-C);
//! * [`NetworkSkeleton`] / [`NetworkPlan`] — compilation of a genotype
//!   into the concrete [`LayerSpec`] workload shared by the trainer
//!   (`yoso-nn`) and the simulator (`yoso-accel`).
//!
//! ## Example
//!
//! ```
//! use yoso_arch::{ActionSpace, DesignPoint, NetworkSkeleton};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let point = DesignPoint::random(&mut rng);
//! let space = ActionSpace::new();
//! let actions = space.encode(&point);
//! assert_eq!(actions.len(), 44);
//! assert_eq!(space.decode(&actions).unwrap(), point);
//!
//! let plan = NetworkSkeleton::paper_default().compile(&point.genotype);
//! assert!(plan.stats.total_macs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod genotype;
pub mod hw;
pub mod layer;
pub mod op;
pub mod skeleton;
pub mod snapshot;
pub mod space;

pub use codec::{ActionSpace, DecodeActionError, DNN_LEN, HW_LEN, SEQUENCE_LEN};
pub use genotype::{CellGenotype, Genotype, NodeGene, DNN_PARAMS, INTERNAL_NODES, NODES_PER_CELL};
pub use hw::{Dataflow, HwConfig, PeArray, GBUF_MENU_KB, PE_MENU, RBUF_MENU_B};
pub use layer::{LayerKind, LayerSpec, NetworkStats, PoolKind};
pub use op::Op;
pub use skeleton::{CellPlan, NetworkPlan, NetworkSkeleton};
pub use space::{cardinality, DesignPoint, SpaceCardinality};
