//! Accelerator configuration: the hardware half of the co-design space.
//!
//! Table 1 of the paper fixes four configurable parameters for the systolic
//! array template: PE array size (8x8 … 16x32), global buffer size
//! (108 … 1024 KB), register buffer size (64 … 1024 B) and one of four
//! dataflows (WS, OS, RS, NLR).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dataflow (loop-ordering / operand-stationarity) of the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Dataflow {
    /// Weight stationary: weights pinned in PE registers.
    Ws,
    /// Output stationary: partial sums pinned in PE registers.
    Os,
    /// Row stationary: Eyeriss-style hybrid row reuse.
    Rs,
    /// No local reuse: all operands streamed from the global buffer.
    Nlr,
}

impl Dataflow {
    /// All dataflows in canonical (codec) order.
    pub const ALL: [Dataflow; 4] = [Dataflow::Ws, Dataflow::Os, Dataflow::Rs, Dataflow::Nlr];

    /// Canonical index in [`Dataflow::ALL`].
    pub fn index(self) -> usize {
        Dataflow::ALL
            .iter()
            .position(|&d| d == self)
            .expect("in ALL")
    }

    /// Dataflow for a canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    pub fn from_index(idx: usize) -> Dataflow {
        Dataflow::ALL[idx]
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dataflow::Ws => "WS",
            Dataflow::Os => "OS",
            Dataflow::Rs => "RS",
            Dataflow::Nlr => "NLR",
        })
    }
}

/// Processing-element array dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct PeArray {
    /// Rows of PEs.
    pub rows: usize,
    /// Columns of PEs.
    pub cols: usize,
}

impl PeArray {
    /// Total number of PEs.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for PeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*{}", self.rows, self.cols)
    }
}

/// Discrete menu of PE array sizes (paper range 8x8 … 16x32; the concrete
/// entries include every configuration appearing in Table 2).
pub const PE_MENU: [PeArray; 9] = [
    PeArray { rows: 8, cols: 8 },
    PeArray { rows: 8, cols: 16 },
    PeArray { rows: 12, cols: 12 },
    PeArray { rows: 14, cols: 16 },
    PeArray { rows: 16, cols: 8 },
    PeArray { rows: 16, cols: 16 },
    PeArray { rows: 16, cols: 20 },
    PeArray { rows: 16, cols: 24 },
    PeArray { rows: 16, cols: 32 },
];

/// Discrete menu of global buffer sizes in KB (paper range 108 … 1024 KB;
/// includes every value appearing in Table 2).
pub const GBUF_MENU_KB: [usize; 6] = [108, 128, 196, 256, 512, 1024];

/// Discrete menu of per-PE register buffer sizes in bytes
/// (paper range 64 … 1024 B).
pub const RBUF_MENU_B: [usize; 5] = [64, 128, 256, 512, 1024];

/// One accelerator configuration: a point in the hardware design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwConfig {
    /// PE array dimensions.
    pub pe: PeArray,
    /// Global (L2) buffer size in kilobytes.
    pub gbuf_kb: usize,
    /// Per-PE register buffer size in bytes.
    pub rbuf_bytes: usize,
    /// Dataflow.
    pub dataflow: Dataflow,
}

impl HwConfig {
    /// Builds a configuration from menu indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of menu range.
    pub fn from_indices(pe: usize, gbuf: usize, rbuf: usize, df: usize) -> Self {
        HwConfig {
            pe: PE_MENU[pe],
            gbuf_kb: GBUF_MENU_KB[gbuf],
            rbuf_bytes: RBUF_MENU_B[rbuf],
            dataflow: Dataflow::from_index(df),
        }
    }

    /// Menu indices `(pe, gbuf, rbuf, dataflow)` of this configuration.
    ///
    /// Returns `None` if any component is not on its menu.
    pub fn to_indices(&self) -> Option<(usize, usize, usize, usize)> {
        Some((
            PE_MENU.iter().position(|p| p == &self.pe)?,
            GBUF_MENU_KB.iter().position(|g| *g == self.gbuf_kb)?,
            RBUF_MENU_B.iter().position(|r| *r == self.rbuf_bytes)?,
            self.dataflow.index(),
        ))
    }

    /// Samples a uniformly random configuration from the menus.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        HwConfig::from_indices(
            rng.random_range(0..PE_MENU.len()),
            rng.random_range(0..GBUF_MENU_KB.len()),
            rng.random_range(0..RBUF_MENU_B.len()),
            rng.random_range(0..Dataflow::ALL.len()),
        )
    }

    /// Iterates over the entire hardware configuration space
    /// (for the two-stage baseline's exhaustive enumeration).
    pub fn enumerate_all() -> impl Iterator<Item = HwConfig> {
        PE_MENU.iter().flat_map(|&pe| {
            GBUF_MENU_KB.iter().flat_map(move |&gbuf_kb| {
                RBUF_MENU_B.iter().flat_map(move |&rbuf_bytes| {
                    Dataflow::ALL.iter().map(move |&dataflow| HwConfig {
                        pe,
                        gbuf_kb,
                        rbuf_bytes,
                        dataflow,
                    })
                })
            })
        })
    }

    /// Size of the hardware configuration space.
    pub fn space_size() -> usize {
        PE_MENU.len() * GBUF_MENU_KB.len() * RBUF_MENU_B.len() * Dataflow::ALL.len()
    }
}

impl fmt::Display for HwConfig {
    /// Formats like the paper's Table 2 `Configuration` column:
    /// `PEs/g_buf/r_buf/data_flow`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}KB/{}b/{}",
            self.pe, self.gbuf_kb, self.rbuf_bytes, self.dataflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn menus_cover_paper_ranges() {
        assert_eq!(PE_MENU.first().unwrap().count(), 64); // 8x8
        assert_eq!(PE_MENU.last().unwrap().count(), 512); // 16x32
        assert_eq!(*GBUF_MENU_KB.first().unwrap(), 108);
        assert_eq!(*GBUF_MENU_KB.last().unwrap(), 1024);
        assert_eq!(*RBUF_MENU_B.first().unwrap(), 64);
        assert_eq!(*RBUF_MENU_B.last().unwrap(), 1024);
    }

    #[test]
    fn table2_configs_on_menu() {
        // Every configuration reported in Table 2 must be representable.
        for (pe_r, pe_c, gbuf, rbuf) in [
            (16, 32, 196, 256),
            (16, 32, 512, 512),
            (14, 16, 256, 128),
            (16, 32, 108, 1024),
            (16, 32, 196, 128),
            (16, 20, 512, 256),
            (16, 32, 512, 128),
        ] {
            let cfg = HwConfig {
                pe: PeArray {
                    rows: pe_r,
                    cols: pe_c,
                },
                gbuf_kb: gbuf,
                rbuf_bytes: rbuf,
                dataflow: Dataflow::Os,
            };
            assert!(cfg.to_indices().is_some(), "{cfg} not on menu");
        }
    }

    #[test]
    fn indices_roundtrip() {
        for pe in 0..PE_MENU.len() {
            for g in 0..GBUF_MENU_KB.len() {
                for r in 0..RBUF_MENU_B.len() {
                    for d in 0..4 {
                        let cfg = HwConfig::from_indices(pe, g, r, d);
                        assert_eq!(cfg.to_indices(), Some((pe, g, r, d)));
                    }
                }
            }
        }
    }

    #[test]
    fn enumerate_all_matches_space_size() {
        let all: Vec<HwConfig> = HwConfig::enumerate_all().collect();
        assert_eq!(all.len(), HwConfig::space_size());
        let unique: std::collections::HashSet<HwConfig> = all.into_iter().collect();
        assert_eq!(unique.len(), HwConfig::space_size());
    }

    #[test]
    fn random_config_on_menu() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(HwConfig::random(&mut rng).to_indices().is_some());
        }
    }

    #[test]
    fn display_matches_table2_style() {
        let cfg = HwConfig {
            pe: PeArray { rows: 16, cols: 32 },
            gbuf_kb: 512,
            rbuf_bytes: 512,
            dataflow: Dataflow::Os,
        };
        assert_eq!(cfg.to_string(), "16*32/512KB/512b/OS");
    }
}
