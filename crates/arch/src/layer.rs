//! Hardware-facing workload model: a network as a list of layer shapes.
//!
//! Both the trainable network builder (`yoso-nn`) and the accelerator
//! simulator (`yoso-accel`) consume the same [`LayerSpec`] list, so the
//! architecture evaluated for accuracy is exactly the one simulated for
//! latency/energy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Shape-level description of one layer's computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Dense 2-D convolution.
    Conv {
        /// Square kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DwConv {
        /// Square kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Channels.
        c: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Square window size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Channels.
        c: usize,
        /// Max or average.
        pooling: PoolKind,
    },
    /// Fully connected layer.
    Linear {
        /// Input features.
        cin: usize,
        /// Output features.
        cout: usize,
    },
    /// Global average pooling to `[c]`.
    GlobalPool {
        /// Channels.
        c: usize,
    },
}

/// One layer of the compiled network, with concrete spatial dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable name (e.g. `cell3.n4.op1.dw`).
    pub name: String,
    /// Computation shape.
    pub kind: LayerKind,
    /// Input feature-map height.
    pub h_in: usize,
    /// Input feature-map width.
    pub w_in: usize,
    /// Output feature-map height.
    pub h_out: usize,
    /// Output feature-map width.
    pub w_out: usize,
}

impl LayerSpec {
    /// Multiply-accumulate operations for a single inference (batch 1).
    /// Pooling layers report comparison/add operations.
    pub fn macs(&self) -> u64 {
        let out_hw = (self.h_out * self.w_out) as u64;
        match self.kind {
            LayerKind::Conv { k, cin, cout, .. } => out_hw * (k * k * cin) as u64 * cout as u64,
            LayerKind::DwConv { k, c, .. } => out_hw * (k * k) as u64 * c as u64,
            LayerKind::Pool { k, c, .. } => out_hw * (k * k) as u64 * c as u64,
            LayerKind::Linear { cin, cout } => (cin * cout) as u64,
            LayerKind::GlobalPool { c } => (self.h_in * self.w_in * c) as u64,
        }
    }

    /// Number of trainable weights (zero for pooling).
    pub fn weights(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { k, cin, cout, .. } => (k * k * cin * cout) as u64,
            LayerKind::DwConv { k, c, .. } => (k * k * c) as u64,
            LayerKind::Linear { cin, cout } => (cin * cout + cout) as u64,
            LayerKind::Pool { .. } | LayerKind::GlobalPool { .. } => 0,
        }
    }

    /// Input activation element count.
    pub fn input_elems(&self) -> u64 {
        let hw = (self.h_in * self.w_in) as u64;
        match self.kind {
            LayerKind::Conv { cin, .. } => hw * cin as u64,
            LayerKind::DwConv { c, .. }
            | LayerKind::Pool { c, .. }
            | LayerKind::GlobalPool { c } => hw * c as u64,
            LayerKind::Linear { cin, .. } => cin as u64,
        }
    }

    /// Output activation element count.
    pub fn output_elems(&self) -> u64 {
        let hw = (self.h_out * self.w_out) as u64;
        match self.kind {
            LayerKind::Conv { cout, .. } => hw * cout as u64,
            LayerKind::DwConv { c, .. } | LayerKind::Pool { c, .. } => hw * c as u64,
            LayerKind::Linear { cout, .. } => cout as u64,
            LayerKind::GlobalPool { c } => c as u64,
        }
    }

    /// Whether this layer runs on the MAC array (pooling and global pooling
    /// are handled by a lightweight vector unit in the simulator).
    pub fn is_matrix_layer(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Conv { .. } | LayerKind::DwConv { .. } | LayerKind::Linear { .. }
        )
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        match self.kind {
            LayerKind::Conv { cout, .. } => cout,
            LayerKind::DwConv { c, .. }
            | LayerKind::Pool { c, .. }
            | LayerKind::GlobalPool { c } => c,
            LayerKind::Linear { cout, .. } => cout,
        }
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:?} {}x{} -> {}x{}",
            self.name, self.kind, self.h_in, self.w_in, self.h_out, self.w_out
        )
    }
}

/// Aggregate statistics of a compiled network, used as predictor features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NetworkStats {
    /// Total MACs per inference.
    pub total_macs: u64,
    /// Total trainable weights.
    pub total_weights: u64,
    /// Number of layers.
    pub num_layers: usize,
    /// MACs in dense convolutions.
    pub conv_macs: u64,
    /// MACs in depthwise convolutions.
    pub dw_macs: u64,
    /// Total activation elements moved (inputs + outputs).
    pub act_elems: u64,
    /// Largest single-layer output activation.
    pub max_act_elems: u64,
    /// Layers with 5x5 kernels.
    pub k5_layers: usize,
    /// Pooling layers.
    pub pool_layers: usize,
}

impl NetworkStats {
    /// Computes statistics over a layer list.
    pub fn from_layers(layers: &[LayerSpec]) -> Self {
        let mut s = NetworkStats {
            num_layers: layers.len(),
            ..Default::default()
        };
        for l in layers {
            let m = l.macs();
            s.total_macs += m;
            s.total_weights += l.weights();
            s.act_elems += l.input_elems() + l.output_elems();
            s.max_act_elems = s.max_act_elems.max(l.output_elems());
            match l.kind {
                LayerKind::Conv { k, .. } => {
                    s.conv_macs += m;
                    if k == 5 {
                        s.k5_layers += 1;
                    }
                }
                LayerKind::DwConv { k, .. } => {
                    s.dw_macs += m;
                    if k == 5 {
                        s.k5_layers += 1;
                    }
                }
                LayerKind::Pool { .. } => s.pool_layers += 1,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(k: usize, stride: usize, cin: usize, cout: usize, h: usize) -> LayerSpec {
        LayerSpec {
            name: "t".into(),
            kind: LayerKind::Conv {
                k,
                stride,
                cin,
                cout,
            },
            h_in: h,
            w_in: h,
            h_out: h / stride,
            w_out: h / stride,
        }
    }

    #[test]
    fn conv_macs_formula() {
        let l = conv(3, 1, 16, 32, 8);
        assert_eq!(l.macs(), 8 * 8 * 9 * 16 * 32);
        assert_eq!(l.weights(), 9 * 16 * 32);
        assert_eq!(l.input_elems(), 8 * 8 * 16);
        assert_eq!(l.output_elems(), 8 * 8 * 32);
    }

    #[test]
    fn dwconv_macs_smaller_than_conv() {
        let d = LayerSpec {
            name: "d".into(),
            kind: LayerKind::DwConv {
                k: 3,
                stride: 1,
                c: 16,
            },
            h_in: 8,
            w_in: 8,
            h_out: 8,
            w_out: 8,
        };
        assert_eq!(d.macs(), 8 * 8 * 9 * 16);
        assert!(d.macs() < conv(3, 1, 16, 16, 8).macs());
    }

    #[test]
    fn pool_has_no_weights() {
        let p = LayerSpec {
            name: "p".into(),
            kind: LayerKind::Pool {
                k: 3,
                stride: 2,
                c: 8,
                pooling: PoolKind::Max,
            },
            h_in: 8,
            w_in: 8,
            h_out: 4,
            w_out: 4,
        };
        assert_eq!(p.weights(), 0);
        assert!(!p.is_matrix_layer());
    }

    #[test]
    fn linear_counts() {
        let l = LayerSpec {
            name: "fc".into(),
            kind: LayerKind::Linear { cin: 64, cout: 10 },
            h_in: 1,
            w_in: 1,
            h_out: 1,
            w_out: 1,
        };
        assert_eq!(l.macs(), 640);
        assert_eq!(l.weights(), 650);
        assert!(l.is_matrix_layer());
    }

    #[test]
    fn stats_aggregate() {
        let layers = vec![conv(3, 1, 3, 8, 16), conv(5, 2, 8, 16, 16)];
        let s = NetworkStats::from_layers(&layers);
        assert_eq!(s.num_layers, 2);
        assert_eq!(s.total_macs, layers[0].macs() + layers[1].macs());
        assert_eq!(s.k5_layers, 1);
        assert_eq!(s.conv_macs, s.total_macs);
        assert_eq!(s.dw_macs, 0);
    }
}
