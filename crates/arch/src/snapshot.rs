//! [`Snapshot`] impls for search-space types.
//!
//! [`DesignPoint`] rides on the [`ActionSpace`] codec: it is stored as
//! its 44-symbol action sequence, so the on-disk representation is the
//! same canonical encoding the RL controller emits, and any tampered
//! sequence is rejected by the codec's own validation.

use crate::codec::ActionSpace;
use crate::hw::{Dataflow, HwConfig, PeArray};
use crate::layer::{LayerKind, LayerSpec, PoolKind};
use crate::skeleton::NetworkSkeleton;
use crate::space::DesignPoint;
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

impl Snapshot for DesignPoint {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usizes(&ActionSpace::new().encode(self));
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let actions = r.take_usizes()?;
        ActionSpace::new()
            .decode(&actions)
            .map_err(|e| PersistError::Malformed(format!("design point: {e}")))
    }
}

impl Snapshot for NetworkSkeleton {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.input_hw);
        w.put_usize(self.input_channels);
        w.put_usize(self.num_classes);
        w.put_usize(self.init_channels);
        w.put_usize(self.num_cells);
        w.put_usizes(&self.reduction_positions);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(NetworkSkeleton {
            input_hw: r.take_usize()?,
            input_channels: r.take_usize()?,
            num_classes: r.take_usize()?,
            init_channels: r.take_usize()?,
            num_cells: r.take_usize()?,
            reduction_positions: r.take_usizes()?,
        })
    }
}

impl Snapshot for HwConfig {
    fn snapshot(&self, w: &mut ByteWriter) {
        // Raw fields, not menu indices: an HwConfig constructed off-menu
        // (the fields are public) still round-trips.
        w.put_usize(self.pe.rows);
        w.put_usize(self.pe.cols);
        w.put_usize(self.gbuf_kb);
        w.put_usize(self.rbuf_bytes);
        w.put_u8(self.dataflow.index() as u8);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let rows = r.take_usize()?;
        let cols = r.take_usize()?;
        let gbuf_kb = r.take_usize()?;
        let rbuf_bytes = r.take_usize()?;
        let df = r.take_u8()? as usize;
        if df >= Dataflow::ALL.len() {
            return Err(PersistError::Malformed(format!("dataflow index {df}")));
        }
        Ok(HwConfig {
            pe: PeArray { rows, cols },
            gbuf_kb,
            rbuf_bytes,
            dataflow: Dataflow::from_index(df),
        })
    }
}

impl Snapshot for PoolKind {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            PoolKind::Max => 0,
            PoolKind::Avg => 1,
        });
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(PoolKind::Max),
            1 => Ok(PoolKind::Avg),
            v => Err(PersistError::Malformed(format!("pool kind {v}"))),
        }
    }
}

impl Snapshot for LayerKind {
    fn snapshot(&self, w: &mut ByteWriter) {
        match *self {
            LayerKind::Conv {
                k,
                stride,
                cin,
                cout,
            } => {
                w.put_u8(0);
                w.put_usizes(&[k, stride, cin, cout]);
            }
            LayerKind::DwConv { k, stride, c } => {
                w.put_u8(1);
                w.put_usizes(&[k, stride, c]);
            }
            LayerKind::Pool {
                k,
                stride,
                c,
                pooling,
            } => {
                w.put_u8(2);
                w.put_usizes(&[k, stride, c]);
                pooling.snapshot(w);
            }
            LayerKind::Linear { cin, cout } => {
                w.put_u8(3);
                w.put_usizes(&[cin, cout]);
            }
            LayerKind::GlobalPool { c } => {
                w.put_u8(4);
                w.put_usizes(&[c]);
            }
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let tag = r.take_u8()?;
        let fields = r.take_usizes()?;
        let arity_err = |want: usize| {
            PersistError::Malformed(format!(
                "layer kind tag {tag}: want {want} fields, got {}",
                fields.len()
            ))
        };
        match tag {
            0 => match fields[..] {
                [k, stride, cin, cout] => Ok(LayerKind::Conv {
                    k,
                    stride,
                    cin,
                    cout,
                }),
                _ => Err(arity_err(4)),
            },
            1 => match fields[..] {
                [k, stride, c] => Ok(LayerKind::DwConv { k, stride, c }),
                _ => Err(arity_err(3)),
            },
            2 => match fields[..] {
                [k, stride, c] => Ok(LayerKind::Pool {
                    k,
                    stride,
                    c,
                    pooling: PoolKind::restore(r)?,
                }),
                _ => Err(arity_err(3)),
            },
            3 => match fields[..] {
                [cin, cout] => Ok(LayerKind::Linear { cin, cout }),
                _ => Err(arity_err(2)),
            },
            4 => match fields[..] {
                [c] => Ok(LayerKind::GlobalPool { c }),
                _ => Err(arity_err(1)),
            },
            v => Err(PersistError::Malformed(format!("layer kind tag {v}"))),
        }
    }
}

impl Snapshot for LayerSpec {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        self.kind.snapshot(w);
        w.put_usizes(&[self.h_in, self.w_in, self.h_out, self.w_out]);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let name = r.take_str()?;
        let kind = LayerKind::restore(r)?;
        let dims = r.take_usizes()?;
        match dims[..] {
            [h_in, w_in, h_out, w_out] => Ok(LayerSpec {
                name,
                kind,
                h_in,
                w_in,
                h_out,
                w_out,
            }),
            _ => Err(PersistError::Malformed(format!(
                "layer spec dims: want 4, got {}",
                dims.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn roundtrip<T: Snapshot>(v: &T) -> T {
        let mut w = ByteWriter::new();
        v.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = T::restore(&mut r).expect("restore");
        assert_eq!(r.remaining(), 0, "trailing bytes");
        out
    }

    #[test]
    fn design_point_roundtrips() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = DesignPoint::random(&mut rng);
            assert_eq!(roundtrip(&p), p);
        }
    }

    #[test]
    fn tampered_design_point_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = DesignPoint::random(&mut rng);
        let mut w = ByteWriter::new();
        p.snapshot(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt the first action symbol to an out-of-vocab value.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            DesignPoint::restore(&mut ByteReader::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn skeleton_and_hw_roundtrip() {
        for sk in [
            NetworkSkeleton::tiny(),
            NetworkSkeleton::small(),
            NetworkSkeleton::paper_default(),
        ] {
            assert_eq!(roundtrip(&sk), sk);
        }
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let hw = HwConfig::random(&mut rng);
            assert_eq!(roundtrip(&hw), hw);
        }
    }

    #[test]
    fn layer_specs_roundtrip() {
        let plan = NetworkSkeleton::tiny().compile(&crate::genotype::Genotype::random(
            &mut StdRng::seed_from_u64(6),
        ));
        for layer in &plan.layers {
            assert_eq!(&roundtrip(layer), layer);
        }
    }
}
