//! Candidate operations of the cell search space.
//!
//! The paper fixes six operations (§III-D): `conv3x3`, `conv5x5`,
//! `DWconv3x3`, `DWconv5x5`, max pooling and average pooling, with ReLU as
//! the only activation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six candidate operations on a cell edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Op {
    /// Standard 3x3 convolution (ReLU-Conv-BN).
    Conv3,
    /// Standard 5x5 convolution (ReLU-Conv-BN).
    Conv5,
    /// Depthwise-separable 3x3 convolution (depthwise + 1x1 pointwise).
    DwConv3,
    /// Depthwise-separable 5x5 convolution (depthwise + 1x1 pointwise).
    DwConv5,
    /// 3x3 max pooling.
    MaxPool,
    /// 3x3 average pooling.
    AvgPool,
}

impl Op {
    /// All candidate operations, in canonical (codec) order.
    pub const ALL: [Op; 6] = [
        Op::Conv3,
        Op::Conv5,
        Op::DwConv3,
        Op::DwConv5,
        Op::MaxPool,
        Op::AvgPool,
    ];

    /// Number of candidate operations.
    pub const COUNT: usize = 6;

    /// Canonical index of this op in [`Op::ALL`].
    pub fn index(self) -> usize {
        Op::ALL.iter().position(|&o| o == self).expect("op in ALL")
    }

    /// Op for a canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Op::COUNT`.
    pub fn from_index(idx: usize) -> Op {
        Op::ALL[idx]
    }

    /// Square kernel size of the operation's spatial window.
    pub fn kernel(self) -> usize {
        match self {
            Op::Conv3 | Op::DwConv3 | Op::MaxPool | Op::AvgPool => 3,
            Op::Conv5 | Op::DwConv5 => 5,
        }
    }

    /// Whether the operation carries trainable weights.
    pub fn has_weights(self) -> bool {
        !matches!(self, Op::MaxPool | Op::AvgPool)
    }

    /// Whether the operation is a (depthwise-)separable convolution.
    pub fn is_depthwise(self) -> bool {
        matches!(self, Op::DwConv3 | Op::DwConv5)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Conv3 => "conv3x3",
            Op::Conv5 => "conv5x5",
            Op::DwConv3 => "dwconv3x3",
            Op::DwConv5 => "dwconv5x5",
            Op::MaxPool => "maxpool3x3",
            Op::AvgPool => "avgpool3x3",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Op::from_index(i), *op);
        }
    }

    #[test]
    fn kernel_sizes() {
        assert_eq!(Op::Conv3.kernel(), 3);
        assert_eq!(Op::Conv5.kernel(), 5);
        assert_eq!(Op::DwConv5.kernel(), 5);
        assert_eq!(Op::MaxPool.kernel(), 3);
    }

    #[test]
    fn weight_and_depthwise_flags() {
        assert!(Op::Conv3.has_weights());
        assert!(!Op::AvgPool.has_weights());
        assert!(Op::DwConv3.is_depthwise());
        assert!(!Op::Conv5.is_depthwise());
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            Op::ALL.iter().map(|o| o.to_string()).collect();
        assert_eq!(names.len(), Op::COUNT);
    }
}
