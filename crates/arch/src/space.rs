//! Design points and search-space cardinality accounting.

use crate::genotype::{Genotype, INTERNAL_NODES};
use crate::hw::HwConfig;
use crate::op::Op;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One candidate solution of the joint search: a network genotype plus an
/// accelerator configuration. This is what the RL controller emits per
/// rollout and what the evaluator scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The DNN half.
    pub genotype: Genotype,
    /// The accelerator half.
    pub hw: HwConfig,
}

impl DesignPoint {
    /// Samples a uniformly random design point.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        DesignPoint {
            genotype: Genotype::random(rng),
            hw: HwConfig::random(rng),
        }
    }

    /// Validates the genotype (hardware configs are valid by construction).
    pub fn is_valid(&self) -> bool {
        self.genotype.is_valid()
    }

    /// Returns a copy with one uniformly chosen action symbol resampled
    /// (the canonical mutation operator for evolutionary search over the
    /// joint space; operates through the action codec so hardware fields
    /// and DNN genes are mutated with equal probability mass).
    pub fn mutate<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        use rand::RngExt;
        let space = crate::codec::ActionSpace::new();
        let mut actions = space.encode(self);
        let pos = rng.random_range(0..actions.len());
        let vocab = space.vocab_sizes()[pos];
        if vocab > 1 {
            let mut nv = rng.random_range(0..vocab - 1);
            if nv >= actions[pos] {
                nv += 1; // skip the current value: mutation always changes something
            }
            actions[pos] = nv;
        }
        space
            .decode(&actions)
            .expect("mutation stays in vocabulary")
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.genotype, self.hw)
    }
}

/// Cardinality bookkeeping for the joint search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceCardinality {
    /// log10 of the number of distinct cell genotypes (one cell).
    pub log10_cell: f64,
    /// log10 of the number of distinct network genotypes (two cells).
    pub log10_networks: f64,
    /// Number of hardware configurations.
    pub hw_configs: usize,
    /// log10 of the combined design-space size.
    pub log10_combined: f64,
}

/// Computes the exact cardinality of the search space.
///
/// Each internal node `i` (2..=6) chooses `(in1, op1, in2, op2)` giving
/// `i^2 * |Op|^2` combinations; a cell multiplies over its five nodes.
pub fn cardinality() -> SpaceCardinality {
    let mut log10_cell = 0.0f64;
    for node in 0..INTERNAL_NODES {
        let i = (node + 2) as f64;
        log10_cell += (i * i * (Op::COUNT * Op::COUNT) as f64).log10();
    }
    let log10_networks = 2.0 * log10_cell;
    let hw_configs = HwConfig::space_size();
    SpaceCardinality {
        log10_cell,
        log10_networks,
        hw_configs,
        log10_combined: log10_networks + (hw_configs as f64).log10(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cardinality_magnitudes() {
        let c = cardinality();
        // One cell: prod_{i=2..6} 36 i^2 = 36^5 * (720)^2 ≈ 3.1e13.
        assert!(
            (c.log10_cell - 13.5).abs() < 0.5,
            "log10 cell {}",
            c.log10_cell
        );
        // The paper quotes ~5e11 networks with a coarser counting
        // convention; our exact ordered-pair count is larger. What matters
        // for the method is that the space is far beyond enumeration.
        assert!(c.log10_networks > 11.0);
        assert_eq!(c.hw_configs, 9 * 6 * 5 * 4);
        // Paper: "10^15 possible solutions".
        assert!(c.log10_combined > 15.0);
    }

    #[test]
    fn random_points_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = DesignPoint::random(&mut rng);
        let b = DesignPoint::random(&mut rng);
        assert_ne!(a, b, "collision is astronomically unlikely");
        assert!(a.is_valid() && b.is_valid());
    }

    #[test]
    fn mutation_changes_exactly_one_symbol() {
        let space = crate::codec::ActionSpace::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = DesignPoint::random(&mut rng);
            let m = p.mutate(&mut rng);
            assert!(m.is_valid());
            let a = space.encode(&p);
            let b = space.encode(&m);
            let diffs = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(diffs, 1, "mutation must change exactly one symbol");
        }
    }

    #[test]
    fn repeated_mutation_walks_the_space() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = DesignPoint::random(&mut rng);
        let start = p;
        for _ in 0..50 {
            p = p.mutate(&mut rng);
        }
        assert_ne!(p, start);
        assert!(p.is_valid());
    }

    #[test]
    fn display_contains_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = DesignPoint::random(&mut rng);
        let s = p.to_string();
        assert!(s.contains("normal["));
        assert!(s.contains('@'));
    }
}
