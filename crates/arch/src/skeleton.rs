//! Network skeleton: compiles a [`Genotype`] into the concrete stack of
//! cells and the per-layer workload ([`LayerSpec`] list) shared by the
//! trainer and the accelerator simulator.

use crate::genotype::{CellGenotype, Genotype, NODES_PER_CELL};
use crate::layer::{LayerKind, LayerSpec, NetworkStats, PoolKind};
use crate::op::Op;
use serde::{Deserialize, Serialize};

/// Macro-architecture parameters: everything about the network that is
/// *not* searched (paper §IV-B: 6 blocks — 4 normal + 2 reduction cells).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSkeleton {
    /// Input image height/width (square).
    pub input_hw: usize,
    /// Input channels (3 for RGB).
    pub input_channels: usize,
    /// Classifier classes.
    pub num_classes: usize,
    /// Channel count of the first cell (doubled at each reduction).
    pub init_channels: usize,
    /// Total number of cells.
    pub num_cells: usize,
    /// Indices (0-based) of reduction cells.
    pub reduction_positions: Vec<usize>,
}

impl NetworkSkeleton {
    /// Evenly spaced reduction positions for `num_cells` with `reductions`
    /// reduction cells, mirroring NASNet-style placement.
    pub fn evenly_spaced(num_cells: usize, reductions: usize) -> Vec<usize> {
        (1..=reductions)
            .map(|i| i * num_cells / (reductions + 1))
            .collect()
    }

    /// The paper's evaluation skeleton: 6 cells (4 normal + 2 reduction).
    /// Input resolution and width are CPU-scaled (see DESIGN.md).
    pub fn paper_default() -> Self {
        NetworkSkeleton {
            input_hw: 16,
            input_channels: 3,
            num_classes: 10,
            init_channels: 16,
            num_cells: 6,
            reduction_positions: Self::evenly_spaced(6, 2),
        }
    }

    /// A mid-scale skeleton for CPU experiment drivers: 4 cells
    /// (2 normal + 2 reduction), 12x12 input, 8 channels. Keeps full
    /// trainings in the tens of seconds while preserving the paper
    /// skeleton's normal/reduction alternation.
    pub fn small() -> Self {
        NetworkSkeleton {
            input_hw: 12,
            input_channels: 3,
            num_classes: 10,
            init_channels: 8,
            num_cells: 4,
            reduction_positions: Self::evenly_spaced(4, 2),
        }
    }

    /// A small skeleton for fast unit tests: 3 cells (2 normal +
    /// 1 reduction), 8x8 input, 8 channels.
    pub fn tiny() -> Self {
        NetworkSkeleton {
            input_hw: 8,
            input_channels: 3,
            num_classes: 10,
            init_channels: 8,
            num_cells: 3,
            reduction_positions: vec![1],
        }
    }

    /// Whether the cell at `idx` is a reduction cell.
    pub fn is_reduction(&self, idx: usize) -> bool {
        self.reduction_positions.contains(&idx)
    }

    /// Compiles a genotype into a full [`NetworkPlan`].
    ///
    /// # Panics
    ///
    /// Panics if the genotype is invalid or the skeleton reduces the
    /// spatial size below 1x1.
    pub fn compile(&self, genotype: &Genotype) -> NetworkPlan {
        assert!(genotype.is_valid(), "invalid genotype");
        let mut layers = Vec::new();
        let stem_c = self.init_channels;
        layers.push(LayerSpec {
            name: "stem".into(),
            kind: LayerKind::Conv {
                k: 3,
                stride: 1,
                cin: self.input_channels,
                cout: stem_c,
            },
            h_in: self.input_hw,
            w_in: self.input_hw,
            h_out: self.input_hw,
            w_out: self.input_hw,
        });

        let mut cells = Vec::with_capacity(self.num_cells);
        // (channels, spatial) of the two producer cells feeding the next one.
        let mut s0 = (stem_c, self.input_hw);
        let mut s1 = (stem_c, self.input_hw);
        let mut c_cur = self.init_channels;
        for idx in 0..self.num_cells {
            let is_reduction = self.is_reduction(idx);
            if is_reduction {
                c_cur *= 2;
            }
            let cell_geno = if is_reduction {
                genotype.reduction
            } else {
                genotype.normal
            };
            let h_in = s1.1;
            if is_reduction {
                assert!(h_in >= 2, "cannot reduce below 1x1");
                assert!(
                    h_in.is_multiple_of(2),
                    "reduction cell at odd resolution {h_in}: input_hw must be \
                     divisible by 2^(reductions)"
                );
            }
            let h_out = if is_reduction { h_in / 2 } else { h_in };
            let plan = CellPlan {
                index: idx,
                is_reduction,
                genotype: cell_geno,
                c: c_cur,
                c_in0: s0.0,
                c_in1: s1.0,
                h_in0: s0.1,
                h_in1: s1.1,
                h_out,
                out_channels: cell_geno.output_arity() * c_cur,
            };
            plan.emit_layers(&mut layers);
            s0 = s1;
            s1 = (plan.out_channels, h_out);
            cells.push(plan);
        }

        let (c_last, h_last) = s1;
        layers.push(LayerSpec {
            name: "gap".into(),
            kind: LayerKind::GlobalPool { c: c_last },
            h_in: h_last,
            w_in: h_last,
            h_out: 1,
            w_out: 1,
        });
        layers.push(LayerSpec {
            name: "classifier".into(),
            kind: LayerKind::Linear {
                cin: c_last,
                cout: self.num_classes,
            },
            h_in: 1,
            w_in: 1,
            h_out: 1,
            w_out: 1,
        });
        let stats = NetworkStats::from_layers(&layers);
        NetworkPlan {
            skeleton: self.clone(),
            genotype: *genotype,
            cells,
            layers,
            stats,
        }
    }
}

/// Concrete plan of one cell instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellPlan {
    /// Position of this cell in the stack.
    pub index: usize,
    /// Whether this instance is a reduction cell.
    pub is_reduction: bool,
    /// The cell genotype instantiated here.
    pub genotype: CellGenotype,
    /// Internal channel count.
    pub c: usize,
    /// Channels of input 0 (output of cell `index - 2`, or the stem).
    pub c_in0: usize,
    /// Channels of input 1 (output of cell `index - 1`, or the stem).
    pub c_in1: usize,
    /// Spatial size of input 0.
    pub h_in0: usize,
    /// Spatial size of input 1.
    pub h_in1: usize,
    /// Spatial size of every internal node (and the cell output).
    pub h_out: usize,
    /// Output channels: `output_arity * c`.
    pub out_channels: usize,
}

impl CellPlan {
    /// Stride applied by an op reading from node `input_idx`.
    pub fn op_stride(&self, input_idx: usize) -> usize {
        if self.is_reduction && input_idx < 2 {
            2
        } else {
            1
        }
    }

    /// Spatial size at which node `idx` (0..7) lives *after* preprocessing.
    pub fn node_spatial(&self, idx: usize) -> usize {
        if idx < 2 {
            self.h_in1 // both inputs are preprocessed to the cell input size
        } else {
            self.h_out
        }
    }

    /// Stride of the input-0 preprocessing conv (2 when the previous cell
    /// halved resolution, i.e. factorized reduce).
    pub fn prep0_stride(&self) -> usize {
        debug_assert!(self.h_in0 == self.h_in1 || self.h_in0 == 2 * self.h_in1);
        self.h_in0 / self.h_in1
    }

    /// Appends this cell's layers to `out` in execution order.
    pub fn emit_layers(&self, out: &mut Vec<LayerSpec>) {
        let base = format!("cell{}", self.index);
        // Input preprocessing: 1x1 convs bringing both inputs to `c`
        // channels at the cell input resolution.
        out.push(LayerSpec {
            name: format!("{base}.prep0"),
            kind: LayerKind::Conv {
                k: 1,
                stride: self.prep0_stride(),
                cin: self.c_in0,
                cout: self.c,
            },
            h_in: self.h_in0,
            w_in: self.h_in0,
            h_out: self.h_in1,
            w_out: self.h_in1,
        });
        out.push(LayerSpec {
            name: format!("{base}.prep1"),
            kind: LayerKind::Conv {
                k: 1,
                stride: 1,
                cin: self.c_in1,
                cout: self.c,
            },
            h_in: self.h_in1,
            w_in: self.h_in1,
            h_out: self.h_in1,
            w_out: self.h_in1,
        });
        for (ni, gene) in self.genotype.nodes.iter().enumerate() {
            let node_idx = ni + 2;
            for (slot, (inp, op)) in [(gene.in1, gene.op1), (gene.in2, gene.op2)]
                .into_iter()
                .enumerate()
            {
                let stride = self.op_stride(inp);
                let h_in = self.node_spatial(inp);
                let h_out = self.h_out;
                debug_assert_eq!(h_in / stride, h_out);
                let name = format!("{base}.n{node_idx}.op{}", slot + 1);
                self.emit_op(op, stride, h_in, h_out, &name, out);
            }
        }
    }

    fn emit_op(
        &self,
        op: Op,
        stride: usize,
        h_in: usize,
        h_out: usize,
        name: &str,
        out: &mut Vec<LayerSpec>,
    ) {
        let c = self.c;
        match op {
            Op::Conv3 | Op::Conv5 => out.push(LayerSpec {
                name: name.to_string(),
                kind: LayerKind::Conv {
                    k: op.kernel(),
                    stride,
                    cin: c,
                    cout: c,
                },
                h_in,
                w_in: h_in,
                h_out,
                w_out: h_out,
            }),
            Op::DwConv3 | Op::DwConv5 => {
                out.push(LayerSpec {
                    name: format!("{name}.dw"),
                    kind: LayerKind::DwConv {
                        k: op.kernel(),
                        stride,
                        c,
                    },
                    h_in,
                    w_in: h_in,
                    h_out,
                    w_out: h_out,
                });
                out.push(LayerSpec {
                    name: format!("{name}.pw"),
                    kind: LayerKind::Conv {
                        k: 1,
                        stride: 1,
                        cin: c,
                        cout: c,
                    },
                    h_in: h_out,
                    w_in: h_out,
                    h_out,
                    w_out: h_out,
                });
            }
            Op::MaxPool | Op::AvgPool => out.push(LayerSpec {
                name: name.to_string(),
                kind: LayerKind::Pool {
                    k: 3,
                    stride,
                    c,
                    pooling: if op == Op::MaxPool {
                        PoolKind::Max
                    } else {
                        PoolKind::Avg
                    },
                },
                h_in,
                w_in: h_in,
                h_out,
                w_out: h_out,
            }),
        }
    }
}

/// A fully compiled network: the cells plus the flat layer workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// The skeleton used for compilation.
    pub skeleton: NetworkSkeleton,
    /// The genotype that was compiled.
    pub genotype: Genotype,
    /// Per-cell plans, in execution order.
    pub cells: Vec<CellPlan>,
    /// Flat layer workload (stem, cells, global pool, classifier).
    pub layers: Vec<LayerSpec>,
    /// Aggregate statistics over [`NetworkPlan::layers`].
    pub stats: NetworkStats,
}

impl NetworkPlan {
    /// Channels of the tensor feeding the classifier.
    pub fn final_channels(&self) -> usize {
        self.cells
            .last()
            .map_or(self.skeleton.init_channels, |c| c.out_channels)
    }
}

/// Number of nodes per cell re-exported for convenience.
pub const CELL_NODES: usize = NODES_PER_CELL;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_shape() {
        let sk = NetworkSkeleton::paper_default();
        assert_eq!(sk.num_cells, 6);
        assert_eq!(sk.reduction_positions, vec![2, 4]);
        assert_eq!(sk.num_cells - sk.reduction_positions.len(), 4);
    }

    #[test]
    fn compile_produces_consistent_plan() {
        let mut rng = StdRng::seed_from_u64(0);
        let sk = NetworkSkeleton::paper_default();
        for _ in 0..50 {
            let g = Genotype::random(&mut rng);
            let plan = sk.compile(&g);
            assert_eq!(plan.cells.len(), 6);
            // Spatial sizes: 16 -> 16 -> (r) 8 -> 8 -> (r) 4 -> 4.
            assert_eq!(plan.cells[0].h_out, 16);
            assert_eq!(plan.cells[2].h_out, 8);
            assert_eq!(plan.cells[4].h_out, 4);
            assert_eq!(plan.cells[5].h_out, 4);
            // Channels double at each reduction.
            assert_eq!(plan.cells[0].c, 16);
            assert_eq!(plan.cells[2].c, 32);
            assert_eq!(plan.cells[4].c, 64);
            // Stats are non-trivial.
            assert!(plan.stats.total_macs > 100_000);
            assert!(plan.stats.total_weights > 1_000);
            assert_eq!(
                plan.final_channels(),
                plan.cells[5].genotype.output_arity() * 64
            );
        }
    }

    #[test]
    fn layer_shapes_chain() {
        // Each op layer's input resolution over stride equals its output.
        let mut rng = StdRng::seed_from_u64(1);
        let sk = NetworkSkeleton::paper_default();
        let g = Genotype::random(&mut rng);
        let plan = sk.compile(&g);
        for l in &plan.layers {
            match l.kind {
                LayerKind::Conv { stride, .. }
                | LayerKind::DwConv { stride, .. }
                | LayerKind::Pool { stride, .. } => {
                    assert_eq!(l.h_in / stride, l.h_out, "{l}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn reduction_cell_ops_on_inputs_get_stride_two() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Genotype::random(&mut rng);
        let sk = NetworkSkeleton::tiny();
        let plan = sk.compile(&g);
        let red = plan.cells.iter().find(|c| c.is_reduction).unwrap();
        assert_eq!(red.op_stride(0), 2);
        assert_eq!(red.op_stride(1), 2);
        assert_eq!(red.op_stride(3), 1);
        let norm = plan.cells.iter().find(|c| !c.is_reduction).unwrap();
        assert_eq!(norm.op_stride(0), 1);
    }

    #[test]
    fn more_output_nodes_means_wider_cells() {
        // A genotype whose internal nodes chain (each feeds the next) has
        // one output node; a star genotype (all read inputs) has five.
        use crate::genotype::NodeGene;
        use crate::op::Op;
        let chain = CellGenotype {
            nodes: [
                NodeGene {
                    in1: 0,
                    op1: Op::Conv3,
                    in2: 1,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 2,
                    op1: Op::Conv3,
                    in2: 0,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 3,
                    op1: Op::Conv3,
                    in2: 0,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 4,
                    op1: Op::Conv3,
                    in2: 0,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 5,
                    op1: Op::Conv3,
                    in2: 0,
                    op2: Op::Conv3,
                },
            ],
        };
        let star = CellGenotype {
            nodes: [
                NodeGene {
                    in1: 0,
                    op1: Op::Conv3,
                    in2: 1,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 0,
                    op1: Op::Conv3,
                    in2: 1,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 0,
                    op1: Op::Conv3,
                    in2: 1,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 0,
                    op1: Op::Conv3,
                    in2: 1,
                    op2: Op::Conv3,
                },
                NodeGene {
                    in1: 0,
                    op1: Op::Conv3,
                    in2: 1,
                    op2: Op::Conv3,
                },
            ],
        };
        assert_eq!(chain.output_arity(), 1);
        assert_eq!(star.output_arity(), 5);
        let sk = NetworkSkeleton::tiny();
        let g_chain = Genotype {
            normal: chain,
            reduction: chain,
        };
        let g_star = Genotype {
            normal: star,
            reduction: star,
        };
        let p_chain = sk.compile(&g_chain);
        let p_star = sk.compile(&g_star);
        assert!(p_star.final_channels() > p_chain.final_channels());
    }

    #[test]
    fn tiny_skeleton_compiles() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Genotype::random(&mut rng);
        let plan = NetworkSkeleton::tiny().compile(&g);
        assert_eq!(plan.cells.len(), 3);
        assert!(plan.layers.len() > 10);
        // First layer is the stem, last is the classifier.
        assert_eq!(plan.layers.first().unwrap().name, "stem");
        assert_eq!(plan.layers.last().unwrap().name, "classifier");
    }
}
