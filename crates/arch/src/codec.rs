//! The 44-symbol action-sequence codec.
//!
//! The paper's RL controller emits a candidate solution as one sequence
//! `λ = (d_1 … d_S, c_1 … c_L)` with `S = 40` DNN hyper-parameters and
//! `L = 4` accelerator parameters (§III-C). This module defines the
//! per-step vocabularies and the bijection between sequences and
//! [`DesignPoint`]s.

use crate::genotype::{CellGenotype, Genotype, NodeGene, INTERNAL_NODES};
use crate::hw::{Dataflow, HwConfig, GBUF_MENU_KB, PE_MENU, RBUF_MENU_B};
use crate::op::Op;
use crate::space::DesignPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Total sequence length (`S + L = 44` in the paper).
pub const SEQUENCE_LEN: usize = 44;
/// DNN portion of the sequence (`S = 40`).
pub const DNN_LEN: usize = 40;
/// Hardware portion of the sequence (`L = 4`).
pub const HW_LEN: usize = 4;

/// Error returned when decoding an invalid action sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeActionError {
    /// Sequence length differs from [`SEQUENCE_LEN`].
    WrongLength {
        /// Provided length.
        got: usize,
    },
    /// An action value exceeds its step vocabulary.
    OutOfVocab {
        /// Step index.
        step: usize,
        /// Provided action value.
        action: usize,
        /// Vocabulary size at that step.
        vocab: usize,
    },
}

impl fmt::Display for DecodeActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeActionError::WrongLength { got } => {
                write!(f, "expected {SEQUENCE_LEN} actions, got {got}")
            }
            DecodeActionError::OutOfVocab {
                step,
                action,
                vocab,
            } => {
                write!(
                    f,
                    "action {action} at step {step} exceeds vocabulary {vocab}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeActionError {}

/// The per-step vocabularies of the 44-step action space.
///
/// Step layout:
/// `[normal cell: 5 nodes x (in1, op1, in2, op2)] ++ [reduction cell: same]
///  ++ [pe, g_buf, r_buf, dataflow]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ActionSpace {
    vocab: Vec<usize>,
}

impl ActionSpace {
    /// Builds the canonical YOSO action space.
    pub fn new() -> Self {
        let mut vocab = Vec::with_capacity(SEQUENCE_LEN);
        for _cell in 0..2 {
            for node in 0..INTERNAL_NODES {
                let node_idx = node + 2;
                vocab.push(node_idx); // in1: any earlier node
                vocab.push(Op::COUNT); // op1
                vocab.push(node_idx); // in2
                vocab.push(Op::COUNT); // op2
            }
        }
        vocab.push(PE_MENU.len());
        vocab.push(GBUF_MENU_KB.len());
        vocab.push(RBUF_MENU_B.len());
        vocab.push(Dataflow::ALL.len());
        debug_assert_eq!(vocab.len(), SEQUENCE_LEN);
        ActionSpace { vocab }
    }

    /// Vocabulary size at each step (length [`SEQUENCE_LEN`]).
    pub fn vocab_sizes(&self) -> &[usize] {
        &self.vocab
    }

    /// Number of steps (always [`SEQUENCE_LEN`]).
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// Always false; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// log10 of the combined search-space cardinality.
    pub fn log10_cardinality(&self) -> f64 {
        self.vocab.iter().map(|&v| (v as f64).log10()).sum()
    }

    /// Encodes a design point into its 44-action sequence.
    pub fn encode(&self, point: &DesignPoint) -> Vec<usize> {
        let mut seq = Vec::with_capacity(SEQUENCE_LEN);
        for cell in [&point.genotype.normal, &point.genotype.reduction] {
            for gene in &cell.nodes {
                seq.push(gene.in1);
                seq.push(gene.op1.index());
                seq.push(gene.in2);
                seq.push(gene.op2.index());
            }
        }
        let (pe, gbuf, rbuf, df) = point
            .hw
            .to_indices()
            .expect("design point hardware must be on the menus");
        seq.extend([pe, gbuf, rbuf, df]);
        seq
    }

    /// Decodes a 44-action sequence into a design point.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeActionError`] if the length is wrong or any action
    /// exceeds its step vocabulary.
    pub fn decode(&self, actions: &[usize]) -> Result<DesignPoint, DecodeActionError> {
        if actions.len() != SEQUENCE_LEN {
            return Err(DecodeActionError::WrongLength { got: actions.len() });
        }
        for (step, (&a, &v)) in actions.iter().zip(&self.vocab).enumerate() {
            if a >= v {
                return Err(DecodeActionError::OutOfVocab {
                    step,
                    action: a,
                    vocab: v,
                });
            }
        }
        let decode_cell = |base: usize| -> CellGenotype {
            let mut nodes = [NodeGene {
                in1: 0,
                op1: Op::Conv3,
                in2: 0,
                op2: Op::Conv3,
            }; INTERNAL_NODES];
            for (n, gene) in nodes.iter_mut().enumerate() {
                let o = base + n * 4;
                gene.in1 = actions[o];
                gene.op1 = Op::from_index(actions[o + 1]);
                gene.in2 = actions[o + 2];
                gene.op2 = Op::from_index(actions[o + 3]);
            }
            CellGenotype { nodes }
        };
        let genotype = Genotype {
            normal: decode_cell(0),
            reduction: decode_cell(DNN_LEN / 2),
        };
        let hw = HwConfig::from_indices(
            actions[DNN_LEN],
            actions[DNN_LEN + 1],
            actions[DNN_LEN + 2],
            actions[DNN_LEN + 3],
        );
        Ok(DesignPoint { genotype, hw })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequence_len_matches_paper() {
        let sp = ActionSpace::new();
        assert_eq!(sp.len(), 44);
        assert_eq!(sp.vocab_sizes().len(), SEQUENCE_LEN);
        assert!(!sp.is_empty());
    }

    #[test]
    fn vocab_layout() {
        let sp = ActionSpace::new();
        let v = sp.vocab_sizes();
        // First node of the normal cell: inputs from {0,1}, six ops.
        assert_eq!(&v[0..4], &[2, 6, 2, 6]);
        // Last node of the normal cell: inputs from {0..5}.
        assert_eq!(&v[16..20], &[6, 6, 6, 6]);
        // Hardware tail.
        assert_eq!(&v[40..44], &[9, 6, 5, 4]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let sp = ActionSpace::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let p = DesignPoint::random(&mut rng);
            let seq = sp.encode(&p);
            assert_eq!(seq.len(), SEQUENCE_LEN);
            let back = sp.decode(&seq).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let sp = ActionSpace::new();
        assert_eq!(
            sp.decode(&[0; 10]),
            Err(DecodeActionError::WrongLength { got: 10 })
        );
    }

    #[test]
    fn decode_rejects_out_of_vocab() {
        let sp = ActionSpace::new();
        let mut seq = vec![0usize; SEQUENCE_LEN];
        seq[1] = 6; // op index beyond Op::COUNT
        match sp.decode(&seq) {
            Err(DecodeActionError::OutOfVocab {
                step: 1,
                action: 6,
                vocab: 6,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decoded_points_always_valid() {
        // Any in-vocabulary sequence decodes to a *valid* genotype: the
        // vocabulary construction enforces the DAG constraint by design.
        let sp = ActionSpace::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let seq: Vec<usize> = sp
                .vocab_sizes()
                .iter()
                .map(|&v| rand::RngExt::random_range(&mut rng, 0..v))
                .collect();
            let p = sp.decode(&seq).unwrap();
            assert!(p.genotype.is_valid());
        }
    }

    #[test]
    fn cardinality_is_astronomical() {
        // The paper cites ~1e15 total solutions and ~5e11 networks; our
        // exact combinatorics land within a few orders of magnitude.
        let sp = ActionSpace::new();
        let log10 = sp.log10_cardinality();
        assert!(
            log10 > 15.0,
            "combined space should exceed 1e15, got 1e{log10:.1}"
        );
        let err_msg = format!(
            "error display: {}",
            DecodeActionError::WrongLength { got: 3 }
        );
        assert!(err_msg.contains("44"));
    }
}
