//! Minimal dense linear algebra (f64) for the regression models.

#![allow(clippy::needless_range_loop)]

use std::fmt;
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row-major backing data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// `A^T * A` (Gram matrix).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for i in 0..self.cols {
                if row[i] == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += row[i] * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `A^T * y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * y[r];
            }
        }
        out
    }

    /// In-place Cholesky factorization `A = L L^T` of a symmetric
    /// positive-definite matrix; returns the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if a non-positive pivot arises.
    pub fn cholesky(&self) -> Result<Matrix, NotPositiveDefiniteError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NotPositiveDefiniteError {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `L x = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self[(i, j)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `L^T x = b` for lower-triangular `L` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in i + 1..n {
                sum -= self[(j, i)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves the SPD system `A x = b` via Cholesky.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if `A` is not SPD.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefiniteError> {
        let l = self.cholesky()?;
        Ok(l.solve_lower_transpose(&l.solve_lower(b)))
    }
}

impl Snapshot for Matrix {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        w.put_f64s(&self.data);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let rows = r.take_usize()?;
        let cols = r.take_usize()?;
        let data = r.take_f64s()?;
        if data.len() != rows * cols {
            return Err(PersistError::Malformed(format!(
                "matrix {rows}x{cols} needs {} elems, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Error: the matrix passed to Cholesky is not positive definite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefiniteError {
    /// Pivot index at which factorization failed.
    pub pivot: usize,
    /// The non-positive pivot value.
    pub value: f64,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefiniteError {}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        let err = a.cholesky().unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn gram_and_t_matvec() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gram();
        assert_eq!(g[(0, 0)], 35.0);
        assert_eq!(g[(0, 1)], 44.0);
        assert_eq!(g[(1, 0)], 44.0);
        assert_eq!(g[(1, 1)], 56.0);
        let aty = a.t_matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(aty, vec![9.0, 12.0]);
    }

    #[test]
    fn identity_solve() {
        let i = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.solve_spd(&b).unwrap(), b);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
