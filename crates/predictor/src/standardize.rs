//! Feature / target standardization (zero mean, unit variance).

use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Per-dimension standardizer for feature vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits mean and standard deviation per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or rows have inconsistent lengths.
    pub fn fit(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "cannot standardize an empty set");
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut mean = vec![0.0; d];
        for x in xs {
            assert_eq!(x.len(), d, "inconsistent feature dimension");
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for x in xs {
            for ((s, v), m) in std.iter_mut().zip(x).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered at zero
            }
        }
        Standardizer { mean, std }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes one vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the fitted one.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len());
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_all(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

impl Snapshot for Standardizer {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.mean);
        w.put_f64s(&self.std);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let mean = r.take_f64s()?;
        let std = r.take_f64s()?;
        if mean.len() != std.len() {
            return Err(PersistError::Malformed(format!(
                "standardizer: {} means vs {} stds",
                mean.len(),
                std.len()
            )));
        }
        Ok(Standardizer { mean, std })
    }
}

/// Scalar standardizer for regression targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarStandardizer {
    mean: f64,
    std: f64,
}

impl ScalarStandardizer {
    /// Fits on the targets.
    ///
    /// # Panics
    ///
    /// Panics if `y` is empty.
    pub fn fit(y: &[f64]) -> Self {
        assert!(!y.is_empty());
        let n = y.len() as f64;
        let mean = y.iter().sum::<f64>() / n;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-12);
        ScalarStandardizer { mean, std }
    }

    /// Maps a raw target to standardized space.
    pub fn transform(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Maps a standardized prediction back to raw space.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

impl Snapshot for ScalarStandardizer {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64(self.mean);
        w.put_f64(self.std);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(ScalarStandardizer {
            mean: r.take_f64()?,
            std: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let s = Standardizer::fit(&xs);
        let t = s.transform_all(&xs);
        for d in 0..2 {
            let m: f64 = t.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let v: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(m.abs() < 1e-12);
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let xs = vec![vec![7.0], vec![7.0]];
        let s = Standardizer::fit(&xs);
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    fn scalar_roundtrip() {
        let y = [2.0, 4.0, 6.0];
        let s = ScalarStandardizer::fit(&y);
        for v in y {
            assert!((s.inverse(s.transform(v)) - v).abs() < 1e-12);
        }
    }
}
