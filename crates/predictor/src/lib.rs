//! # yoso-predictor
//!
//! Machine-learning hardware performance predictors — the paper's §III-E.
//!
//! The crate provides the six regression families compared in Fig. 4
//! (linear, ridge, k-NN, CART decision tree, random forest and the
//! Gaussian process that wins the comparison, plus a bonus linear SVR),
//! a tiny dense linear-algebra kernel (Cholesky solves for the GP), the
//! regression/ranking metrics used throughout the evaluation, and the
//! [`PerfPredictor`] bundle that replaces the cycle-level simulator inside
//! the search loop.
//!
//! ## Example
//!
//! ```
//! use yoso_accel::Simulator;
//! use yoso_arch::NetworkSkeleton;
//! use yoso_predictor::perf::{collect_samples, PerfPredictor};
//!
//! let skeleton = NetworkSkeleton::tiny();
//! let samples = collect_samples(&skeleton, &Simulator::fast(), 100, 0);
//! let predictor = PerfPredictor::train(&skeleton, &samples).unwrap();
//! let (lat, eer) = predictor.predict(&samples[0].point);
//! assert!(lat > 0.0 && eer > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod linalg;
pub mod metrics;
pub mod perf;
pub mod regressors;
pub mod standardize;

pub use features::{design_features, stats_features, FEATURE_DIM};
pub use perf::{collect_samples, PerfPredictor, PerfSample, SurrogateKind};
pub use regressors::forest::RandomForest;
pub use regressors::gp::GaussianProcess;
pub use regressors::knn::Knn;
pub use regressors::linear::{LinearRegression, Ridge};
pub use regressors::sparse_gp::SparseGaussianProcess;
pub use regressors::svr::LinearSvr;
pub use regressors::tree::DecisionTree;
pub use regressors::{fig4_models, FitError, Regressor};
pub use standardize::{ScalarStandardizer, Standardizer};
