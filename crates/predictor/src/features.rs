//! Feature extraction: design points → regression feature vectors.
//!
//! The paper feeds "the DNN model and configuration parameters" to the
//! predictors; we use a compact, model-agnostic summary of the compiled
//! network plus the raw hardware configuration.

use yoso_arch::{Dataflow, DesignPoint, HwConfig, NetworkSkeleton, NetworkStats};

/// Dimensionality of the feature vector produced by [`design_features`].
pub const FEATURE_DIM: usize = 20;

/// Features from precomputed network statistics and a hardware config.
pub fn stats_features(
    stats: &NetworkStats,
    hw: &HwConfig,
    out_arities: (usize, usize),
) -> Vec<f64> {
    let ln = |v: f64| (v.max(1.0)).ln();
    let total = stats.total_macs.max(1) as f64;
    let mut f = vec![
        ln(stats.total_macs as f64),
        ln(stats.total_weights as f64),
        stats.conv_macs as f64 / total,
        stats.dw_macs as f64 / total,
        stats.num_layers as f64,
        stats.k5_layers as f64,
        stats.pool_layers as f64,
        ln(stats.act_elems as f64),
        ln(stats.max_act_elems as f64),
        hw.pe.rows as f64,
        hw.pe.cols as f64,
        ln(hw.pe.count() as f64),
        ln(hw.gbuf_kb as f64),
        ln(hw.rbuf_bytes as f64),
    ];
    for df in Dataflow::ALL {
        f.push(if hw.dataflow == df { 1.0 } else { 0.0 });
    }
    f.push(out_arities.0 as f64);
    f.push(out_arities.1 as f64);
    debug_assert_eq!(f.len(), FEATURE_DIM);
    f
}

/// Compiles `point` under `skeleton` and extracts its feature vector.
pub fn design_features(point: &DesignPoint, skeleton: &NetworkSkeleton) -> Vec<f64> {
    let plan = skeleton.compile(&point.genotype);
    stats_features(
        &plan.stats,
        &point.hw,
        (
            point.genotype.normal.output_arity(),
            point.genotype.reduction.output_arity(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feature_dim_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = DesignPoint::random(&mut rng);
        let f = design_features(&p, &NetworkSkeleton::paper_default());
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn hw_changes_only_hw_features() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = DesignPoint::random(&mut rng);
        let sk = NetworkSkeleton::paper_default();
        let f1 = design_features(&p, &sk);
        p.hw = yoso_arch::HwConfig::from_indices(0, 0, 0, 0);
        let f2 = design_features(&p, &sk);
        // Network summary (first 9 dims) unchanged.
        assert_eq!(&f1[..9], &f2[..9]);
        // Hardware dims changed.
        assert_ne!(&f1[9..18], &f2[9..18]);
    }

    #[test]
    fn dataflow_one_hot_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = DesignPoint::random(&mut rng);
            let f = design_features(&p, &NetworkSkeleton::tiny());
            let one_hot: f64 = f[14..18].iter().sum();
            assert_eq!(one_hot, 1.0);
        }
    }

    #[test]
    fn macs_feature_monotone_in_network_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = DesignPoint::random(&mut rng);
        let small = design_features(&p, &NetworkSkeleton::tiny());
        let big = design_features(&p, &NetworkSkeleton::paper_default());
        assert!(big[0] > small[0]);
    }
}
