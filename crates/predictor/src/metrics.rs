//! Regression and ranking metrics.

/// Mean squared error.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute percentage error (skips zero-valued truths).
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mut s = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if t.abs() > 1e-12 {
            s += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Pearson linear correlation coefficient.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        // Average ranks for ties.
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation (ties averaged).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    pearson(&ranks(a), &ranks(b))
}

/// Kendall's tau-a rank correlation.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_mae_known() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 3.0, 1.0];
        assert!((mse(&p, &t) - (0.0 + 1.0 + 4.0) / 3.0).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2(&t, &t), 1.0);
        let mean_pred = [2.5; 4];
        assert!((r2(&mean_pred, &t) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_linear_relation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_mixed() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        // pairs: (1,2)C (1,3)C (2,3)D => (2-1)/3
        assert!((kendall_tau(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zeros() {
        let p = [1.1, 2.0];
        let t = [1.0, 0.0];
        assert!((mape(&p, &t) - 0.1).abs() < 1e-9);
    }
}
