//! The hardware performance predictor: two Gaussian processes (latency,
//! energy) trained on simulator samples — paper §III-E.

use crate::features::design_features;
use crate::metrics::mape;
use crate::regressors::gp::GaussianProcess;
use crate::regressors::sparse_gp::SparseGaussianProcess;
use crate::regressors::{FitError, Regressor};
use yoso_accel::Simulator;
use yoso_arch::{DesignPoint, NetworkSkeleton};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Which GP family backs the performance predictor.
///
/// [`Exact`](SurrogateKind::Exact) is the paper's O(n³) GP —
/// most accurate, capped at `max_train` points.
/// [`Sparse`](SurrogateKind::Sparse) is the subset-of-regressors
/// approximation ([`SparseGaussianProcess`]) — O(n·m²) fit, O(m²)
/// incremental append with no cap, built for the observation volumes a
/// served deployment accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SurrogateKind {
    /// Exact GP (paper default).
    #[default]
    Exact,
    /// Subset-of-regressors sparse GP.
    Sparse,
}

impl std::fmt::Display for SurrogateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SurrogateKind::Exact => "exact",
            SurrogateKind::Sparse => "sparse",
        })
    }
}

/// Either GP family behind one dispatching surface.
#[derive(Debug, Clone)]
enum SurrogateGp {
    Exact(GaussianProcess),
    Sparse(SparseGaussianProcess),
}

impl SurrogateGp {
    fn new(kind: SurrogateKind) -> Self {
        match kind {
            SurrogateKind::Exact => SurrogateGp::Exact(GaussianProcess::default_rbf()),
            SurrogateKind::Sparse => SurrogateGp::Sparse(SparseGaussianProcess::default_rbf()),
        }
    }

    fn kind(&self) -> SurrogateKind {
        match self {
            SurrogateGp::Exact(_) => SurrogateKind::Exact,
            SurrogateGp::Sparse(_) => SurrogateKind::Sparse,
        }
    }

    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), FitError> {
        match self {
            SurrogateGp::Exact(gp) => gp.fit(xs, ys),
            SurrogateGp::Sparse(gp) => gp.fit(xs, ys),
        }
    }

    fn append(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), FitError> {
        match self {
            SurrogateGp::Exact(gp) => gp.append(xs, ys),
            SurrogateGp::Sparse(gp) => gp.append(xs, ys),
        }
    }

    fn predict_one(&self, f: &[f64]) -> f64 {
        match self {
            SurrogateGp::Exact(gp) => gp.predict_one(f),
            SurrogateGp::Sparse(gp) => gp.predict_one(f),
        }
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        match self {
            SurrogateGp::Exact(gp) => gp.predict_batch(xs),
            SurrogateGp::Sparse(gp) => gp.predict_batch(xs),
        }
    }
}

impl Snapshot for SurrogateGp {
    fn snapshot(&self, w: &mut ByteWriter) {
        match self {
            SurrogateGp::Exact(gp) => {
                w.put_u8(0);
                gp.snapshot(w);
            }
            SurrogateGp::Sparse(gp) => {
                w.put_u8(1);
                gp.snapshot(w);
            }
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(SurrogateGp::Exact(GaussianProcess::restore(r)?)),
            1 => Ok(SurrogateGp::Sparse(SparseGaussianProcess::restore(r)?)),
            tag => Err(PersistError::Malformed(format!(
                "surrogate gp: unknown kind tag {tag}"
            ))),
        }
    }
}

/// One ground-truth sample: a design point and its simulated performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSample {
    /// The sampled design point.
    pub point: DesignPoint,
    /// Simulated end-to-end latency (ms).
    pub latency_ms: f64,
    /// Simulated end-to-end energy (mJ).
    pub energy_mj: f64,
}

/// Draws `n` random design points and simulates each one — the paper's
/// "performance samples taken from the accelerator simulator".
///
/// Simulation fans out over the global worker pool. Each sample's design
/// point comes from an RNG derived from `(seed, index)`, so the result
/// is deterministic and identical at any thread count.
pub fn collect_samples(
    skeleton: &NetworkSkeleton,
    sim: &Simulator,
    n: usize,
    seed: u64,
) -> Vec<PerfSample> {
    yoso_pool::parallel_map_seeded(n, 0, seed, |_, rng| {
        let point = DesignPoint::random(rng);
        let plan = skeleton.compile(&point.genotype);
        let rep = sim.simulate_plan(&plan, &point.hw);
        PerfSample {
            point,
            latency_ms: rep.latency_ms,
            energy_mj: rep.energy_mj,
        }
    })
}

/// Latency + energy predictor bundle (GP regressors over log targets).
#[derive(Debug, Clone)]
pub struct PerfPredictor {
    skeleton: NetworkSkeleton,
    latency_gp: SurrogateGp,
    energy_gp: SurrogateGp,
}

impl PerfPredictor {
    /// Trains both GPs from simulator samples with the paper-default
    /// [`SurrogateKind::Exact`] backend.
    ///
    /// Targets are modeled in log space (latency and energy are positive
    /// and multiplicative in the design factors), then exponentiated at
    /// prediction time.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if `samples` is empty or a fit fails.
    pub fn train(skeleton: &NetworkSkeleton, samples: &[PerfSample]) -> Result<Self, FitError> {
        Self::train_with(skeleton, samples, SurrogateKind::Exact)
    }

    /// Trains both regressors from simulator samples with an explicit
    /// surrogate backend.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if `samples` is empty or a fit fails.
    pub fn train_with(
        skeleton: &NetworkSkeleton,
        samples: &[PerfSample],
        kind: SurrogateKind,
    ) -> Result<Self, FitError> {
        if samples.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| design_features(&s.point, skeleton))
            .collect();
        let y_lat: Vec<f64> = samples
            .iter()
            .map(|s| s.latency_ms.max(1e-12).ln())
            .collect();
        let y_eer: Vec<f64> = samples
            .iter()
            .map(|s| s.energy_mj.max(1e-12).ln())
            .collect();
        let mut latency_gp = SurrogateGp::new(kind);
        latency_gp.fit(&xs, &y_lat)?;
        let mut energy_gp = SurrogateGp::new(kind);
        energy_gp.fit(&xs, &y_eer)?;
        Ok(PerfPredictor {
            skeleton: skeleton.clone(),
            latency_gp,
            energy_gp,
        })
    }

    /// The surrogate backend this predictor was trained with.
    pub fn kind(&self) -> SurrogateKind {
        self.latency_gp.kind()
    }

    /// Folds new simulator samples into both regressors **incrementally**
    /// — a Cholesky rank-append per point for the exact GP
    /// ([`GaussianProcess::append`]), a rank-1 normal-equation update for
    /// the sparse one ([`SparseGaussianProcess::append`]) — with the same
    /// log-space target transform. Hyper-parameters stay frozen at the
    /// values selected by the last full [`train`](Self::train).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] on dimension mismatch or if a fallback
    /// refactorization fails.
    pub fn append_samples(&mut self, samples: &[PerfSample]) -> Result<(), FitError> {
        if samples.is_empty() {
            return Ok(());
        }
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| design_features(&s.point, &self.skeleton))
            .collect();
        let y_lat: Vec<f64> = samples
            .iter()
            .map(|s| s.latency_ms.max(1e-12).ln())
            .collect();
        let y_eer: Vec<f64> = samples
            .iter()
            .map(|s| s.energy_mj.max(1e-12).ln())
            .collect();
        self.latency_gp.append(&xs, &y_lat)?;
        self.energy_gp.append(&xs, &y_eer)?;
        Ok(())
    }

    /// Predicts `(latency_ms, energy_mj)` for a design point.
    pub fn predict(&self, point: &DesignPoint) -> (f64, f64) {
        let f = design_features(point, &self.skeleton);
        self.predict_from_features(&f)
    }

    /// Prediction from precomputed network statistics — lets callers cache
    /// the genotype compilation when sweeping hardware configurations.
    pub fn predict_from_stats(
        &self,
        stats: &yoso_arch::NetworkStats,
        hw: &yoso_arch::HwConfig,
        out_arities: (usize, usize),
    ) -> (f64, f64) {
        let f = crate::features::stats_features(stats, hw, out_arities);
        self.predict_from_features(&f)
    }

    fn predict_from_features(&self, f: &[f64]) -> (f64, f64) {
        (
            self.latency_gp.predict_one(f).exp(),
            self.energy_gp.predict_one(f).exp(),
        )
    }

    /// Predicts `(latency_ms, energy_mj)` for a whole batch of points.
    ///
    /// Feature extraction (which compiles each genotype) fans out over
    /// the worker pool, and both GPs score the batch through
    /// [`GaussianProcess::predict_batch`] — one blocked cross-kernel
    /// pass each instead of a per-point variance solve. Results match
    /// [`predict`](Self::predict) bit-for-bit.
    pub fn predict_batch(&self, points: &[DesignPoint]) -> Vec<(f64, f64)> {
        let xs: Vec<Vec<f64>> = yoso_pool::parallel_map(points.len(), 0, |i| {
            design_features(&points[i], &self.skeleton)
        });
        self.predict_batch_from_features(&xs)
    }

    /// Batched prediction from precomputed feature rows.
    pub fn predict_batch_from_features(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let lat = self.latency_gp.predict_batch(xs);
        let eer = self.energy_gp.predict_batch(xs);
        lat.into_iter()
            .zip(eer)
            .map(|(l, e)| (l.exp(), e.exp()))
            .collect()
    }

    /// Mean absolute percentage errors `(latency, energy)` on a held-out
    /// sample set — the paper claims < 4% accuracy loss.
    pub fn evaluate(&self, samples: &[PerfSample]) -> (f64, f64) {
        let mut pl = Vec::with_capacity(samples.len());
        let mut pe = Vec::with_capacity(samples.len());
        let mut tl = Vec::with_capacity(samples.len());
        let mut te = Vec::with_capacity(samples.len());
        for s in samples {
            let (l, e) = self.predict(&s.point);
            pl.push(l);
            pe.push(e);
            tl.push(s.latency_ms);
            te.push(s.energy_mj);
        }
        (mape(&pl, &tl), mape(&pe, &te))
    }
}

impl Snapshot for PerfSample {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.point.snapshot(w);
        w.put_f64(self.latency_ms);
        w.put_f64(self.energy_mj);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(PerfSample {
            point: DesignPoint::restore(r)?,
            latency_ms: r.take_f64()?,
            energy_mj: r.take_f64()?,
        })
    }
}

impl Snapshot for PerfPredictor {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.skeleton.snapshot(w);
        self.latency_gp.snapshot(w);
        self.energy_gp.snapshot(w);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(PerfPredictor {
            skeleton: NetworkSkeleton::restore(r)?,
            latency_gp: SurrogateGp::restore(r)?,
            energy_gp: SurrogateGp::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn predictor_is_accurate_on_held_out_points() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 300, 0);
        let test = collect_samples(&skeleton, &sim, 60, 1);
        let pred = PerfPredictor::train(&skeleton, &train).unwrap();
        let (lat_err, eer_err) = pred.evaluate(&test);
        // The paper reports < 4% loss at 3000 samples; at this reduced
        // scale we accept < 15%.
        assert!(lat_err < 0.15, "latency MAPE {lat_err}");
        assert!(eer_err < 0.15, "energy MAPE {eer_err}");
    }

    #[test]
    fn predictions_positive() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 100, 2);
        let pred = PerfPredictor::train(&skeleton, &train).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = DesignPoint::random(&mut rng);
            let (l, e) = pred.predict(&p);
            assert!(l > 0.0 && e > 0.0);
        }
    }

    #[test]
    fn empty_training_rejected() {
        assert!(matches!(
            PerfPredictor::train(&NetworkSkeleton::tiny(), &[]),
            Err(FitError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn predict_batch_matches_per_point_predict() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 100, 4);
        let pred = PerfPredictor::train(&skeleton, &train).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<DesignPoint> = (0..37).map(|_| DesignPoint::random(&mut rng)).collect();
        let batch = pred.predict_batch(&points);
        assert_eq!(batch.len(), points.len());
        for (p, &(bl, be)) in points.iter().zip(&batch) {
            let (l, e) = pred.predict(p);
            assert!((l - bl).abs() <= 1e-9 * l.abs().max(1.0), "{l} vs {bl}");
            assert!((e - be).abs() <= 1e-9 * e.abs().max(1.0), "{e} vs {be}");
        }
    }

    #[test]
    fn appended_samples_improve_accuracy() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let all = collect_samples(&skeleton, &sim, 300, 20);
        let test = collect_samples(&skeleton, &sim, 60, 21);
        let mut pred = PerfPredictor::train(&skeleton, &all[..100]).unwrap();
        let (lat_small, _) = pred.evaluate(&test);
        pred.append_samples(&all[100..]).unwrap();
        let (lat_big, eer_big) = pred.evaluate(&test);
        // More data through the incremental path must not hurt, and
        // accuracy stays in the same band as a from-scratch train.
        assert!(
            lat_big <= lat_small * 1.1,
            "append degraded MAPE: {lat_small} -> {lat_big}"
        );
        assert!(lat_big < 0.15, "latency MAPE {lat_big}");
        assert!(eer_big < 0.15, "energy MAPE {eer_big}");
    }

    #[test]
    fn append_empty_is_noop() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 80, 22);
        let mut pred = PerfPredictor::train(&skeleton, &train).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let p = DesignPoint::random(&mut rng);
        let before = pred.predict(&p);
        pred.append_samples(&[]).unwrap();
        let after = pred.predict(&p);
        assert_eq!(before.0.to_bits(), after.0.to_bits());
        assert_eq!(before.1.to_bits(), after.1.to_bits());
    }

    #[test]
    fn restored_predictor_predicts_bit_identically() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 120, 11);
        let pred = PerfPredictor::train(&skeleton, &train).unwrap();
        let mut w = ByteWriter::new();
        pred.snapshot(&mut w);
        let bytes = w.into_bytes();
        let back = PerfPredictor::restore(&mut ByteReader::new(&bytes)).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..25 {
            let p = DesignPoint::random(&mut rng);
            let (l0, e0) = pred.predict(&p);
            let (l1, e1) = back.predict(&p);
            assert_eq!(l0.to_bits(), l1.to_bits());
            assert_eq!(e0.to_bits(), e1.to_bits());
        }
    }

    #[test]
    fn sparse_backend_is_accurate_and_appendable() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 300, 30);
        let test = collect_samples(&skeleton, &sim, 60, 31);
        let mut pred =
            PerfPredictor::train_with(&skeleton, &train[..200], SurrogateKind::Sparse).unwrap();
        assert_eq!(pred.kind(), SurrogateKind::Sparse);
        let (lat_err, eer_err) = pred.evaluate(&test);
        assert!(lat_err < 0.2, "sparse latency MAPE {lat_err}");
        assert!(eer_err < 0.2, "sparse energy MAPE {eer_err}");
        pred.append_samples(&train[200..]).unwrap();
        let (lat_more, _) = pred.evaluate(&test);
        assert!(
            lat_more <= lat_err * 1.1,
            "sparse append degraded MAPE: {lat_err} -> {lat_more}"
        );
    }

    #[test]
    fn sparse_predictor_roundtrips_with_kind_tag() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let train = collect_samples(&skeleton, &sim, 100, 32);
        let pred = PerfPredictor::train_with(&skeleton, &train, SurrogateKind::Sparse).unwrap();
        let mut w = ByteWriter::new();
        pred.snapshot(&mut w);
        let bytes = w.into_bytes();
        let back = PerfPredictor::restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.kind(), SurrogateKind::Sparse);
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let p = DesignPoint::random(&mut rng);
            let (l0, e0) = pred.predict(&p);
            let (l1, e1) = back.predict(&p);
            assert_eq!(l0.to_bits(), l1.to_bits());
            assert_eq!(e0.to_bits(), e1.to_bits());
        }
    }

    #[test]
    fn samples_deterministic_by_seed() {
        let skeleton = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let a = collect_samples(&skeleton, &sim, 10, 7);
        let b = collect_samples(&skeleton, &sim, 10, 7);
        assert_eq!(a, b);
    }
}
