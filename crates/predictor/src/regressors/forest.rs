//! Random forest regression (bagged CART trees with feature subsampling).

use super::tree::DecisionTree;
use super::{validate, FitError, Regressor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random forest: bootstrap-aggregated decision trees, each split
/// considering a random `sqrt(d)`-sized feature subset.
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    min_samples_split: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an unfitted forest.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0`.
    pub fn new(n_trees: usize, max_depth: usize, min_samples_split: usize, seed: u64) -> Self {
        assert!(n_trees > 0);
        RandomForest {
            n_trees,
            max_depth,
            min_samples_split,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let d = validate(x, y)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = x.len();
        let n_feat = ((d as f64).sqrt().ceil() as usize).clamp(1, d);
        self.trees.clear();
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let indices: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            // Feature subset (without replacement).
            let mut feats: Vec<usize> = (0..d).collect();
            for i in (1..feats.len()).rev() {
                let j = rng.random_range(0..=i);
                feats.swap(i, j);
            }
            feats.truncate(n_feat);
            let mut tree = DecisionTree::new(self.max_depth, self.min_samples_split);
            tree.fit_indices(x, y, &indices, &feats);
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_one(x)).sum::<f64>() / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "RandomForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn noisy_quadratic(seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x[0] * x[0] + 0.5 * x[1] + 0.05 * rng.random_range(-1.0..1.0))
            .collect();
        (xs, ys)
    }

    #[test]
    fn forest_beats_mean_predictor() {
        let (xs, ys) = noisy_quadratic(0);
        let mut f = RandomForest::new(30, 8, 4, 42);
        f.fit(&xs, &ys).unwrap();
        let preds = f.predict(&xs);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mean_preds = vec![mean; ys.len()];
        assert!(mse(&preds, &ys) < 0.3 * mse(&mean_preds, &ys));
        assert_eq!(f.tree_count(), 30);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (xs, ys) = noisy_quadratic(1);
        let mut a = RandomForest::new(10, 6, 4, 7);
        let mut b = RandomForest::new(10, 6, 4, 7);
        a.fit(&xs, &ys).unwrap();
        b.fit(&xs, &ys).unwrap();
        assert_eq!(a.predict_one(&[0.3, -0.7]), b.predict_one(&[0.3, -0.7]));
    }

    #[test]
    fn different_seed_differs() {
        let (xs, ys) = noisy_quadratic(2);
        let mut a = RandomForest::new(10, 6, 4, 1);
        let mut b = RandomForest::new(10, 6, 4, 2);
        a.fit(&xs, &ys).unwrap();
        b.fit(&xs, &ys).unwrap();
        assert_ne!(a.predict_one(&[0.1, 0.1]), b.predict_one(&[0.1, 0.1]));
    }

    #[test]
    fn unfitted_predicts_zero() {
        let f = RandomForest::new(5, 4, 2, 0);
        assert_eq!(f.predict_one(&[1.0]), 0.0);
    }
}
