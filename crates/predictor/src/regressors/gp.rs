//! Gaussian-process regression with an RBF kernel (Eq. 7–8 of the paper).
//!
//! This is the model the paper selects as its hardware performance
//! predictor: `y = f(λ) + ε`, `f ~ GP(µ, K)` with the radial basis
//! function kernel `K(λ, λ') = exp(-||λ - λ'||² / (2ℓ²))` and Gaussian
//! observation noise. Hyper-parameters (lengthscale `ℓ`, noise variance)
//! are chosen by maximizing the log marginal likelihood over a small grid
//! on a training subsample.

use super::{validate, FitError, Regressor};
use crate::linalg::{sq_dist, Matrix};
use crate::standardize::{ScalarStandardizer, Standardizer};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// RBF-kernel Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    lengthscale_factors: Vec<f64>,
    noise_grid: Vec<f64>,
    /// Cap on training points actually factorized (subsampled by stride).
    max_train: usize,
    /// Cap on subsample size used for hyper-parameter selection.
    max_hyper: usize,
    // Fitted state.
    std: Standardizer,
    ystd: Option<ScalarStandardizer>,
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Option<Matrix>,
    lengthscale: f64,
    noise: f64,
}

impl GaussianProcess {
    /// The default configuration used by the experiments.
    pub fn default_rbf() -> Self {
        GaussianProcess {
            lengthscale_factors: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            noise_grid: vec![1e-4, 1e-3, 1e-2, 1e-1],
            max_train: 2000,
            max_hyper: 300,
            std: Standardizer::default(),
            ystd: None,
            xs: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            lengthscale: 1.0,
            noise: 1e-2,
        }
    }

    /// Builds a GP with a fixed lengthscale/noise (no grid search).
    pub fn with_hyperparams(lengthscale: f64, noise: f64) -> Self {
        GaussianProcess {
            lengthscale_factors: vec![],
            noise_grid: vec![],
            lengthscale,
            noise,
            ..Self::default_rbf()
        }
    }

    /// Overrides the training-set cap (larger = slower, more accurate).
    pub fn with_max_train(mut self, cap: usize) -> Self {
        self.max_train = cap.max(2);
        self
    }

    /// Fitted lengthscale.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// Fitted noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        (-sq_dist(a, b) / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    fn kernel_matrix(xs: &[Vec<f64>], ell: f64, noise: f64) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        let inv = 1.0 / (2.0 * ell * ell);
        for i in 0..n {
            k[(i, i)] = 1.0 + noise;
            for j in 0..i {
                let v = (-sq_dist(&xs[i], &xs[j]) * inv).exp();
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Log marginal likelihood of `(xs, ys)` under `(ell, noise)`.
    fn log_marginal(xs: &[Vec<f64>], ys: &[f64], ell: f64, noise: f64) -> f64 {
        let k = Self::kernel_matrix(xs, ell, noise);
        let Ok(l) = k.cholesky() else {
            return f64::NEG_INFINITY;
        };
        let alpha = l.solve_lower_transpose(&l.solve_lower(ys));
        let n = xs.len();
        let data_fit: f64 = ys.iter().zip(&alpha).map(|(y, a)| y * a).sum::<f64>() * -0.5;
        let log_det: f64 = (0..n).map(|i| l[(i, i)].ln()).sum();
        data_fit - log_det - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Predictive mean and variance for one point (raw target space).
    pub fn predict_with_variance(&self, x: &[f64]) -> (f64, f64) {
        let Some(ystd) = self.ystd else {
            return (0.0, 1.0);
        };
        let q = self.std.transform(x);
        let kv: Vec<f64> = self.xs.iter().map(|xi| self.kernel(&q, xi)).collect();
        let mean_z: f64 = kv.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let var_z = match &self.chol {
            Some(l) => {
                let v = l.solve_lower(&kv);
                (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12)
            }
            None => 1.0,
        };
        // Variance scales by the square of the target std.
        let scale = ystd.inverse(1.0) - ystd.inverse(0.0);
        (ystd.inverse(mean_z), var_z * scale * scale)
    }

    /// Predictive means for a batch of points (raw target space).
    ///
    /// Computes the cross-kernel matrix `K(Q, X)` in one blocked
    /// GEMM-style pass — a tile of training rows stays cache-resident
    /// while every query in the current block visits it — and skips the
    /// per-query `O(n²)` triangular solve that
    /// [`predict_with_variance`](Self::predict_with_variance) pays for
    /// the variance, since only means are needed. Each query's mean
    /// accumulates kernel terms in training order into a single `f64`,
    /// so the result is bit-identical to the one-at-a-time path.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        const Q_BLOCK: usize = 32;
        const T_BLOCK: usize = 256;
        let Some(ystd) = self.ystd else {
            return vec![0.0; xs.len()];
        };
        // Batch-size and latency telemetry (`gp.points / gp.batches` is
        // the mean batch size); one atomic load when tracing is off.
        let _span = yoso_trace::span("gp.predict_batch");
        if yoso_trace::enabled() {
            yoso_trace::counter_add("gp.batches", 1);
            yoso_trace::counter_add("gp.points", xs.len() as u64);
        }
        let qs: Vec<Vec<f64>> = xs.iter().map(|x| self.std.transform(x)).collect();
        let mut mean_z = vec![0.0f64; xs.len()];
        for (qb, mb) in qs.chunks(Q_BLOCK).zip(mean_z.chunks_mut(Q_BLOCK)) {
            for t0 in (0..self.xs.len()).step_by(T_BLOCK) {
                let t1 = (t0 + T_BLOCK).min(self.xs.len());
                for (q, m) in qb.iter().zip(mb.iter_mut()) {
                    for (xi, a) in self.xs[t0..t1].iter().zip(&self.alpha[t0..t1]) {
                        *m += self.kernel(q, xi) * a;
                    }
                }
            }
        }
        mean_z.into_iter().map(|z| ystd.inverse(z)).collect()
    }
}

impl Default for GaussianProcess {
    fn default() -> Self {
        Self::default_rbf()
    }
}

fn stride_subsample<T: Clone>(v: &[T], cap: usize) -> Vec<T> {
    if v.len() <= cap {
        return v.to_vec();
    }
    let stride = v.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| v[(i as f64 * stride) as usize].clone())
        .collect()
}

// The full fitted state (training subsample, Cholesky factor, alpha
// weights, standardizers, selected hyper-parameters) is persisted, so a
// restored GP predicts bit-identically without re-running the O(n^3)
// fit or the hyper-parameter grid search.
impl Snapshot for GaussianProcess {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.lengthscale_factors);
        w.put_f64s(&self.noise_grid);
        w.put_usize(self.max_train);
        w.put_usize(self.max_hyper);
        self.std.snapshot(w);
        match self.ystd {
            Some(y) => {
                w.put_bool(true);
                y.snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.xs.len());
        for x in &self.xs {
            w.put_f64s(x);
        }
        w.put_f64s(&self.alpha);
        match &self.chol {
            Some(l) => {
                w.put_bool(true);
                l.snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_f64(self.lengthscale);
        w.put_f64(self.noise);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let lengthscale_factors = r.take_f64s()?;
        let noise_grid = r.take_f64s()?;
        let max_train = r.take_usize()?;
        let max_hyper = r.take_usize()?;
        let std = Standardizer::restore(r)?;
        let ystd = if r.take_bool()? {
            Some(ScalarStandardizer::restore(r)?)
        } else {
            None
        };
        let n = r.take_usize()?;
        let xs = (0..n)
            .map(|_| r.take_f64s())
            .collect::<Result<Vec<_>, _>>()?;
        let alpha = r.take_f64s()?;
        if alpha.len() != xs.len() {
            return Err(PersistError::Malformed(format!(
                "gp: {} training points vs {} alpha weights",
                xs.len(),
                alpha.len()
            )));
        }
        let chol = if r.take_bool()? {
            Some(Matrix::restore(r)?)
        } else {
            None
        };
        Ok(GaussianProcess {
            lengthscale_factors,
            noise_grid,
            max_train,
            max_hyper,
            std,
            ystd,
            xs,
            alpha,
            chol,
            lengthscale: r.take_f64()?,
            noise: r.take_f64()?,
        })
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let d = validate(x, y)?;
        self.std = Standardizer::fit(x);
        let xs_full = self.std.transform_all(x);
        let ystd = ScalarStandardizer::fit(y);
        let ys_full: Vec<f64> = y.iter().map(|&v| ystd.transform(v)).collect();
        self.ystd = Some(ystd);

        // Hyper-parameter selection by log marginal likelihood on a
        // subsample; the base lengthscale is sqrt(d) (typical pairwise
        // distance after standardization).
        if !self.lengthscale_factors.is_empty() {
            let xs_h = stride_subsample(&xs_full, self.max_hyper);
            let ys_h = stride_subsample(&ys_full, self.max_hyper);
            let base = (d as f64).sqrt();
            let mut best = f64::NEG_INFINITY;
            for &lf in &self.lengthscale_factors {
                for &nv in &self.noise_grid {
                    let lml = Self::log_marginal(&xs_h, &ys_h, lf * base, nv);
                    if lml > best {
                        best = lml;
                        self.lengthscale = lf * base;
                        self.noise = nv;
                    }
                }
            }
            if best == f64::NEG_INFINITY {
                return Err(FitError::Numerical(
                    "no hyper-parameter candidate yielded an SPD kernel".into(),
                ));
            }
        }

        // Final factorization on (up to max_train) points.
        let xs = stride_subsample(&xs_full, self.max_train);
        let ys = stride_subsample(&ys_full, self.max_train);
        let k = Self::kernel_matrix(&xs, self.lengthscale, self.noise.max(1e-6));
        let l = k
            .cholesky()
            .map_err(|e| FitError::Numerical(e.to_string()))?;
        self.alpha = l.solve_lower_transpose(&l.solve_lower(&ys));
        self.chol = Some(l);
        self.xs = xs;
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_with_variance(x).0
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.predict_batch(xs)
    }

    fn name(&self) -> &'static str {
        "GaussianProcess"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mse, r2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn smooth_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0]).sin() + 0.5 * (x[1] * 0.8).cos() + 0.3 * x[0])
            .collect();
        (xs, ys)
    }

    #[test]
    fn gp_interpolates_smooth_function() {
        let (xs, ys) = smooth_data(200, 0);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let (tx, ty) = smooth_data(50, 1);
        let preds = gp.predict(&tx);
        assert!(r2(&preds, &ty) > 0.95, "r2 {}", r2(&preds, &ty));
    }

    #[test]
    fn gp_beats_linear_on_nonlinear_target() {
        let (xs, ys) = smooth_data(200, 2);
        let (tx, ty) = smooth_data(80, 3);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let mut lin = super::super::linear::LinearRegression::new();
        lin.fit(&xs, &ys).unwrap();
        assert!(mse(&gp.predict(&tx), &ty) < mse(&lin.predict(&tx), &ty));
    }

    #[test]
    fn variance_small_at_training_points_larger_far_away() {
        let (xs, ys) = smooth_data(100, 4);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let (_, var_near) = gp.predict_with_variance(&xs[0]);
        let (_, var_far) = gp.predict_with_variance(&[100.0, -100.0]);
        assert!(var_far > var_near, "{var_far} !> {var_near}");
    }

    #[test]
    fn fixed_hyperparams_skip_grid() {
        let (xs, ys) = smooth_data(50, 5);
        let mut gp = GaussianProcess::with_hyperparams(1.5, 1e-3);
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.lengthscale(), 1.5);
        assert_eq!(gp.noise(), 1e-3);
    }

    #[test]
    fn subsampling_caps_training_size() {
        let (xs, ys) = smooth_data(300, 6);
        let mut gp = GaussianProcess::default_rbf().with_max_train(64);
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.xs.len(), 64);
        // Still a sensible predictor.
        let preds = gp.predict(&xs);
        assert!(r2(&preds, &ys) > 0.8);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let gp = GaussianProcess::default_rbf();
        assert_eq!(gp.predict_one(&[1.0, 2.0]), 0.0);
        assert_eq!(gp.predict_batch(&[vec![1.0, 2.0]]), vec![0.0]);
    }

    #[test]
    fn predict_batch_matches_predict_one() {
        let (xs, ys) = smooth_data(200, 7);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        // 97 queries: not a multiple of either block edge, so partial
        // query and training tiles are both exercised.
        let (tx, _) = smooth_data(97, 8);
        let batch = gp.predict_batch(&tx);
        assert_eq!(batch.len(), tx.len());
        for (x, &b) in tx.iter().zip(&batch) {
            let one = gp.predict_one(x);
            assert!((one - b).abs() <= 1e-9, "batch {b} vs one-at-a-time {one}");
        }
    }
}
