//! Gaussian-process regression with an RBF kernel (Eq. 7–8 of the paper).
//!
//! This is the model the paper selects as its hardware performance
//! predictor: `y = f(λ) + ε`, `f ~ GP(µ, K)` with the radial basis
//! function kernel `K(λ, λ') = exp(-||λ - λ'||² / (2ℓ²))` and Gaussian
//! observation noise. Hyper-parameters (lengthscale `ℓ`, noise variance)
//! are chosen by maximizing the log marginal likelihood over a small grid
//! on a training subsample.

use super::{validate, FitError, Regressor};
use crate::linalg::{sq_dist, Matrix};
use crate::standardize::{ScalarStandardizer, Standardizer};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// RBF-kernel Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    lengthscale_factors: Vec<f64>,
    noise_grid: Vec<f64>,
    /// Cap on training points actually factorized (subsampled by stride).
    max_train: usize,
    /// Cap on subsample size used for hyper-parameter selection.
    max_hyper: usize,
    // Fitted state.
    std: Standardizer,
    ystd: Option<ScalarStandardizer>,
    xs: Vec<Vec<f64>>,
    /// Standardized targets of the factorized points — kept so
    /// [`GaussianProcess::append`] can recompute `alpha` and
    /// [`GaussianProcess::refit`] can refactorize without the raw data.
    ys_z: Vec<f64>,
    alpha: Vec<f64>,
    chol: Option<Matrix>,
    lengthscale: f64,
    noise: f64,
}

impl GaussianProcess {
    /// The default configuration used by the experiments.
    pub fn default_rbf() -> Self {
        GaussianProcess {
            lengthscale_factors: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            noise_grid: vec![1e-4, 1e-3, 1e-2, 1e-1],
            max_train: 2000,
            max_hyper: 300,
            std: Standardizer::default(),
            ystd: None,
            xs: Vec::new(),
            ys_z: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            lengthscale: 1.0,
            noise: 1e-2,
        }
    }

    /// Builds a GP with a fixed lengthscale/noise (no grid search).
    pub fn with_hyperparams(lengthscale: f64, noise: f64) -> Self {
        GaussianProcess {
            lengthscale_factors: vec![],
            noise_grid: vec![],
            lengthscale,
            noise,
            ..Self::default_rbf()
        }
    }

    /// Overrides the training-set cap (larger = slower, more accurate).
    pub fn with_max_train(mut self, cap: usize) -> Self {
        self.max_train = cap.max(2);
        self
    }

    /// Fitted lengthscale.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// Fitted noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        (-sq_dist(a, b) / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    pub(crate) fn kernel_matrix(xs: &[Vec<f64>], ell: f64, noise: f64) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        let inv = 1.0 / (2.0 * ell * ell);
        for i in 0..n {
            k[(i, i)] = 1.0 + noise;
            for j in 0..i {
                let v = (-sq_dist(&xs[i], &xs[j]) * inv).exp();
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Log marginal likelihood of `(xs, ys)` under `(ell, noise)`.
    pub(crate) fn log_marginal(xs: &[Vec<f64>], ys: &[f64], ell: f64, noise: f64) -> f64 {
        let k = Self::kernel_matrix(xs, ell, noise);
        let Ok(l) = k.cholesky() else {
            return f64::NEG_INFINITY;
        };
        let alpha = l.solve_lower_transpose(&l.solve_lower(ys));
        let n = xs.len();
        let data_fit: f64 = ys.iter().zip(&alpha).map(|(y, a)| y * a).sum::<f64>() * -0.5;
        let log_det: f64 = (0..n).map(|i| l[(i, i)].ln()).sum();
        data_fit - log_det - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Standardized-space mean and variance for one standardized query.
    /// `kv` is a reusable scratch vector for the cross-kernel row.
    ///
    /// This is THE mean/variance code path: both
    /// [`predict_with_variance`](Self::predict_with_variance) and
    /// [`predict_batch_with_variance`](Self::predict_batch_with_variance)
    /// call it, so the two APIs cannot drift apart.
    fn mean_var_z(&self, q: &[f64], kv: &mut Vec<f64>) -> (f64, f64) {
        kv.clear();
        kv.extend(self.xs.iter().map(|xi| self.kernel(q, xi)));
        let mean_z: f64 = kv.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let var_z = match &self.chol {
            Some(l) => {
                let v = l.solve_lower(kv);
                (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12)
            }
            None => 1.0,
        };
        (mean_z, var_z)
    }

    /// Predictive mean and variance for one point (raw target space).
    pub fn predict_with_variance(&self, x: &[f64]) -> (f64, f64) {
        let Some(ystd) = self.ystd else {
            return (0.0, 1.0);
        };
        let q = self.std.transform(x);
        let mut kv = Vec::with_capacity(self.xs.len());
        let (mean_z, var_z) = self.mean_var_z(&q, &mut kv);
        // Variance scales by the square of the target std.
        let scale = ystd.inverse(1.0) - ystd.inverse(0.0);
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpPredictNan) {
            return (f64::NAN, f64::NAN);
        }
        (ystd.inverse(mean_z), var_z * scale * scale)
    }

    /// Predictive means and variances for a batch of points (raw target
    /// space) — the acquisition-function entry point.
    ///
    /// Shares the per-query code path with
    /// [`predict_with_variance`](Self::predict_with_variance) (results
    /// are bit-identical) but hoists the query standardization and the
    /// cross-kernel scratch allocation out of the loop, so scoring `q`
    /// candidates costs one allocation instead of `q`.
    pub fn predict_batch_with_variance(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let Some(ystd) = self.ystd else {
            return vec![(0.0, 1.0); xs.len()];
        };
        let _span = yoso_trace::span("gp.predict_batch_with_variance");
        if yoso_trace::enabled() {
            yoso_trace::counter_add("gp.variance_batches", 1);
            yoso_trace::counter_add("gp.variance_points", xs.len() as u64);
        }
        let scale = ystd.inverse(1.0) - ystd.inverse(0.0);
        let mut kv = Vec::with_capacity(self.xs.len());
        xs.iter()
            .map(|x| {
                let q = self.std.transform(x);
                let (mean_z, var_z) = self.mean_var_z(&q, &mut kv);
                if yoso_chaos::armed()
                    && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpPredictNan)
                {
                    return (f64::NAN, f64::NAN);
                }
                (ystd.inverse(mean_z), var_z * scale * scale)
            })
            .collect()
    }

    /// Predictive means for a batch of points (raw target space).
    ///
    /// Computes the cross-kernel matrix `K(Q, X)` in one blocked
    /// GEMM-style pass — a tile of training rows stays cache-resident
    /// while every query in the current block visits it — and skips the
    /// per-query `O(n²)` triangular solve that
    /// [`predict_with_variance`](Self::predict_with_variance) pays for
    /// the variance, since only means are needed. Each query's mean
    /// accumulates kernel terms in training order into a single `f64`,
    /// so the result is bit-identical to the one-at-a-time path.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        const Q_BLOCK: usize = 32;
        const T_BLOCK: usize = 256;
        let Some(ystd) = self.ystd else {
            return vec![0.0; xs.len()];
        };
        // Batch-size and latency telemetry (`gp.points / gp.batches` is
        // the mean batch size); one atomic load when tracing is off.
        let _span = yoso_trace::span("gp.predict_batch");
        if yoso_trace::enabled() {
            yoso_trace::counter_add("gp.batches", 1);
            yoso_trace::counter_add("gp.points", xs.len() as u64);
        }
        let qs: Vec<Vec<f64>> = xs.iter().map(|x| self.std.transform(x)).collect();
        let mut mean_z = vec![0.0f64; xs.len()];
        for (qb, mb) in qs.chunks(Q_BLOCK).zip(mean_z.chunks_mut(Q_BLOCK)) {
            for t0 in (0..self.xs.len()).step_by(T_BLOCK) {
                let t1 = (t0 + T_BLOCK).min(self.xs.len());
                for (q, m) in qb.iter().zip(mb.iter_mut()) {
                    for (xi, a) in self.xs[t0..t1].iter().zip(&self.alpha[t0..t1]) {
                        *m += self.kernel(q, xi) * a;
                    }
                }
            }
        }
        mean_z
            .into_iter()
            .map(|z| {
                if yoso_chaos::armed()
                    && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpPredictNan)
                {
                    return f64::NAN;
                }
                ystd.inverse(z)
            })
            .collect()
    }

    /// Number of training points currently factorized.
    pub fn train_len(&self) -> usize {
        self.xs.len()
    }

    /// Appends new training points by **extending the cached Cholesky
    /// factor** instead of refactorizing.
    ///
    /// For each point this costs one `O(n²)` triangular solve plus one new
    /// factor row, versus the `O(n³)` full refactorization — the win that
    /// makes search-time model updates (score → simulate → refine) cheap.
    /// Hyper-parameters and both standardizers are **frozen** at their
    /// values from the last full [`fit`](Regressor::fit): a grid-search
    /// re-selection would change the kernel and invalidate the cached
    /// factor, so hyper-parameter changes must go through `fit`.
    ///
    /// Falls back to a frozen-hyperparameter [`refit`](Self::refit) if a
    /// pivot goes non-positive (numerically rank-deficient append).
    /// Points beyond the `max_train` cap are dropped, mirroring `fit`'s
    /// subsampling cap. On an unfitted model this delegates to `fit`.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] on dimension mismatch or if the fallback
    /// refactorization fails.
    pub fn append(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpFitFail) {
            return Err(FitError::Numerical(
                "chaos: injected GP append failure".into(),
            ));
        }
        if self.ystd.is_none() || self.chol.is_none() {
            return self.fit(x, y);
        }
        validate(x, y)?;
        let ystd = self.ystd.expect("checked above");
        let room = self.max_train.saturating_sub(self.xs.len());
        let take = x.len().min(room);
        if yoso_trace::enabled() {
            yoso_trace::counter_add("gp.appends", 1);
            yoso_trace::counter_add("gp.append_points", take as u64);
            if take < x.len() {
                yoso_trace::counter_add("gp.append_dropped", (x.len() - take) as u64);
            }
        }
        if take == 0 {
            return Ok(());
        }
        let noise_eff = self.noise.max(1e-6);
        // Match kernel_matrix's arithmetic exactly (multiply by the
        // precomputed reciprocal) so the appended rows carry the same
        // kernel values a refactorization would see.
        let inv = 1.0 / (2.0 * self.lengthscale * self.lengthscale);
        let n0 = self.xs.len();
        let nn = n0 + take;
        let old = self.chol.take().expect("checked above");
        let mut l = Matrix::zeros(nn, nn);
        for i in 0..n0 {
            for j in 0..=i {
                l[(i, j)] = old[(i, j)];
            }
        }
        for (idx, (xj, &yj)) in x[..take].iter().zip(&y[..take]).enumerate() {
            let q = self.xs.len(); // grows as points land
            let xq = self.std.transform(xj);
            // Cross-kernel row against every point already in the factor,
            // then forward-substitute within the leading q×q block. The
            // arithmetic order matches what `cholesky` would do for this
            // row, so incremental and full factors agree to rounding.
            let mut v: Vec<f64> = (0..q)
                .map(|i| (-sq_dist(&xq, &self.xs[i]) * inv).exp())
                .collect();
            for i in 0..q {
                let mut sum = v[i];
                for t in 0..i {
                    sum -= l[(i, t)] * v[t];
                }
                v[i] = sum / l[(i, i)];
            }
            let pivot = (1.0 + noise_eff) - v.iter().map(|t| t * t).sum::<f64>();
            if pivot <= 0.0 {
                // Rank-deficient append: land this and every remaining
                // point, then refactorize from scratch with frozen
                // hyper-parameters.
                if yoso_trace::enabled() {
                    yoso_trace::counter_add("gp.append_fallbacks", 1);
                }
                for (xr, &yr) in x[idx..take].iter().zip(&y[idx..take]) {
                    self.xs.push(self.std.transform(xr));
                    self.ys_z.push(ystd.transform(yr));
                }
                return self.refit();
            }
            for (t, vt) in v.iter().enumerate() {
                l[(q, t)] = *vt;
            }
            l[(q, q)] = pivot.sqrt();
            self.xs.push(xq);
            self.ys_z.push(ystd.transform(yj));
        }
        // One pair of O(n²) triangular solves re-derives alpha for the
        // grown training set.
        self.alpha = l.solve_lower_transpose(&l.solve_lower(&self.ys_z));
        self.chol = Some(l);
        Ok(())
    }

    /// Full refactorization over the current training set with **frozen**
    /// hyper-parameters and standardizers (no grid search) — the
    /// apples-to-apples baseline that [`append`](Self::append) is
    /// benchmarked against, and its fallback when an appended pivot is
    /// numerically unusable.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the kernel matrix is not positive definite.
    pub fn refit(&mut self) -> Result<(), FitError> {
        if yoso_trace::enabled() {
            yoso_trace::counter_add("gp.full_refits", 1);
        }
        let k = Self::kernel_matrix(&self.xs, self.lengthscale, self.noise.max(1e-6));
        let l = k
            .cholesky()
            .map_err(|e| FitError::Numerical(e.to_string()))?;
        self.alpha = l.solve_lower_transpose(&l.solve_lower(&self.ys_z));
        self.chol = Some(l);
        Ok(())
    }

    /// Test-only baseline: land raw points into the training set (same
    /// standardization `append` applies) without touching the factor, so
    /// a follow-up [`refit`](Self::refit) is the from-scratch comparison.
    #[cfg(test)]
    fn append_for_test_raw(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let ystd = self.ystd.expect("fitted");
        for (xj, &yj) in x.iter().zip(y) {
            self.xs.push(self.std.transform(xj));
            self.ys_z.push(ystd.transform(yj));
        }
    }
}

impl Default for GaussianProcess {
    fn default() -> Self {
        Self::default_rbf()
    }
}

pub(crate) fn stride_subsample<T: Clone>(v: &[T], cap: usize) -> Vec<T> {
    if v.len() <= cap {
        return v.to_vec();
    }
    let stride = v.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| v[(i as f64 * stride) as usize].clone())
        .collect()
}

// The full fitted state (training subsample, Cholesky factor, alpha
// weights, standardizers, selected hyper-parameters) is persisted, so a
// restored GP predicts bit-identically without re-running the O(n^3)
// fit or the hyper-parameter grid search.
impl Snapshot for GaussianProcess {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.lengthscale_factors);
        w.put_f64s(&self.noise_grid);
        w.put_usize(self.max_train);
        w.put_usize(self.max_hyper);
        self.std.snapshot(w);
        match self.ystd {
            Some(y) => {
                w.put_bool(true);
                y.snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.xs.len());
        for x in &self.xs {
            w.put_f64s(x);
        }
        w.put_f64s(&self.ys_z);
        w.put_f64s(&self.alpha);
        match &self.chol {
            Some(l) => {
                w.put_bool(true);
                l.snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_f64(self.lengthscale);
        w.put_f64(self.noise);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let lengthscale_factors = r.take_f64s()?;
        let noise_grid = r.take_f64s()?;
        let max_train = r.take_usize()?;
        let max_hyper = r.take_usize()?;
        let std = Standardizer::restore(r)?;
        let ystd = if r.take_bool()? {
            Some(ScalarStandardizer::restore(r)?)
        } else {
            None
        };
        let n = r.take_usize()?;
        let xs = (0..n)
            .map(|_| r.take_f64s())
            .collect::<Result<Vec<_>, _>>()?;
        let ys_z = r.take_f64s()?;
        let alpha = r.take_f64s()?;
        if alpha.len() != xs.len() || ys_z.len() != xs.len() {
            return Err(PersistError::Malformed(format!(
                "gp: {} training points vs {} targets vs {} alpha weights",
                xs.len(),
                ys_z.len(),
                alpha.len()
            )));
        }
        let chol = if r.take_bool()? {
            Some(Matrix::restore(r)?)
        } else {
            None
        };
        Ok(GaussianProcess {
            lengthscale_factors,
            noise_grid,
            max_train,
            max_hyper,
            std,
            ystd,
            xs,
            ys_z,
            alpha,
            chol,
            lengthscale: r.take_f64()?,
            noise: r.take_f64()?,
        })
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        // Chaos hook: a deterministic stand-in for the real-world failure
        // mode (ill-conditioned kernel matrix → Cholesky breakdown).
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpFitFail) {
            return Err(FitError::Numerical("chaos: injected GP fit failure".into()));
        }
        let d = validate(x, y)?;
        self.std = Standardizer::fit(x);
        let xs_full = self.std.transform_all(x);
        let ystd = ScalarStandardizer::fit(y);
        let ys_full: Vec<f64> = y.iter().map(|&v| ystd.transform(v)).collect();
        self.ystd = Some(ystd);

        // Hyper-parameter selection by log marginal likelihood on a
        // subsample; the base lengthscale is sqrt(d) (typical pairwise
        // distance after standardization).
        if !self.lengthscale_factors.is_empty() {
            let xs_h = stride_subsample(&xs_full, self.max_hyper);
            let ys_h = stride_subsample(&ys_full, self.max_hyper);
            let base = (d as f64).sqrt();
            let mut best = f64::NEG_INFINITY;
            for &lf in &self.lengthscale_factors {
                for &nv in &self.noise_grid {
                    let lml = Self::log_marginal(&xs_h, &ys_h, lf * base, nv);
                    if lml > best {
                        best = lml;
                        self.lengthscale = lf * base;
                        self.noise = nv;
                    }
                }
            }
            if best == f64::NEG_INFINITY {
                return Err(FitError::Numerical(
                    "no hyper-parameter candidate yielded an SPD kernel".into(),
                ));
            }
        }

        // Final factorization on (up to max_train) points.
        let xs = stride_subsample(&xs_full, self.max_train);
        let ys = stride_subsample(&ys_full, self.max_train);
        let k = Self::kernel_matrix(&xs, self.lengthscale, self.noise.max(1e-6));
        let l = k
            .cholesky()
            .map_err(|e| FitError::Numerical(e.to_string()))?;
        self.alpha = l.solve_lower_transpose(&l.solve_lower(&ys));
        self.chol = Some(l);
        self.xs = xs;
        self.ys_z = ys;
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_with_variance(x).0
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.predict_batch(xs)
    }

    fn name(&self) -> &'static str {
        "GaussianProcess"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mse, r2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn smooth_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0]).sin() + 0.5 * (x[1] * 0.8).cos() + 0.3 * x[0])
            .collect();
        (xs, ys)
    }

    #[test]
    fn gp_interpolates_smooth_function() {
        let (xs, ys) = smooth_data(200, 0);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let (tx, ty) = smooth_data(50, 1);
        let preds = gp.predict(&tx);
        assert!(r2(&preds, &ty) > 0.95, "r2 {}", r2(&preds, &ty));
    }

    #[test]
    fn gp_beats_linear_on_nonlinear_target() {
        let (xs, ys) = smooth_data(200, 2);
        let (tx, ty) = smooth_data(80, 3);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let mut lin = super::super::linear::LinearRegression::new();
        lin.fit(&xs, &ys).unwrap();
        assert!(mse(&gp.predict(&tx), &ty) < mse(&lin.predict(&tx), &ty));
    }

    #[test]
    fn variance_small_at_training_points_larger_far_away() {
        let (xs, ys) = smooth_data(100, 4);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let (_, var_near) = gp.predict_with_variance(&xs[0]);
        let (_, var_far) = gp.predict_with_variance(&[100.0, -100.0]);
        assert!(var_far > var_near, "{var_far} !> {var_near}");
    }

    #[test]
    fn fixed_hyperparams_skip_grid() {
        let (xs, ys) = smooth_data(50, 5);
        let mut gp = GaussianProcess::with_hyperparams(1.5, 1e-3);
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.lengthscale(), 1.5);
        assert_eq!(gp.noise(), 1e-3);
    }

    #[test]
    fn subsampling_caps_training_size() {
        let (xs, ys) = smooth_data(300, 6);
        let mut gp = GaussianProcess::default_rbf().with_max_train(64);
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.xs.len(), 64);
        // Still a sensible predictor.
        let preds = gp.predict(&xs);
        assert!(r2(&preds, &ys) > 0.8);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let gp = GaussianProcess::default_rbf();
        assert_eq!(gp.predict_one(&[1.0, 2.0]), 0.0);
        assert_eq!(gp.predict_batch(&[vec![1.0, 2.0]]), vec![0.0]);
    }

    /// Incremental Cholesky appends must agree with a frozen-parameter
    /// full refactorization to 1e-8 — means, variances, and the factor
    /// itself.
    #[test]
    fn incremental_append_matches_full_refit() {
        let (xs, ys) = smooth_data(260, 20);
        // Fit on the first 100, then append the rest in chunks of 40.
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs[..100], &ys[..100]).unwrap();
        let mut full = gp.clone();
        for start in (100..260).step_by(40) {
            let end = (start + 40).min(260);
            gp.append(&xs[start..end], &ys[start..end]).unwrap();
            // Baseline strategy: land the same points, refactorize fully.
            full.append_for_test_raw(&xs[start..end], &ys[start..end]);
            full.refit().unwrap();
        }
        assert_eq!(gp.train_len(), 260);
        assert_eq!(full.train_len(), 260);
        let la = gp.chol.as_ref().unwrap();
        let lb = full.chol.as_ref().unwrap();
        for (a, b) in la.data().iter().zip(lb.data()) {
            assert!((a - b).abs() < 1e-8, "factor entries {a} vs {b}");
        }
        let (tx, _) = smooth_data(40, 21);
        for x in &tx {
            let (ma, va) = gp.predict_with_variance(x);
            let (mb, vb) = full.predict_with_variance(x);
            assert!((ma - mb).abs() < 1e-8, "mean {ma} vs {mb}");
            assert!((va - vb).abs() < 1e-8, "var {va} vs {vb}");
        }
    }

    #[test]
    fn append_on_unfitted_model_fits() {
        let (xs, ys) = smooth_data(60, 22);
        let mut gp = GaussianProcess::default_rbf();
        gp.append(&xs, &ys).unwrap();
        assert_eq!(gp.train_len(), 60);
        let preds = gp.predict(&xs);
        assert!(r2(&preds, &ys) > 0.9);
    }

    #[test]
    fn append_respects_max_train_cap() {
        let (xs, ys) = smooth_data(120, 23);
        let mut gp = GaussianProcess::default_rbf().with_max_train(80);
        gp.fit(&xs[..60], &ys[..60]).unwrap();
        gp.append(&xs[60..], &ys[60..]).unwrap();
        assert_eq!(gp.train_len(), 80, "points beyond the cap are dropped");
        // Still consistent: alpha/chol/xs all sized together.
        let _ = gp.predict_with_variance(&xs[0]);
    }

    /// A duplicated training point makes the appended pivot collapse
    /// toward the noise floor; the append must survive (directly or via
    /// the refit fallback) and keep predicting.
    #[test]
    fn append_duplicate_points_stays_finite() {
        let (xs, ys) = smooth_data(50, 24);
        let mut gp = GaussianProcess::with_hyperparams(1.0, 1e-4);
        gp.fit(&xs, &ys).unwrap();
        let dup_x: Vec<Vec<f64>> = vec![xs[0].clone(), xs[0].clone(), xs[0].clone()];
        let dup_y = vec![ys[0], ys[0], ys[0]];
        gp.append(&dup_x, &dup_y).unwrap();
        let (m, v) = gp.predict_with_variance(&xs[0]);
        assert!(m.is_finite() && v.is_finite() && v > 0.0);
    }

    /// Batch-variance API must agree exactly with the per-point path —
    /// they share one code path by construction.
    #[test]
    fn batch_variance_matches_per_point() {
        let (xs, ys) = smooth_data(150, 25);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let (tx, _) = smooth_data(33, 26);
        let batch = gp.predict_batch_with_variance(&tx);
        assert_eq!(batch.len(), tx.len());
        for (x, &(bm, bv)) in tx.iter().zip(&batch) {
            let (m, v) = gp.predict_with_variance(x);
            assert_eq!(m.to_bits(), bm.to_bits(), "mean {m} vs {bm}");
            assert_eq!(v.to_bits(), bv.to_bits(), "var {v} vs {bv}");
        }
    }

    #[test]
    fn unfitted_batch_variance_is_prior() {
        let gp = GaussianProcess::default_rbf();
        assert_eq!(
            gp.predict_batch_with_variance(&[vec![0.0, 0.0]]),
            vec![(0.0, 1.0)]
        );
    }

    #[test]
    fn snapshot_roundtrips_appended_state() {
        use yoso_persist::{ByteReader, ByteWriter};
        let (xs, ys) = smooth_data(120, 27);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs[..80], &ys[..80]).unwrap();
        gp.append(&xs[80..], &ys[80..]).unwrap();
        let mut w = ByteWriter::new();
        gp.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = GaussianProcess::restore(&mut ByteReader::new(&bytes)).unwrap();
        let (tx, tys) = smooth_data(20, 28);
        for x in &tx {
            let (m0, v0) = gp.predict_with_variance(x);
            let (m1, v1) = back.predict_with_variance(x);
            assert_eq!(m0.to_bits(), m1.to_bits());
            assert_eq!(v0.to_bits(), v1.to_bits());
        }
        // The restored model can keep appending (ys_z round-tripped).
        back.append(&tx, &tys).unwrap();
        assert_eq!(back.train_len(), gp.train_len() + tx.len());
    }

    #[test]
    fn predict_batch_matches_predict_one() {
        let (xs, ys) = smooth_data(200, 7);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        // 97 queries: not a multiple of either block edge, so partial
        // query and training tiles are both exercised.
        let (tx, _) = smooth_data(97, 8);
        let batch = gp.predict_batch(&tx);
        assert_eq!(batch.len(), tx.len());
        for (x, &b) in tx.iter().zip(&batch) {
            let one = gp.predict_one(x);
            assert!((one - b).abs() <= 1e-9, "batch {b} vs one-at-a-time {one}");
        }
    }
}
