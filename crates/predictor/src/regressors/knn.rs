//! k-nearest-neighbour regression.

use super::{validate, FitError, Regressor};
use crate::linalg::sq_dist;
use crate::standardize::Standardizer;

/// k-NN regressor with inverse-distance weighting over standardized
/// features.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    std: Standardizer,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl Knn {
    /// Creates an unfitted k-NN model.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Knn {
            k,
            std: Standardizer::default(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }
}

impl Regressor for Knn {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        validate(x, y)?;
        self.std = Standardizer::fit(x);
        self.xs = self.std.transform_all(x);
        self.ys = y.to_vec();
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let q = self.std.transform(x);
        // Partial selection of the k nearest.
        let mut dists: Vec<(f64, f64)> = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(xi, &yi)| (sq_dist(&q, xi), yi))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k.saturating_sub(1), |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let neigh = &dists[..k];
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d, y) in neigh {
            let w = 1.0 / (d.sqrt() + 1e-9);
            num += w * y;
            den += w;
        }
        num / den
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_training_points() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let mut m = Knn::new(1);
        m.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((m.predict_one(x) - y).abs() < 1e-6);
        }
    }

    #[test]
    fn interpolates_smoothly() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let mut m = Knn::new(3);
        m.fit(&xs, &ys).unwrap();
        let p = m.predict_one(&[1.3]);
        assert!((p - 1.3f64.sin()).abs() < 0.05, "{p}");
    }

    #[test]
    fn k_larger_than_dataset_ok() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0, 10.0];
        let mut m = Knn::new(10);
        m.fit(&xs, &ys).unwrap();
        let p = m.predict_one(&[0.5]);
        assert!(p > 0.0 && p < 10.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::new(0);
    }
}
