//! Ordinary least squares and ridge regression (normal equations).

use super::{validate, FitError, Regressor};
use crate::linalg::Matrix;
use crate::standardize::Standardizer;

fn fit_normal_equations(
    x: &[Vec<f64>],
    y: &[f64],
    lambda: f64,
) -> Result<(Standardizer, Vec<f64>, f64), FitError> {
    let d = validate(x, y)?;
    let std = Standardizer::fit(x);
    let xs = std.transform_all(x);
    let n = xs.len();
    // Design matrix with intercept column.
    let mut data = Vec::with_capacity(n * (d + 1));
    for row in &xs {
        data.extend_from_slice(row);
        data.push(1.0);
    }
    let design = Matrix::from_vec(n, d + 1, data);
    let mut gram = design.gram();
    // Ridge penalty (not applied to the intercept); a tiny jitter keeps
    // plain OLS well-posed on collinear features.
    let eff = lambda.max(1e-8);
    for i in 0..d {
        gram[(i, i)] += eff;
    }
    gram[(d, d)] += 1e-8;
    let rhs = design.t_matvec(y);
    let w = gram
        .solve_spd(&rhs)
        .map_err(|e| FitError::Numerical(e.to_string()))?;
    let bias = w[d];
    Ok((std, w[..d].to_vec(), bias))
}

/// Ordinary least-squares linear regression with intercept.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    std: Standardizer,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted weights (standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let (std, w, b) = fit_normal_equations(x, y, 0.0)?;
        self.std = std;
        self.weights = w;
        self.bias = b;
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let xs = self.std.transform(x);
        xs.iter()
            .zip(&self.weights)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.bias
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

/// Ridge regression (L2-regularized linear model).
#[derive(Debug, Clone)]
pub struct Ridge {
    lambda: f64,
    std: Standardizer,
    weights: Vec<f64>,
    bias: f64,
}

impl Ridge {
    /// Creates an unfitted ridge model with penalty `lambda`.
    pub fn new(lambda: f64) -> Self {
        Ridge {
            lambda,
            std: Standardizer::default(),
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let (std, w, b) = fit_normal_equations(x, y, self.lambda)?;
        self.std = std;
        self.weights = w;
        self.bias = b;
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let xs = self.std.transform(x);
        xs.iter()
            .zip(&self.weights)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.bias
    }

    fn name(&self) -> &'static str {
        "Ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        (xs, ys)
    }

    #[test]
    fn ols_recovers_linear_function() {
        let (xs, ys) = linear_data();
        let mut m = LinearRegression::new();
        m.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!(
                (m.predict_one(x) - y).abs() < 1e-6,
                "{} vs {}",
                m.predict_one(x),
                y
            );
        }
    }

    #[test]
    fn ridge_shrinks_but_stays_close() {
        let (xs, ys) = linear_data();
        let mut m = Ridge::new(1.0);
        m.fit(&xs, &ys).unwrap();
        let preds = m.predict(&xs);
        let err = crate::metrics::mse(&preds, &ys);
        assert!(err < 25.0, "mse {err}");
    }

    #[test]
    fn fit_on_empty_fails() {
        let mut m = LinearRegression::new();
        assert!(m.fit(&[], &[]).is_err());
    }

    #[test]
    fn handles_collinear_features() {
        // x2 = 2*x1: OLS with jitter must not blow up.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let mut m = LinearRegression::new();
        m.fit(&xs, &ys).unwrap();
        let preds = m.predict(&xs);
        assert!(crate::metrics::mse(&preds, &ys) < 1e-4);
    }
}
