//! CART regression tree (variance-reduction splits).

use super::{validate, FitError, Regressor};

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    root: Option<Node>,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples_split: min_samples_split.max(2),
            root: None,
        }
    }

    /// Depth of the fitted tree (0 when unfitted or a single leaf).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map_or(0, d)
    }

    /// Fits on index subsets with an optional feature mask — used directly
    /// by the random forest.
    pub(crate) fn fit_indices(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        features: &[usize],
    ) {
        self.root = Some(build(
            x,
            y,
            indices,
            features,
            self.max_depth,
            self.min_samples_split,
        ));
    }
}

fn mean(y: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn build(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    features: &[usize],
    depth: usize,
    min_split: usize,
) -> Node {
    if depth == 0 || indices.len() < min_split {
        return Node::Leaf {
            value: mean(y, indices),
        };
    }
    // Find the split minimizing weighted child variance.
    let parent_mean = mean(y, indices);
    let parent_sse: f64 = indices
        .iter()
        .map(|&i| (y[i] - parent_mean) * (y[i] - parent_mean))
        .sum();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut sorted = indices.to_vec();
    for &f in features {
        sorted.sort_by(|&a, &b| {
            x[a][f]
                .partial_cmp(&x[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Prefix sums over the sorted order for O(n) split evaluation.
        let n = sorted.len();
        let mut pre_sum = 0.0;
        let mut pre_sq = 0.0;
        let total_sum: f64 = sorted.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = sorted.iter().map(|&i| y[i] * y[i]).sum();
        for split in 1..n {
            let i = sorted[split - 1];
            pre_sum += y[i];
            pre_sq += y[i] * y[i];
            // Skip non-separating thresholds (equal feature values).
            if x[sorted[split - 1]][f] == x[sorted[split]][f] {
                continue;
            }
            let nl = split as f64;
            let nr = (n - split) as f64;
            let sse_l = pre_sq - pre_sum * pre_sum / nl;
            let suf_sum = total_sum - pre_sum;
            let suf_sq = total_sq - pre_sq;
            let sse_r = suf_sq - suf_sum * suf_sum / nr;
            let sse = sse_l + sse_r;
            if best.as_ref().is_none_or(|b| sse < b.2) {
                let thr = 0.5 * (x[sorted[split - 1]][f] + x[sorted[split]][f]);
                best = Some((f, thr, sse));
            }
        }
    }
    match best {
        Some((f, thr, sse)) if sse < parent_sse - 1e-12 => {
            let (l, r): (Vec<usize>, Vec<usize>) = indices.iter().partition(|&&i| x[i][f] <= thr);
            if l.is_empty() || r.is_empty() {
                return Node::Leaf { value: parent_mean };
            }
            Node::Split {
                feature: f,
                threshold: thr,
                left: Box::new(build(x, y, &l, features, depth - 1, min_split)),
                right: Box::new(build(x, y, &r, features, depth - 1, min_split)),
            }
        }
        _ => Node::Leaf { value: parent_mean },
    }
}

fn eval(node: &Node, x: &[f64]) -> f64 {
    match node {
        Node::Leaf { value } => *value,
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if x[*feature] <= *threshold {
                eval(left, x)
            } else {
                eval(right, x)
            }
        }
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let d = validate(x, y)?;
        let indices: Vec<usize> = (0..x.len()).collect();
        let features: Vec<usize> = (0..d).collect();
        self.fit_indices(x, y, &indices, &features);
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        self.root.as_ref().map_or(0.0, |r| eval(r, x))
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function_exactly() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTree::new(3, 2);
        t.fit(&xs, &ys).unwrap();
        assert_eq!(t.predict_one(&[5.0]), 1.0);
        assert_eq!(t.predict_one(&[30.0]), 5.0);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn respects_max_depth_zero() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut t = DecisionTree::new(0, 2);
        t.fit(&xs, &ys).unwrap();
        assert_eq!(t.depth(), 0);
        assert!((t.predict_one(&[0.0]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn constant_targets_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0; 10];
        let mut t = DecisionTree::new(5, 2);
        t.fit(&xs, &ys).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_one(&[100.0]), 3.0);
    }

    #[test]
    fn multifeature_split() {
        // y depends only on feature 1.
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i / 20) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[1] * 10.0).collect();
        let mut t = DecisionTree::new(4, 2);
        t.fit(&xs, &ys).unwrap();
        assert!((t.predict_one(&[3.0, 0.0]) - 0.0).abs() < 1e-9);
        assert!((t.predict_one(&[3.0, 1.0]) - 10.0).abs() < 1e-9);
    }
}
