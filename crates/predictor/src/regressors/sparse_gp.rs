//! Sparse Gaussian-process regression: the subset-of-regressors (SoR)
//! approximation with `m` inducing points.
//!
//! The exact GP in [`super::gp`] is O(n³) to fit and O(n) per predictive
//! mean; at the observation volumes a served multi-tenant daemon
//! accumulates it hits a wall. SoR projects the posterior onto `m ≪ n`
//! inducing points `Z` (a deterministic stride subsample of the training
//! set): with `A = σ²·K_mm + K_mn·K_nm` and `b = K_mn·y`,
//!
//! ```text
//! mean(q)  = k_m(q)ᵀ · A⁻¹ · b
//! var(q)   = σ² · k_m(q)ᵀ · A⁻¹ · k_m(q)
//! ```
//!
//! Fit costs O(n·m²), prediction O(m) per query, and
//! [`append`](SparseGaussianProcess::append) is a rank-1 Cholesky update
//! of `A` per point — O(m²), independent of how many observations have
//! ever been absorbed. The price is the usual SoR caveat: predictive
//! variance *decays* away from the inducing set instead of reverting to
//! the prior, so this model is for mean prediction at scale, not for
//! exploration bonuses far outside the data.
//!
//! Hyper-parameters are selected exactly like the exact GP (log marginal
//! likelihood grid on a small subsample), so the two models agree on
//! kernel geometry and the sparse-vs-exact regression harness compares
//! approximation error only.

use super::gp::{stride_subsample, GaussianProcess};
use super::{validate, FitError, Regressor};
use crate::linalg::{sq_dist, Matrix};
use crate::standardize::{ScalarStandardizer, Standardizer};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Diagonal jitter added to `K_mm` before forming `A`, keeping the
/// factorization SPD when inducing points nearly coincide.
const JITTER: f64 = 1e-8;

/// Subset-of-regressors sparse GP with an RBF kernel.
#[derive(Debug, Clone)]
pub struct SparseGaussianProcess {
    lengthscale_factors: Vec<f64>,
    noise_grid: Vec<f64>,
    /// Number of inducing points (the `m` in O(n·m²)).
    max_inducing: usize,
    /// Cap on subsample size used for hyper-parameter selection.
    max_hyper: usize,
    // Fitted state.
    std: Standardizer,
    ystd: Option<ScalarStandardizer>,
    /// Inducing points in standardized feature space, frozen at fit.
    inducing: Vec<Vec<f64>>,
    /// Cholesky factor of `A = σ²·(K_mm + jitter·I) + K_mn·K_nm`.
    chol_a: Option<Matrix>,
    /// `b = K_mn · y_z`, maintained incrementally by `append`.
    b: Vec<f64>,
    /// `w = A⁻¹ · b`, re-derived after every fit/append.
    w: Vec<f64>,
    /// Observations absorbed so far (unbounded — nothing is dropped).
    n_train: usize,
    lengthscale: f64,
    noise: f64,
}

impl SparseGaussianProcess {
    /// The default configuration: 256 inducing points, the exact GP's
    /// hyper-parameter grids.
    pub fn default_rbf() -> Self {
        SparseGaussianProcess {
            lengthscale_factors: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            noise_grid: vec![1e-4, 1e-3, 1e-2, 1e-1],
            max_inducing: 256,
            max_hyper: 300,
            std: Standardizer::default(),
            ystd: None,
            inducing: Vec::new(),
            chol_a: None,
            b: Vec::new(),
            w: Vec::new(),
            n_train: 0,
            lengthscale: 1.0,
            noise: 1e-2,
        }
    }

    /// Builds a sparse GP with fixed lengthscale/noise (no grid search).
    pub fn with_hyperparams(lengthscale: f64, noise: f64) -> Self {
        SparseGaussianProcess {
            lengthscale_factors: vec![],
            noise_grid: vec![],
            lengthscale,
            noise,
            ..Self::default_rbf()
        }
    }

    /// Overrides the inducing-point budget (larger = slower, closer to
    /// exact).
    pub fn with_max_inducing(mut self, m: usize) -> Self {
        self.max_inducing = m.max(2);
        self
    }

    /// Fitted lengthscale.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// Fitted noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Observations absorbed so far (fit + appends; nothing is dropped).
    pub fn train_len(&self) -> usize {
        self.n_train
    }

    /// Number of inducing points in the fitted model.
    pub fn inducing_len(&self) -> usize {
        self.inducing.len()
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        (-sq_dist(a, b) / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    /// Cross-kernel vector `k_m(x)` of a standardized point against the
    /// inducing set.
    fn k_inducing(&self, xz: &[f64]) -> Vec<f64> {
        self.inducing.iter().map(|z| self.kernel(xz, z)).collect()
    }

    /// Recomputes `w = A⁻¹ b` from the current factor — two O(m²)
    /// triangular solves.
    fn refresh_weights(&mut self) {
        let l = self.chol_a.as_ref().expect("fitted");
        self.w = l.solve_lower_transpose(&l.solve_lower(&self.b));
    }

    /// Standardized-space mean and variance for one standardized query.
    /// The single code path both variance APIs share.
    fn mean_var_z(&self, kv: &[f64]) -> (f64, f64) {
        let mean_z: f64 = kv.iter().zip(&self.w).map(|(k, w)| k * w).sum();
        let var_z = match &self.chol_a {
            Some(l) => {
                let v = l.solve_lower(kv);
                (self.noise.max(1e-6) * v.iter().map(|x| x * x).sum::<f64>()).max(1e-12)
            }
            None => 1.0,
        };
        (mean_z, var_z)
    }

    /// Predictive mean and variance for one point (raw target space).
    pub fn predict_with_variance(&self, x: &[f64]) -> (f64, f64) {
        let Some(ystd) = self.ystd else {
            return (0.0, 1.0);
        };
        let q = self.std.transform(x);
        let (mean_z, var_z) = self.mean_var_z(&self.k_inducing(&q));
        let scale = ystd.inverse(1.0) - ystd.inverse(0.0);
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpPredictNan) {
            return (f64::NAN, f64::NAN);
        }
        (ystd.inverse(mean_z), var_z * scale * scale)
    }

    /// Predictive means and variances for a batch of points (raw target
    /// space); bit-identical to the per-point path.
    pub fn predict_batch_with_variance(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let Some(ystd) = self.ystd else {
            return vec![(0.0, 1.0); xs.len()];
        };
        let _span = yoso_trace::span("sparse_gp.predict_batch_with_variance");
        if yoso_trace::enabled() {
            yoso_trace::counter_add("sparse_gp.variance_batches", 1);
            yoso_trace::counter_add("sparse_gp.variance_points", xs.len() as u64);
        }
        let scale = ystd.inverse(1.0) - ystd.inverse(0.0);
        xs.iter()
            .map(|x| {
                let q = self.std.transform(x);
                let (mean_z, var_z) = self.mean_var_z(&self.k_inducing(&q));
                if yoso_chaos::armed()
                    && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpPredictNan)
                {
                    return (f64::NAN, f64::NAN);
                }
                (ystd.inverse(mean_z), var_z * scale * scale)
            })
            .collect()
    }

    /// Predictive means for a batch of points (raw target space) — O(m)
    /// per query, independent of how many observations were absorbed.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let Some(ystd) = self.ystd else {
            return vec![0.0; xs.len()];
        };
        let _span = yoso_trace::span("sparse_gp.predict_batch");
        if yoso_trace::enabled() {
            yoso_trace::counter_add("sparse_gp.batches", 1);
            yoso_trace::counter_add("sparse_gp.points", xs.len() as u64);
        }
        xs.iter()
            .map(|x| {
                let q = self.std.transform(x);
                let mean_z: f64 = self
                    .inducing
                    .iter()
                    .zip(&self.w)
                    .map(|(z, w)| self.kernel(&q, z) * w)
                    .sum();
                if yoso_chaos::armed()
                    && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpPredictNan)
                {
                    return f64::NAN;
                }
                ystd.inverse(mean_z)
            })
            .collect()
    }

    /// Absorbs new training points with a rank-1 Cholesky update of `A`
    /// per point — O(m²) each, no cap, nothing dropped.
    ///
    /// Hyper-parameters, both standardizers, and the **inducing set** are
    /// frozen at their values from the last full [`fit`](Regressor::fit);
    /// re-selecting any of them would invalidate the cached factor, so
    /// those changes must go through `fit`. On an unfitted model this
    /// delegates to `fit`.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] on dimension mismatch (or the injected chaos
    /// fault).
    pub fn append(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpFitFail) {
            return Err(FitError::Numerical(
                "chaos: injected sparse GP append failure".into(),
            ));
        }
        if self.ystd.is_none() || self.chol_a.is_none() {
            return self.fit(x, y);
        }
        validate(x, y)?;
        if yoso_trace::enabled() {
            yoso_trace::counter_add("sparse_gp.appends", 1);
            yoso_trace::counter_add("sparse_gp.append_points", x.len() as u64);
        }
        let ystd = self.ystd.expect("checked above");
        let mut l = self.chol_a.take().expect("checked above");
        for (xj, &yj) in x.iter().zip(y) {
            let xz = self.std.transform(xj);
            let k = self.k_inducing(&xz);
            let yz = ystd.transform(yj);
            for (bi, ki) in self.b.iter_mut().zip(&k) {
                *bi += ki * yz;
            }
            chol_rank1_update(&mut l, k);
            self.n_train += 1;
        }
        self.chol_a = Some(l);
        self.refresh_weights();
        Ok(())
    }

    /// Test-only baseline: rebuilds `A` and `b` from scratch over the
    /// given *complete* raw training set with frozen hyper-parameters,
    /// standardizers, and inducing set — the from-scratch comparison the
    /// rank-1 `append` path is validated against.
    #[cfg(test)]
    fn refit_from_raw(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let ystd = self.ystd.expect("fitted");
        let xs_z = self.std.transform_all(x);
        let ys_z: Vec<f64> = y.iter().map(|&v| ystd.transform(v)).collect();
        let (a, b) = self.build_normal_equations(&xs_z, &ys_z);
        let l = a
            .cholesky()
            .map_err(|e| FitError::Numerical(e.to_string()))?;
        self.chol_a = Some(l);
        self.b = b;
        self.n_train = x.len();
        self.refresh_weights();
        Ok(())
    }

    /// Forms `A = σ²·(K_mm + jitter·I) + K_mn·K_nm` and `b = K_mn·y`
    /// from standardized data, streaming one training column at a time
    /// (the n×m cross-kernel matrix is never materialized).
    fn build_normal_equations(&self, xs_z: &[Vec<f64>], ys_z: &[f64]) -> (Matrix, Vec<f64>) {
        let m = self.inducing.len();
        let noise_eff = self.noise.max(1e-6);
        let kmm = GaussianProcess::kernel_matrix(&self.inducing, self.lengthscale, JITTER);
        let mut a = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                a[(i, j)] = noise_eff * kmm[(i, j)];
            }
        }
        let mut b = vec![0.0; m];
        for (xz, &yz) in xs_z.iter().zip(ys_z) {
            let k = self.k_inducing(xz);
            for i in 0..m {
                b[i] += k[i] * yz;
                for j in 0..=i {
                    let v = k[i] * k[j];
                    a[(i, j)] += v;
                    if i != j {
                        a[(j, i)] += v;
                    }
                }
            }
        }
        // `K_mn·K_nm` is numerically rank-deficient when inducing points
        // sit within a lengthscale of each other, and its entries dwarf
        // the σ²·K_mm term — so the ridge must scale with A's own
        // magnitude to keep the factorization SPD. The relative size
        // (1e-10 of the mean diagonal) is far below the model's
        // approximation error.
        let trace: f64 = (0..m).map(|i| a[(i, i)]).sum();
        let ridge = 1e-10 * (trace / m as f64).max(1.0);
        for i in 0..m {
            a[(i, i)] += ridge;
        }
        (a, b)
    }
}

/// In-place rank-1 Cholesky update: given lower-triangular `L` with
/// `L·Lᵀ = A`, rewrites it so `L·Lᵀ = A + x·xᵀ`. Positive updates are
/// unconditionally stable (every pivot grows), so this never fails —
/// unlike the exact GP's incremental row append, which can hit a
/// non-positive pivot and fall back to a refactorization.
fn chol_rank1_update(l: &mut Matrix, mut x: Vec<f64>) {
    let m = x.len();
    for k in 0..m {
        let lkk = l[(k, k)];
        let r = (lkk * lkk + x[k] * x[k]).sqrt();
        let c = r / lkk;
        let s = x[k] / lkk;
        l[(k, k)] = r;
        for i in k + 1..m {
            l[(i, k)] = (l[(i, k)] + s * x[i]) / c;
            x[i] = c * x[i] - s * l[(i, k)];
        }
    }
}

impl Default for SparseGaussianProcess {
    fn default() -> Self {
        Self::default_rbf()
    }
}

// The full fitted state is persisted so a restored model predicts
// bit-identically and can keep appending (b and the factor round-trip).
impl Snapshot for SparseGaussianProcess {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.lengthscale_factors);
        w.put_f64s(&self.noise_grid);
        w.put_usize(self.max_inducing);
        w.put_usize(self.max_hyper);
        self.std.snapshot(w);
        match self.ystd {
            Some(y) => {
                w.put_bool(true);
                y.snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.inducing.len());
        for z in &self.inducing {
            w.put_f64s(z);
        }
        match &self.chol_a {
            Some(l) => {
                w.put_bool(true);
                l.snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_f64s(&self.b);
        w.put_f64s(&self.w);
        w.put_usize(self.n_train);
        w.put_f64(self.lengthscale);
        w.put_f64(self.noise);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let lengthscale_factors = r.take_f64s()?;
        let noise_grid = r.take_f64s()?;
        let max_inducing = r.take_usize()?;
        let max_hyper = r.take_usize()?;
        let std = Standardizer::restore(r)?;
        let ystd = if r.take_bool()? {
            Some(ScalarStandardizer::restore(r)?)
        } else {
            None
        };
        let m = r.take_usize()?;
        let inducing = (0..m)
            .map(|_| r.take_f64s())
            .collect::<Result<Vec<_>, _>>()?;
        let chol_a = if r.take_bool()? {
            Some(Matrix::restore(r)?)
        } else {
            None
        };
        let b = r.take_f64s()?;
        let w = r.take_f64s()?;
        if b.len() != inducing.len() || w.len() != inducing.len() {
            return Err(PersistError::Malformed(format!(
                "sparse gp: {} inducing points vs {} b vs {} w entries",
                inducing.len(),
                b.len(),
                w.len()
            )));
        }
        Ok(SparseGaussianProcess {
            lengthscale_factors,
            noise_grid,
            max_inducing,
            max_hyper,
            std,
            ystd,
            inducing,
            chol_a,
            b,
            w,
            n_train: r.take_usize()?,
            lengthscale: r.take_f64()?,
            noise: r.take_f64()?,
        })
    }
}

impl Regressor for SparseGaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::GpFitFail) {
            return Err(FitError::Numerical(
                "chaos: injected sparse GP fit failure".into(),
            ));
        }
        let d = validate(x, y)?;
        self.std = Standardizer::fit(x);
        let xs_z = self.std.transform_all(x);
        let ystd = ScalarStandardizer::fit(y);
        let ys_z: Vec<f64> = y.iter().map(|&v| ystd.transform(v)).collect();
        self.ystd = Some(ystd);

        // Same hyper-parameter selection as the exact GP: log marginal
        // likelihood grid on a small subsample, base lengthscale sqrt(d).
        if !self.lengthscale_factors.is_empty() {
            let xs_h = stride_subsample(&xs_z, self.max_hyper);
            let ys_h = stride_subsample(&ys_z, self.max_hyper);
            let base = (d as f64).sqrt();
            let mut best = f64::NEG_INFINITY;
            for &lf in &self.lengthscale_factors {
                for &nv in &self.noise_grid {
                    let lml = GaussianProcess::log_marginal(&xs_h, &ys_h, lf * base, nv);
                    if lml > best {
                        best = lml;
                        self.lengthscale = lf * base;
                        self.noise = nv;
                    }
                }
            }
            if best == f64::NEG_INFINITY {
                return Err(FitError::Numerical(
                    "no hyper-parameter candidate yielded an SPD kernel".into(),
                ));
            }
        }

        self.inducing = stride_subsample(&xs_z, self.max_inducing);
        let (a, b) = self.build_normal_equations(&xs_z, &ys_z);
        let l = a
            .cholesky()
            .map_err(|e| FitError::Numerical(e.to_string()))?;
        self.chol_a = Some(l);
        self.b = b;
        self.n_train = x.len();
        self.refresh_weights();
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_with_variance(x).0
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.predict_batch(xs)
    }

    fn name(&self) -> &'static str {
        "SparseGaussianProcess"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mse, r2, spearman};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn smooth_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0]).sin() + 0.5 * (x[1] * 0.8).cos() + 0.3 * x[0])
            .collect();
        (xs, ys)
    }

    /// Shared harness for the sparse-vs-exact agreement gates: fits both
    /// models on identical data, then asserts that on held-out queries
    /// the two models (a) rank candidates near-identically and (b) differ
    /// by at most `max_gap_frac` of the target's standard deviation —
    /// a direct "within tolerance of exact" criterion that does not
    /// depend on how close to perfect the exact model happens to be.
    fn assert_agreement(n_train: usize, seed: u64, min_spearman: f64, max_gap_frac: f64) {
        let (xs, ys) = smooth_data(n_train, seed);
        let (tx, ty) = smooth_data(200, seed + 1);
        let mut exact = GaussianProcess::default_rbf();
        exact.fit(&xs, &ys).unwrap();
        let mut sparse = SparseGaussianProcess::default_rbf();
        sparse.fit(&xs, &ys).unwrap();
        let pe = exact.predict(&tx);
        let ps = sparse.predict(&tx);
        let rho = spearman(&pe, &ps);
        assert!(
            rho >= min_spearman,
            "sparse-vs-exact rank correlation {rho} < {min_spearman} at n={n_train}"
        );
        let mean_y = ty.iter().sum::<f64>() / ty.len() as f64;
        let std_y = (ty.iter().map(|y| (y - mean_y).powi(2)).sum::<f64>() / ty.len() as f64).sqrt();
        let gap = mse(&ps, &pe).sqrt();
        assert!(
            gap <= max_gap_frac * std_y,
            "sparse-vs-exact prediction gap rmse {gap} > {max_gap_frac} of target std {std_y} at n={n_train}"
        );
    }

    #[test]
    fn sparse_interpolates_smooth_function() {
        let (xs, ys) = smooth_data(400, 0);
        let mut gp = SparseGaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.train_len(), 400);
        assert_eq!(gp.inducing_len(), 256);
        let (tx, ty) = smooth_data(80, 1);
        let preds = gp.predict(&tx);
        assert!(r2(&preds, &ty) > 0.95, "r2 {}", r2(&preds, &ty));
    }

    #[test]
    fn sparse_agrees_with_exact_small() {
        // Fast tier-1 gate; the n=2k CI gate below is `#[ignore]`d.
        assert_agreement(400, 2, 0.95, 0.05);
    }

    /// The CI-gated agreement criterion from the issue: at n=2k the
    /// sparse model must stay within tolerance of the exact GP. Too slow
    /// for debug-mode tier-1 (`cargo test -q`); the CI surrogate job runs
    /// it with `--release -- --ignored`.
    #[test]
    #[ignore = "n=2k agreement gate: run in release via the CI surrogate job"]
    fn sparse_agrees_with_exact_at_2k() {
        assert_agreement(2000, 3, 0.95, 0.05);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let gp = SparseGaussianProcess::default_rbf();
        assert_eq!(gp.predict_one(&[1.0, 2.0]), 0.0);
        assert_eq!(gp.predict_batch(&[vec![1.0, 2.0]]), vec![0.0]);
        assert_eq!(
            gp.predict_batch_with_variance(&[vec![0.0, 0.0]]),
            vec![(0.0, 1.0)]
        );
    }

    #[test]
    fn fixed_hyperparams_skip_grid() {
        let (xs, ys) = smooth_data(50, 5);
        let mut gp = SparseGaussianProcess::with_hyperparams(1.5, 1e-3);
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.lengthscale(), 1.5);
        assert_eq!(gp.noise(), 1e-3);
    }

    /// Rank-1 appends must agree with rebuilding the normal equations
    /// from scratch over the full data (frozen inducing set and
    /// hyper-parameters) — the sparse analogue of the exact GP's
    /// incremental-vs-refit invariant.
    #[test]
    fn rank1_append_matches_full_rebuild() {
        let (xs, ys) = smooth_data(300, 20);
        let mut inc = SparseGaussianProcess::default_rbf().with_max_inducing(64);
        inc.fit(&xs[..150], &ys[..150]).unwrap();
        let mut full = inc.clone();
        for start in (150..300).step_by(50) {
            let end = (start + 50).min(300);
            inc.append(&xs[start..end], &ys[start..end]).unwrap();
        }
        full.refit_from_raw(&xs, &ys).unwrap();
        assert_eq!(inc.train_len(), 300);
        assert_eq!(full.train_len(), 300);
        let (tx, _) = smooth_data(40, 21);
        // Rank-1 updates and the from-scratch normal equations accumulate
        // rounding differently through the ill-conditioned m×m system, so
        // the comparison is relative, not bit-exact.
        for x in &tx {
            let (mi, vi) = inc.predict_with_variance(x);
            let (mf, vf) = full.predict_with_variance(x);
            assert!(
                (mi - mf).abs() < 1e-3 * mf.abs().max(1.0),
                "mean {mi} vs {mf}"
            );
            // Variance (a quadratic form through A⁻¹) amplifies the
            // conditioning worst of all, and the two paths also differ
            // in when the trace-scaled ridge was frozen — a ~10% drift
            // on these ~1e-5-magnitude variances is numerical, not a
            // logic divergence.
            assert!(
                (vi - vf).abs() < 0.15 * vf.abs().max(1e-9),
                "var {vi} vs {vf}"
            );
        }
    }

    #[test]
    fn append_on_unfitted_model_fits() {
        let (xs, ys) = smooth_data(60, 22);
        let mut gp = SparseGaussianProcess::default_rbf();
        gp.append(&xs, &ys).unwrap();
        assert_eq!(gp.train_len(), 60);
        let preds = gp.predict(&xs);
        assert!(r2(&preds, &ys) > 0.9);
    }

    /// Unlike the exact GP (which drops points past `max_train`), the
    /// sparse model absorbs everything — that is its reason to exist.
    #[test]
    fn append_has_no_cap() {
        let (xs, ys) = smooth_data(500, 23);
        let mut gp = SparseGaussianProcess::default_rbf().with_max_inducing(32);
        gp.fit(&xs[..100], &ys[..100]).unwrap();
        gp.append(&xs[100..], &ys[100..]).unwrap();
        assert_eq!(gp.train_len(), 500);
        assert_eq!(gp.inducing_len(), 32);
        let (m, v) = gp.predict_with_variance(&xs[0]);
        assert!(m.is_finite() && v.is_finite() && v > 0.0);
    }

    #[test]
    fn append_duplicate_points_stays_finite() {
        let (xs, ys) = smooth_data(50, 24);
        let mut gp = SparseGaussianProcess::with_hyperparams(1.0, 1e-4);
        gp.fit(&xs, &ys).unwrap();
        let dup_x: Vec<Vec<f64>> = vec![xs[0].clone(), xs[0].clone(), xs[0].clone()];
        let dup_y = vec![ys[0], ys[0], ys[0]];
        gp.append(&dup_x, &dup_y).unwrap();
        let (m, v) = gp.predict_with_variance(&xs[0]);
        assert!(m.is_finite() && v.is_finite() && v > 0.0);
    }

    #[test]
    fn batch_paths_match_per_point() {
        let (xs, ys) = smooth_data(150, 25);
        let mut gp = SparseGaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let (tx, _) = smooth_data(33, 26);
        let means = gp.predict_batch(&tx);
        let both = gp.predict_batch_with_variance(&tx);
        for ((x, &m), &(bm, bv)) in tx.iter().zip(&means).zip(&both) {
            let (m1, v1) = gp.predict_with_variance(x);
            assert_eq!(m1.to_bits(), bm.to_bits());
            assert_eq!(v1.to_bits(), bv.to_bits());
            assert!((m - m1).abs() < 1e-12, "batch mean {m} vs {m1}");
        }
    }

    #[test]
    fn snapshot_roundtrips_appended_state() {
        use yoso_persist::{ByteReader, ByteWriter};
        let (xs, ys) = smooth_data(120, 27);
        let mut gp = SparseGaussianProcess::default_rbf().with_max_inducing(48);
        gp.fit(&xs[..80], &ys[..80]).unwrap();
        gp.append(&xs[80..], &ys[80..]).unwrap();
        let mut w = ByteWriter::new();
        gp.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = SparseGaussianProcess::restore(&mut ByteReader::new(&bytes)).unwrap();
        let (tx, tys) = smooth_data(20, 28);
        for x in &tx {
            let (m0, v0) = gp.predict_with_variance(x);
            let (m1, v1) = back.predict_with_variance(x);
            assert_eq!(m0.to_bits(), m1.to_bits());
            assert_eq!(v0.to_bits(), v1.to_bits());
        }
        back.append(&tx, &tys).unwrap();
        assert_eq!(back.train_len(), gp.train_len() + tx.len());
    }
}
