//! Linear support-vector regression (ε-insensitive loss, SGD-trained).
//!
//! A seventh model family available for the Fig. 4 comparison; kept
//! simple (linear kernel) since the paper does not name its exact six
//! models beyond selecting the Gaussian process.

use super::{validate, FitError, Regressor};
use crate::standardize::{ScalarStandardizer, Standardizer};

/// Linear ε-SVR trained with subgradient descent.
#[derive(Debug, Clone)]
pub struct LinearSvr {
    epsilon: f64,
    c: f64,
    epochs: usize,
    lr: f64,
    std: Standardizer,
    ystd: Option<ScalarStandardizer>,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvr {
    /// Creates an unfitted SVR with tube width `epsilon` and box penalty
    /// `c`.
    pub fn new(epsilon: f64, c: f64) -> Self {
        LinearSvr {
            epsilon,
            c,
            epochs: 200,
            lr: 0.05,
            std: Standardizer::default(),
            ystd: None,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError> {
        let d = validate(x, y)?;
        self.std = Standardizer::fit(x);
        let xs = self.std.transform_all(x);
        let ystd = ScalarStandardizer::fit(y);
        let ys: Vec<f64> = y.iter().map(|&v| ystd.transform(v)).collect();
        self.ystd = Some(ystd);
        let n = xs.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let lambda = 1.0 / (self.c * n);
        for epoch in 0..self.epochs {
            let lr = self.lr / (1.0 + epoch as f64 * 0.05);
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (xi, &yi) in xs.iter().zip(&ys) {
                let pred: f64 = xi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + b;
                let err = pred - yi;
                let sg = if err > self.epsilon {
                    1.0
                } else if err < -self.epsilon {
                    -1.0
                } else {
                    0.0
                };
                if sg != 0.0 {
                    for (g, v) in gw.iter_mut().zip(xi) {
                        *g += sg * v;
                    }
                    gb += sg;
                }
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * (g / n + lambda * *wi);
            }
            b -= lr * gb / n;
        }
        self.weights = w;
        self.bias = b;
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let xs = self.std.transform(x);
        let z = xs
            .iter()
            .zip(&self.weights)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.bias;
        self.ystd.map_or(z, |s| s.inverse(z))
    }

    fn name(&self) -> &'static str {
        "SVR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mse, r2};

    #[test]
    fn fits_linear_function_approximately() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 1.0).collect();
        let mut m = LinearSvr::new(0.01, 10.0);
        m.fit(&xs, &ys).unwrap();
        let preds = m.predict(&xs);
        assert!(r2(&preds, &ys) > 0.95, "r2 {}", r2(&preds, &ys));
    }

    #[test]
    fn robust_to_outliers_vs_ols_spirit() {
        // ε-insensitive loss should not chase a single large outlier.
        let mut xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        xs.push(vec![5.0]);
        ys.push(500.0);
        let mut m = LinearSvr::new(0.1, 1.0);
        m.fit(&xs, &ys).unwrap();
        // Inliers are still fit reasonably.
        let inlier_preds: Vec<f64> = (0..50).map(|i| m.predict_one(&[i as f64 / 5.0])).collect();
        let inlier_truth: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
        assert!(mse(&inlier_preds, &inlier_truth) < 500.0);
    }

    #[test]
    fn empty_fit_errors() {
        let mut m = LinearSvr::new(0.1, 1.0);
        assert!(m.fit(&[], &[]).is_err());
    }
}
