//! The six regression families compared in Fig. 4 of the paper.
//!
//! Each model implements [`Regressor`]; the Gaussian process
//! ([`gp::GaussianProcess`]) is the one the paper selects (lowest MSE) as
//! the hardware performance predictor.

pub mod forest;
pub mod gp;
pub mod knn;
pub mod linear;
pub mod sparse_gp;
pub mod svr;
pub mod tree;

use std::fmt;

/// Error returned by [`Regressor::fit`] on degenerate training sets.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Feature rows had inconsistent dimensions.
    DimensionMismatch {
        /// Expected dimension (from the first row / targets).
        expected: usize,
        /// Offending dimension.
        got: usize,
    },
    /// A numerical failure (e.g. a singular system).
    Numerical(String),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => f.write_str("empty training set"),
            FitError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            FitError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for FitError {}

/// A trainable regression model `R^d -> R`.
pub trait Regressor {
    /// Fits the model on feature rows `x` and targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] on empty/ill-shaped data or numerical failure.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), FitError>;

    /// Predicts the target for one feature vector.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predicts a batch.
    fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Short human-readable model name (used in Fig. 4 output).
    fn name(&self) -> &'static str;
}

pub(crate) fn validate(x: &[Vec<f64>], y: &[f64]) -> Result<usize, FitError> {
    if x.is_empty() || y.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(FitError::DimensionMismatch {
            expected: x.len(),
            got: y.len(),
        });
    }
    let d = x[0].len();
    for row in x {
        if row.len() != d {
            return Err(FitError::DimensionMismatch {
                expected: d,
                got: row.len(),
            });
        }
    }
    Ok(d)
}

/// Builds all six Fig. 4 regressors with sensible defaults and a seed for
/// the stochastic ones.
pub fn fig4_models(seed: u64) -> Vec<Box<dyn Regressor + Send>> {
    vec![
        Box::new(linear::LinearRegression::new()),
        Box::new(linear::Ridge::new(1.0)),
        Box::new(knn::Knn::new(5)),
        Box::new(tree::DecisionTree::new(12, 4)),
        Box::new(forest::RandomForest::new(40, 12, 4, seed)),
        Box::new(gp::GaussianProcess::default_rbf()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_empty_and_mismatch() {
        assert_eq!(validate(&[], &[]), Err(FitError::EmptyTrainingSet));
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            validate(&x, &[1.0]),
            Err(FitError::DimensionMismatch { .. })
        ));
        let bad = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(matches!(
            validate(&bad, &[1.0, 2.0]),
            Err(FitError::DimensionMismatch { .. })
        ));
        assert_eq!(validate(&x, &[1.0, 2.0]), Ok(1));
    }

    #[test]
    fn fig4_has_six_models_with_unique_names() {
        let models = fig4_models(0);
        assert_eq!(models.len(), 6);
        let names: std::collections::HashSet<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(FitError::Numerical("x".into()).to_string().contains("x"));
    }
}
