//! Contract tests every regression family must satisfy, plus GP-specific
//! statistical properties.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yoso_predictor::metrics::{mse, r2};
use yoso_predictor::{fig4_models, GaussianProcess, Regressor};

fn smooth_dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            vec![
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] + x[1] * x[1] - 0.5 * x[2] + 0.3 * (x[0] * 3.0).sin())
        .collect();
    (xs, ys)
}

/// Every Fig. 4 model must (1) fit without error, (2) beat the
/// mean-predictor baseline on training data, (3) produce finite
/// predictions everywhere.
#[test]
fn all_models_beat_mean_predictor() {
    let (xs, ys) = smooth_dataset(250, 0);
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let baseline = mse(&vec![mean; ys.len()], &ys);
    for mut model in fig4_models(0) {
        model
            .fit(&xs, &ys)
            .unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        let preds = model.predict(&xs);
        assert!(preds.iter().all(|p| p.is_finite()), "{}", model.name());
        let err = mse(&preds, &ys);
        assert!(
            err < baseline * 0.9,
            "{} train MSE {err:.4} vs baseline {baseline:.4}",
            model.name()
        );
    }
}

/// All models generalize at least weakly (positive held-out R^2).
#[test]
fn all_models_generalize() {
    let (xs, ys) = smooth_dataset(300, 1);
    let (tx, ty) = smooth_dataset(100, 2);
    for mut model in fig4_models(1) {
        model.fit(&xs, &ys).unwrap();
        let preds = model.predict(&tx);
        let score = r2(&preds, &ty);
        assert!(score > 0.1, "{} held-out r2 {score:.3}", model.name());
    }
}

/// Refitting on the same data is idempotent (no hidden state leaks).
#[test]
fn refit_is_idempotent() {
    let (xs, ys) = smooth_dataset(120, 3);
    for mut model in fig4_models(2) {
        model.fit(&xs, &ys).unwrap();
        let a = model.predict_one(&xs[0]);
        model.fit(&xs, &ys).unwrap();
        let b = model.predict_one(&xs[0]);
        assert!(
            (a - b).abs() < 1e-9,
            "{}: {a} != {b} after refit",
            model.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The GP interpolates: at a training point, the prediction is close
    /// to the observed target (noise-level tolerance) and the predictive
    /// variance is small relative to far-away points.
    #[test]
    fn gp_interpolation(seed in 0u64..300) {
        let (xs, ys) = smooth_dataset(80, seed);
        let mut gp = GaussianProcess::default_rbf();
        gp.fit(&xs, &ys).unwrap();
        let span = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        for i in [0usize, 40, 79] {
            let p = gp.predict_one(&xs[i]);
            prop_assert!((p - ys[i]).abs() < 0.25 * span.max(1e-9),
                "pred {} vs target {} (span {})", p, ys[i], span);
        }
        let (_, var_in) = gp.predict_with_variance(&xs[0]);
        let (_, var_out) = gp.predict_with_variance(&[50.0, -50.0, 50.0]);
        prop_assert!(var_out > var_in);
    }

    /// Scaling targets by a constant scales GP predictions accordingly
    /// (standardization correctness).
    #[test]
    fn gp_equivariant_to_target_scaling(seed in 0u64..200, scale in 1.0f64..50.0) {
        let (xs, ys) = smooth_dataset(60, seed);
        let ys2: Vec<f64> = ys.iter().map(|v| v * scale).collect();
        let mut gp1 = GaussianProcess::with_hyperparams(1.5, 1e-3);
        let mut gp2 = GaussianProcess::with_hyperparams(1.5, 1e-3);
        gp1.fit(&xs, &ys).unwrap();
        gp2.fit(&xs, &ys2).unwrap();
        let q = [0.3, -0.4, 0.9];
        let (p1, p2) = (gp1.predict_one(&q), gp2.predict_one(&q));
        prop_assert!((p2 - p1 * scale).abs() < 1e-6 * (1.0 + p2.abs()),
            "{} vs {}", p2, p1 * scale);
    }
}
