//! Deterministic fault injection for chaos-testing the search stack.
//!
//! A [`FaultPlan`] is a seeded, serializable schedule of faults — worker
//! panics, simulator NaNs, GP fit failures, NaN rewards, slow evaluations —
//! that downstream crates consult through a global hook. The hook is
//! **zero-cost when disabled**: every instrumented site first checks
//! [`armed`], a single relaxed atomic load (the same pattern as
//! `yoso_trace::enabled`), so production runs with no plan installed pay
//! one predictable branch per site and allocate nothing.
//!
//! Injection decisions are deterministic functions of the plan seed and a
//! per-site opportunity index, never of wall-clock time or OS randomness,
//! so a failing chaos run can be replayed exactly from its plan file.
//! Sites that execute on pool worker threads additionally key decisions on
//! stable item indices (see [`should_fault_indexed`]) so the injected set
//! does not depend on thread interleaving.
//!
//! ```
//! use yoso_chaos::{FaultKind, FaultPlan, FaultRule};
//!
//! let _guard = yoso_chaos::test_lock();
//! let plan = FaultPlan::new(42).rule(FaultRule::at(FaultKind::NanReward, &[2]));
//! yoso_chaos::install(&plan);
//! assert!(!yoso_chaos::should_fault(FaultKind::NanReward)); // opportunity 0
//! assert!(!yoso_chaos::should_fault(FaultKind::NanReward)); // opportunity 1
//! assert!(yoso_chaos::should_fault(FaultKind::NanReward)); // opportunity 2
//! yoso_chaos::disarm();
//! assert!(!yoso_chaos::should_fault(FaultKind::NanReward));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// The failure modes the search stack knows how to inject and survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A pool worker closure panics mid-item (`yoso-pool`).
    WorkerPanic,
    /// The cycle-level simulator returns a non-finite report (`yoso-accel`).
    SimNan,
    /// A GP `fit`/`append` fails numerically (`yoso-predictor`).
    GpFitFail,
    /// A GP prediction goes non-finite, forcing per-query degradation.
    GpPredictNan,
    /// The scalar reward of a candidate becomes NaN (`yoso-core`).
    NanReward,
    /// An evaluation stalls for `delay_ms` before returning (`yoso-core`).
    SlowEval,
    /// A server connection is dropped mid-stream (`yoso-server`).
    ConnDrop,
    /// A wire frame is cut short after a prefix of its bytes
    /// (`yoso-server`), leaving the peer a truncated line.
    PartialWrite,
    /// A socket write stalls for `delay_ms` before completing
    /// (`yoso-server`), exercising deadlines and slow-consumer eviction.
    Stall,
    /// A garbage (non-protocol) line is injected into the stream ahead of
    /// the real frame (`yoso-server`), exercising decoder hardening.
    GarbageFrame,
}

const N_KINDS: usize = 10;

impl FaultKind {
    /// All kinds, in stable order.
    pub const ALL: [FaultKind; N_KINDS] = [
        FaultKind::WorkerPanic,
        FaultKind::SimNan,
        FaultKind::GpFitFail,
        FaultKind::GpPredictNan,
        FaultKind::NanReward,
        FaultKind::SlowEval,
        FaultKind::ConnDrop,
        FaultKind::PartialWrite,
        FaultKind::Stall,
        FaultKind::GarbageFrame,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::WorkerPanic => 0,
            FaultKind::SimNan => 1,
            FaultKind::GpFitFail => 2,
            FaultKind::GpPredictNan => 3,
            FaultKind::NanReward => 4,
            FaultKind::SlowEval => 5,
            FaultKind::ConnDrop => 6,
            FaultKind::PartialWrite => 7,
            FaultKind::Stall => 8,
            FaultKind::GarbageFrame => 9,
        }
    }

    /// Stable snake_case name used by the plan text format.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::SimNan => "sim_nan",
            FaultKind::GpFitFail => "gp_fit_fail",
            FaultKind::GpPredictNan => "gp_predict_nan",
            FaultKind::NanReward => "nan_reward",
            FaultKind::SlowEval => "slow_eval",
            FaultKind::ConnDrop => "conn_drop",
            FaultKind::PartialWrite => "partial_write",
            FaultKind::Stall => "stall",
            FaultKind::GarbageFrame => "garbage_frame",
        }
    }

    /// True for the kinds that carry a configurable stall duration, i.e.
    /// those whose `delay_ms` is meaningful and serialized by
    /// [`FaultPlan::to_text`].
    pub fn has_delay(self) -> bool {
        matches!(self, FaultKind::SlowEval | FaultKind::Stall)
    }

    /// Parses a [`FaultKind::name`] back into a kind.
    pub fn from_name(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injection rule: when and how often a [`FaultKind`] fires.
///
/// A rule fires at each explicitly listed opportunity index in `at`, and
/// additionally fires at random opportunities with probability `rate`
/// (drawn deterministically from the plan seed). `max_faults` caps the
/// total injections for the kind regardless of schedule. A rule with a
/// `scope` fires only on threads that declared the matching scope via
/// [`set_thread_scope`] — how a multi-tenant server faults one tenant's
/// jobs while jobs sharing the process stay untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Fault kind this rule injects.
    pub kind: FaultKind,
    /// Per-opportunity injection probability in `[0, 1]`.
    pub rate: f64,
    /// Explicit opportunity indices (0-based) at which to fire.
    pub at: Vec<u64>,
    /// Hard cap on injections for this kind (`u64::MAX` = unlimited).
    pub max_faults: u64,
    /// Stall duration for [`FaultKind::SlowEval`] / [`FaultKind::Stall`]
    /// injections.
    pub delay_ms: u64,
    /// When set, the rule applies only to threads whose
    /// [`set_thread_scope`] id equals this value.
    pub scope: Option<u64>,
}

impl FaultRule {
    /// Rule firing with probability `rate` at every opportunity.
    pub fn rate(kind: FaultKind, rate: f64) -> Self {
        FaultRule {
            kind,
            rate,
            at: Vec::new(),
            max_faults: u64::MAX,
            delay_ms: 1,
            scope: None,
        }
    }

    /// Rule firing exactly at the given opportunity indices.
    pub fn at(kind: FaultKind, indices: &[u64]) -> Self {
        FaultRule {
            kind,
            rate: 0.0,
            at: indices.to_vec(),
            max_faults: u64::MAX,
            delay_ms: 1,
            scope: None,
        }
    }

    /// Restricts this rule to threads with the given scope id (see
    /// [`set_thread_scope`] and [`scope_for`]).
    pub fn scope(mut self, id: u64) -> Self {
        self.scope = Some(id);
        self
    }

    /// Caps the total injections for this rule.
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    /// Sets the stall duration for [`FaultKind::SlowEval`] /
    /// [`FaultKind::Stall`].
    pub fn delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }
}

/// A seeded, serializable schedule of faults.
///
/// At most one rule per kind is active; installing a plan with duplicate
/// kinds keeps the last rule (documented last-wins semantics, checked by
/// tests). The empty plan is valid and injects nothing — arming it is how
/// the zero-overhead acceptance test measures hook cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic injection decisions.
    pub seed: u64,
    /// Active rules (last rule wins per kind).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Serializes the plan to the line-based text format parsed by
    /// [`FaultPlan::from_text`].
    pub fn to_text(&self) -> String {
        let mut s = String::from("# yoso-chaos fault plan\n");
        s.push_str(&format!("seed {}\n", self.seed));
        for r in &self.rules {
            s.push_str(&format!("fault {}", r.kind.name()));
            if r.rate > 0.0 {
                s.push_str(&format!(" rate {}", r.rate));
            }
            if !r.at.is_empty() {
                let list: Vec<String> = r.at.iter().map(|i| i.to_string()).collect();
                s.push_str(&format!(" at {}", list.join(",")));
            }
            if r.max_faults != u64::MAX {
                s.push_str(&format!(" max {}", r.max_faults));
            }
            if r.kind.has_delay() {
                s.push_str(&format!(" delay_ms {}", r.delay_ms));
            }
            if let Some(scope) = r.scope {
                s.push_str(&format!(" scope {scope}"));
            }
            s.push('\n');
        }
        s
    }

    /// Parses the text format:
    ///
    /// ```text
    /// # comment
    /// seed 42
    /// fault worker_panic rate 0.05 max 20
    /// fault nan_reward at 3,7,19
    /// fault slow_eval rate 0.1 delay_ms 5
    /// fault sim_nan rate 0.2 scope 12345
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`PlanParseError`] with the offending 1-based line number on
    /// unknown directives, unknown fault kinds, or malformed numbers.
    pub fn from_text(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let src = raw.split('#').next().unwrap_or("").trim();
            if src.is_empty() {
                continue;
            }
            let mut tokens = src.split_whitespace();
            match tokens.next() {
                Some("seed") => {
                    plan.seed = parse_num(line, tokens.next())?;
                }
                Some("fault") => {
                    let kind_tok = tokens
                        .next()
                        .ok_or_else(|| PlanParseError::new(line, "missing fault kind"))?;
                    let kind = FaultKind::from_name(kind_tok).ok_or_else(|| {
                        PlanParseError::new(line, format!("unknown fault kind `{kind_tok}`"))
                    })?;
                    let mut rule = FaultRule::rate(kind, 0.0);
                    while let Some(key) = tokens.next() {
                        let val = tokens.next();
                        match key {
                            "rate" => rule.rate = parse_num(line, val)?,
                            "max" => rule.max_faults = parse_num(line, val)?,
                            "delay_ms" => rule.delay_ms = parse_num(line, val)?,
                            "scope" => rule.scope = Some(parse_num(line, val)?),
                            "at" => {
                                let list = val.ok_or_else(|| {
                                    PlanParseError::new(line, "missing `at` index list")
                                })?;
                                for part in list.split(',') {
                                    rule.at.push(parse_num(line, Some(part))?);
                                }
                            }
                            other => {
                                return Err(PlanParseError::new(
                                    line,
                                    format!("unknown rule key `{other}`"),
                                ));
                            }
                        }
                    }
                    if !(0.0..=1.0).contains(&rule.rate) {
                        return Err(PlanParseError::new(
                            line,
                            format!("rate {} outside [0, 1]", rule.rate),
                        ));
                    }
                    plan.rules.push(rule);
                }
                Some(other) => {
                    return Err(PlanParseError::new(
                        line,
                        format!("unknown directive `{other}`"),
                    ));
                }
                None => unreachable!("empty lines are skipped"),
            }
        }
        Ok(plan)
    }

    /// Writes the text form to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_text().as_bytes())
    }

    /// Loads a plan from a text file written by [`FaultPlan::save`] (or by
    /// hand; see [`FaultPlan::from_text`] for the grammar).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; parse failures surface as
    /// [`io::ErrorKind::InvalidData`] with the line number in the message.
    pub fn load(path: impl AsRef<Path>) -> io::Result<FaultPlan> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        FaultPlan::from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, tok: Option<&str>) -> Result<T, PlanParseError> {
    let tok = tok.ok_or_else(|| PlanParseError::new(line, "missing numeric value"))?;
    tok.trim()
        .parse()
        .map_err(|_| PlanParseError::new(line, format!("malformed number `{tok}`")))
}

/// Parse failure for the plan text format.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl PlanParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        PlanParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaos plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

// ---------------------------------------------------------------------------
// Global hook state
// ---------------------------------------------------------------------------

/// Compiled form of an installed plan: per-kind thresholds and schedules.
struct Active {
    seed: u64,
    /// `rate` mapped onto the u64 hash range (0 = never).
    threshold: [u64; N_KINDS],
    /// Sorted explicit opportunity indices.
    at: [Vec<u64>; N_KINDS],
    /// Injection caps.
    max: [u64; N_KINDS],
    /// SlowEval stall duration.
    delay: [u64; N_KINDS],
    /// Per-kind scope restriction (`None` = applies to every thread).
    scope: [Option<u64>; N_KINDS],
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Active>> = RwLock::new(None);
static OPPORTUNITIES: [AtomicU64; N_KINDS] = [const { AtomicU64::new(0) }; N_KINDS];
static INJECTED: [AtomicU64; N_KINDS] = [const { AtomicU64::new(0) }; N_KINDS];
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests (and other exclusive users) of the global plan.
///
/// The hook state is process-global, so concurrently running tests that
/// [`install`] plans would interfere; every such test should hold this
/// guard for its duration. Lock poisoning (a panicking test) is ignored —
/// the next holder re-installs its own plan anyway.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// True when a plan is installed. A single relaxed atomic load — every
/// instrumented site checks this first, making the disabled path free of
/// locks, allocation, and hashing.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Installs `plan` globally and resets all opportunity/injection counters,
/// so repeated installs of the same plan replay the same schedule.
///
/// Rates are clamped into `[0, 1]`; for duplicate kinds the last rule wins.
pub fn install(plan: &FaultPlan) {
    let mut active = Active {
        seed: plan.seed,
        threshold: [0; N_KINDS],
        at: std::array::from_fn(|_| Vec::new()),
        max: [u64::MAX; N_KINDS],
        delay: [1; N_KINDS],
        scope: [None; N_KINDS],
    };
    for r in &plan.rules {
        let k = r.kind.index();
        let rate = r.rate.clamp(0.0, 1.0);
        // Map the probability onto the full u64 hash range; `rate >= 1.0`
        // must fire on every draw, which `(rate * 2^64) as u64` would not
        // (saturating cast still loses the top value).
        active.threshold[k] = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * (u64::MAX as f64)) as u64
        };
        active.at[k] = r.at.clone();
        active.at[k].sort_unstable();
        active.max[k] = r.max_faults;
        active.delay[k] = r.delay_ms;
        active.scope[k] = r.scope;
    }
    for c in OPPORTUNITIES.iter().chain(INJECTED.iter()) {
        c.store(0, Ordering::Relaxed);
    }
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(active);
    ARMED.store(true, Ordering::Relaxed);
}

/// Removes the installed plan. Counters are left readable for post-run
/// assertions ([`injected`], [`stats`]); the next [`install`] resets them.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
}

// ---------------------------------------------------------------------------
// Thread scopes
//
// A scope is a per-thread identity (typically one search job) that two
// things key off: scoped *rules* fire only on threads carrying the
// matching id, and scoped *threads* consume thread-local opportunity
// counters instead of the process-global ones. The latter is what makes
// serial-site injection deterministic per job on a multi-tenant server —
// with global counters, concurrent jobs would interleave opportunity
// indices nondeterministically. Scopes affect serial sites
// ([`should_fault`] and its wrappers); [`should_fault_indexed`] runs on
// pool worker threads, which never carry a scope, so scoped rules simply
// never fire there.

struct ScopeState {
    id: u64,
    opportunities: [u64; N_KINDS],
}

thread_local! {
    static THREAD_SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// Declares this thread's fault scope. `Some(id)` starts a fresh scope
/// with zeroed thread-local opportunity counters (so a job always begins
/// at opportunity 0, whatever ran on this thread before); `None` reverts
/// to the process-global counters.
pub fn set_thread_scope(scope: Option<u64>) {
    THREAD_SCOPE.with(|s| {
        *s.borrow_mut() = scope.map(|id| ScopeState {
            id,
            opportunities: [0; N_KINDS],
        });
    });
}

/// The scope id this thread declared, if any.
pub fn thread_scope() -> Option<u64> {
    THREAD_SCOPE.with(|s| s.borrow().as_ref().map(|state| state.id))
}

/// Stable scope id for a name (FNV-1a folded through SplitMix64) — the
/// shared convention by which a server and a plan author agree on a
/// tenant's scope id without coordinating.
pub fn scope_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// SplitMix64 finalizer — the same bijective mixer `yoso-pool` uses for
/// per-item seeds, giving well-distributed, platform-independent draws.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn draw(seed: u64, kind: usize, key: u64) -> u64 {
    splitmix64(splitmix64(seed ^ (kind as u64).rotate_left(32)) ^ key)
}

/// Records one occurrence and applies the injection cap. Returns whether
/// the fault actually fires.
fn fire(kind: usize, wants: bool, max: u64) -> bool {
    if !wants {
        return false;
    }
    INJECTED[kind]
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < max).then_some(n + 1)
        })
        .is_ok()
}

/// Should the next opportunity at a **serial** site inject `kind`?
///
/// Each call consumes one opportunity index; explicit `at` indices and
/// rate draws are both keyed on it. On unscoped threads (the default)
/// that index is a per-kind process-global counter, so serial sites (GP
/// fits, reward computation, the session loop) replay identically
/// run-to-run. On threads that declared a scope via [`set_thread_scope`]
/// the index is thread-local and starts at 0 per scope, so concurrent
/// jobs on a server draw independent, per-job-deterministic schedules
/// (rate draws additionally mix in the scope id, decorrelating tenants).
/// For sites running on pool workers use [`should_fault_indexed`]
/// instead — a counter's order would depend on thread interleaving there.
pub fn should_fault(kind: FaultKind) -> bool {
    if !armed() {
        return false;
    }
    let k = kind.index();
    let guard = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
    let Some(a) = guard.as_ref() else {
        return false;
    };
    // Global counter always ticks (aggregate stats stay meaningful); a
    // scoped thread takes its opportunity index from its own counters.
    let global_n = OPPORTUNITIES[k].fetch_add(1, Ordering::Relaxed);
    let scoped: Option<(u64, u64)> = THREAD_SCOPE.with(|s| {
        s.borrow_mut().as_mut().map(|state| {
            let n = state.opportunities[k];
            state.opportunities[k] += 1;
            (state.id, n)
        })
    });
    if let Some(required) = a.scope[k] {
        if scoped.map(|(id, _)| id) != Some(required) {
            return false;
        }
    }
    let (n, key) = match scoped {
        Some((id, n)) => (n, n ^ splitmix64(id)),
        None => (global_n, global_n),
    };
    let wants = a.at[k].binary_search(&n).is_ok()
        || (a.threshold[k] > 0 && draw(a.seed, k, key) < a.threshold[k]);
    fire(k, wants, a.max[k])
}

/// Should a **parallel** site inject `kind` for stable item `index`,
/// attempt `attempt`, under caller-chosen `salt` (e.g. a map sequence
/// number, so distinct maps draw independently)?
///
/// Decisions are keyed on `(plan seed, kind, index, attempt, salt)` — not
/// on arrival order — so the injected set is identical at any thread
/// count. Explicit `at` indices match `index` on the first attempt only
/// (any salt); rate draws include `attempt`, so retries of a transiently
/// injected item re-draw and converge (the supervised-pool retry test
/// relies on this).
pub fn should_fault_indexed(kind: FaultKind, index: u64, attempt: u32, salt: u64) -> bool {
    if !armed() {
        return false;
    }
    let k = kind.index();
    let guard = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
    let Some(a) = guard.as_ref() else {
        return false;
    };
    OPPORTUNITIES[k].fetch_add(1, Ordering::Relaxed);
    // Pool workers never carry a thread scope, so a scoped rule cannot
    // apply here; checking the thread anyway keeps the semantics uniform
    // if a caller runs an indexed site on a scoped thread.
    if let Some(required) = a.scope[k] {
        if thread_scope() != Some(required) {
            return false;
        }
    }
    let key = splitmix64(index ^ splitmix64(salt)).wrapping_add((attempt as u64).rotate_left(17));
    let wants = (attempt == 0 && a.at[k].binary_search(&index).is_ok())
        || (a.threshold[k] > 0 && draw(a.seed, k, key) < a.threshold[k]);
    fire(k, wants, a.max[k])
}

/// Consumes a [`FaultKind::SlowEval`] opportunity; returns the configured
/// stall when it fires. Callers `sleep` for the returned duration.
pub fn eval_delay() -> Option<Duration> {
    if !armed() {
        return None;
    }
    if should_fault(FaultKind::SlowEval) {
        let guard = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
        let ms = guard
            .as_ref()
            .map(|a| a.delay[FaultKind::SlowEval.index()])
            .unwrap_or(0);
        Some(Duration::from_millis(ms))
    } else {
        None
    }
}

/// The configured `delay_ms` for `kind` under the installed plan, without
/// consuming an opportunity. Sites that already decided to inject a
/// stall-style fault (via [`should_fault`] / [`should_fault_indexed`])
/// call this to learn how long to sleep.
pub fn delay_of(kind: FaultKind) -> Duration {
    if !armed() {
        return Duration::ZERO;
    }
    let guard = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
    let ms = guard.as_ref().map(|a| a.delay[kind.index()]).unwrap_or(0);
    Duration::from_millis(ms)
}

/// Consumes one opportunity for `kind`; returns NaN when it fires, `value`
/// otherwise. Convenience for poisoning scalar outputs at serial sites.
pub fn poison_f64(kind: FaultKind, value: f64) -> f64 {
    if should_fault(kind) {
        f64::NAN
    } else {
        value
    }
}

/// Number of faults actually injected for `kind` since the last [`install`].
pub fn injected(kind: FaultKind) -> u64 {
    INJECTED[kind.index()].load(Ordering::Relaxed)
}

/// Total faults injected across all kinds since the last [`install`].
pub fn injected_total() -> u64 {
    INJECTED.iter().map(|c| c.load(Ordering::Relaxed)).sum()
}

/// Per-kind counters since the last [`install`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault kind the counters describe.
    pub kind: FaultKind,
    /// Decision points reached (armed or not fired included).
    pub opportunities: u64,
    /// Faults actually injected.
    pub injected: u64,
}

/// Snapshot of all per-kind counters, in [`FaultKind::ALL`] order.
pub fn stats() -> Vec<FaultStats> {
    FaultKind::ALL
        .into_iter()
        .map(|kind| FaultStats {
            kind,
            opportunities: OPPORTUNITIES[kind.index()].load(Ordering::Relaxed),
            injected: INJECTED[kind.index()].load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let plan = FaultPlan::new(7)
            .rule(FaultRule::rate(FaultKind::WorkerPanic, 0.25).max_faults(10))
            .rule(FaultRule::at(FaultKind::NanReward, &[3, 7, 19]))
            .rule(FaultRule::rate(FaultKind::SlowEval, 0.5).delay_ms(5));
        let text = plan.to_text();
        let parsed = FaultPlan::from_text(&text).expect("round trip parses");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::from_text("bogus 1").is_err());
        assert!(FaultPlan::from_text("fault not_a_kind rate 0.5").is_err());
        assert!(FaultPlan::from_text("fault sim_nan rate 1.5").is_err());
        assert!(FaultPlan::from_text("fault sim_nan rate abc").is_err());
        assert!(FaultPlan::from_text("seed").is_err());
        let err = FaultPlan::from_text("seed 1\nfault sim_nan frequency 2").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frequency"));
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let plan = FaultPlan::from_text("# header\n\n seed 9 # trailing\n").expect("parses");
        assert_eq!(plan.seed, 9);
        assert!(plan.rules.is_empty());
    }

    #[test]
    fn disarmed_hook_never_fires() {
        let _guard = test_lock();
        disarm();
        assert!(!armed());
        for kind in FaultKind::ALL {
            assert!(!should_fault(kind));
            assert!(!should_fault_indexed(kind, 0, 0, 0));
        }
        assert!(eval_delay().is_none());
        assert_eq!(poison_f64(FaultKind::NanReward, 1.5), 1.5);
    }

    #[test]
    fn explicit_indices_fire_exactly() {
        let _guard = test_lock();
        install(&FaultPlan::new(1).rule(FaultRule::at(FaultKind::GpFitFail, &[1, 4])));
        let fired: Vec<bool> = (0..6).map(|_| should_fault(FaultKind::GpFitFail)).collect();
        assert_eq!(fired, [false, true, false, false, true, false]);
        assert_eq!(injected(FaultKind::GpFitFail), 2);
        disarm();
    }

    #[test]
    fn rate_draws_are_deterministic_and_roughly_calibrated() {
        let _guard = test_lock();
        install(&FaultPlan::new(123).rule(FaultRule::rate(FaultKind::SimNan, 0.3)));
        let first: Vec<bool> = (0..1000).map(|_| should_fault(FaultKind::SimNan)).collect();
        let hits = first.iter().filter(|&&b| b).count();
        assert!((200..400).contains(&hits), "rate 0.3 gave {hits}/1000");
        // Re-installing the same plan resets counters and replays exactly.
        install(&FaultPlan::new(123).rule(FaultRule::rate(FaultKind::SimNan, 0.3)));
        let second: Vec<bool> = (0..1000).map(|_| should_fault(FaultKind::SimNan)).collect();
        assert_eq!(first, second);
        disarm();
    }

    #[test]
    fn max_faults_caps_injections() {
        let _guard = test_lock();
        install(&FaultPlan::new(5).rule(FaultRule::rate(FaultKind::NanReward, 1.0).max_faults(3)));
        let hits = (0..50)
            .filter(|_| should_fault(FaultKind::NanReward))
            .count();
        assert_eq!(hits, 3);
        assert_eq!(injected(FaultKind::NanReward), 3);
        disarm();
    }

    #[test]
    fn indexed_decisions_ignore_call_order() {
        let _guard = test_lock();
        let plan = FaultPlan::new(77).rule(FaultRule::rate(FaultKind::WorkerPanic, 0.4));
        install(&plan);
        let forward: Vec<bool> = (0..64)
            .map(|i| should_fault_indexed(FaultKind::WorkerPanic, i, 0, 0))
            .collect();
        install(&plan);
        let backward: Vec<bool> = (0..64)
            .rev()
            .map(|i| should_fault_indexed(FaultKind::WorkerPanic, i, 0, 0))
            .collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
        // Retries draw independently: some first-attempt injections clear.
        install(&plan);
        let retried: Vec<bool> = (0..64)
            .map(|i| should_fault_indexed(FaultKind::WorkerPanic, i, 1, 0))
            .collect();
        assert_ne!(forward, retried);
        disarm();
    }

    #[test]
    fn explicit_indexed_faults_hit_first_attempt_only() {
        let _guard = test_lock();
        install(&FaultPlan::new(3).rule(FaultRule::at(FaultKind::WorkerPanic, &[2])));
        assert!(should_fault_indexed(FaultKind::WorkerPanic, 2, 0, 0));
        assert!(!should_fault_indexed(FaultKind::WorkerPanic, 2, 1, 0));
        assert!(!should_fault_indexed(FaultKind::WorkerPanic, 1, 0, 0));
        disarm();
    }

    #[test]
    fn slow_eval_reports_configured_delay() {
        let _guard = test_lock();
        install(&FaultPlan::new(2).rule(FaultRule::rate(FaultKind::SlowEval, 1.0).delay_ms(7)));
        assert_eq!(eval_delay(), Some(Duration::from_millis(7)));
        disarm();
    }

    #[test]
    fn stats_track_opportunities_and_injections() {
        let _guard = test_lock();
        install(&FaultPlan::new(11).rule(FaultRule::rate(FaultKind::SimNan, 1.0).max_faults(2)));
        for _ in 0..5 {
            let _ = should_fault(FaultKind::SimNan);
        }
        let s = stats();
        let sim = s
            .iter()
            .find(|s| s.kind == FaultKind::SimNan)
            .expect("sim stats");
        assert_eq!(sim.opportunities, 5);
        assert_eq!(sim.injected, 2);
        assert_eq!(injected_total(), 2);
        disarm();
    }

    #[test]
    fn scope_round_trips_through_text() {
        let plan = FaultPlan::new(4)
            .rule(FaultRule::rate(FaultKind::SimNan, 0.2).scope(12345))
            .rule(FaultRule::at(FaultKind::NanReward, &[1]).scope(scope_for("tenant-a")));
        let text = plan.to_text();
        assert!(text.contains("scope 12345"), "{text}");
        assert_eq!(FaultPlan::from_text(&text).expect("parses"), plan);
    }

    #[test]
    fn scoped_rule_fires_only_on_matching_thread() {
        let _guard = test_lock();
        let target = scope_for("tenant-a");
        install(&FaultPlan::new(8).rule(FaultRule::rate(FaultKind::NanReward, 1.0).scope(target)));
        // Unscoped thread: never fires.
        set_thread_scope(None);
        assert!(!should_fault(FaultKind::NanReward));
        // Wrong scope: never fires.
        set_thread_scope(Some(scope_for("tenant-b")));
        assert!(!should_fault(FaultKind::NanReward));
        // Matching scope: fires.
        set_thread_scope(Some(target));
        assert!(should_fault(FaultKind::NanReward));
        // Indexed sites apply the same filter.
        set_thread_scope(None);
        assert!(!should_fault_indexed(FaultKind::NanReward, 0, 0, 0));
        set_thread_scope(Some(target));
        assert!(should_fault_indexed(FaultKind::NanReward, 0, 0, 0));
        set_thread_scope(None);
        disarm();
    }

    #[test]
    fn scoped_threads_replay_per_scope_schedules() {
        let _guard = test_lock();
        let plan = FaultPlan::new(21).rule(FaultRule::rate(FaultKind::SimNan, 0.3));
        install(&plan);
        // A scoped "job": entering the scope zeroes its opportunity
        // counters, so the schedule is a pure function of (seed, scope).
        set_thread_scope(Some(7));
        let first: Vec<bool> = (0..64).map(|_| should_fault(FaultKind::SimNan)).collect();
        // Interleave consumption from another scope and from no scope —
        // with global counters this would shift the next job's indices.
        set_thread_scope(Some(9));
        let other: Vec<bool> = (0..64).map(|_| should_fault(FaultKind::SimNan)).collect();
        set_thread_scope(None);
        for _ in 0..17 {
            let _ = should_fault(FaultKind::SimNan);
        }
        // Re-entering scope 7 replays the identical schedule.
        set_thread_scope(Some(7));
        let second: Vec<bool> = (0..64).map(|_| should_fault(FaultKind::SimNan)).collect();
        assert_eq!(first, second);
        // Distinct scopes draw decorrelated schedules.
        assert_ne!(first, other);
        set_thread_scope(None);
        disarm();
    }

    #[test]
    fn network_kinds_round_trip_through_text() {
        let plan = FaultPlan::new(13)
            .rule(FaultRule::rate(FaultKind::ConnDrop, 0.1).max_faults(4))
            .rule(FaultRule::rate(FaultKind::PartialWrite, 0.05))
            .rule(FaultRule::rate(FaultKind::Stall, 0.2).delay_ms(9))
            .rule(FaultRule::at(FaultKind::GarbageFrame, &[2, 5]));
        let text = plan.to_text();
        assert!(text.contains("fault stall rate 0.2 delay_ms 9"), "{text}");
        assert_eq!(FaultPlan::from_text(&text).expect("parses"), plan);
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn delay_of_reports_stall_duration_without_consuming() {
        let _guard = test_lock();
        install(&FaultPlan::new(6).rule(FaultRule::rate(FaultKind::Stall, 1.0).delay_ms(12)));
        assert_eq!(delay_of(FaultKind::Stall), Duration::from_millis(12));
        assert_eq!(delay_of(FaultKind::Stall), Duration::from_millis(12));
        let s = stats();
        let stall = s
            .iter()
            .find(|s| s.kind == FaultKind::Stall)
            .expect("stall stats");
        assert_eq!(stall.opportunities, 0);
        disarm();
        assert_eq!(delay_of(FaultKind::Stall), Duration::ZERO);
    }

    #[test]
    fn scope_for_is_stable_and_distinct() {
        assert_eq!(scope_for("tenant-a"), scope_for("tenant-a"));
        assert_ne!(scope_for("tenant-a"), scope_for("tenant-b"));
        assert_ne!(scope_for(""), scope_for("a"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("yoso_chaos_test_plan");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("plan.txt");
        let plan = FaultPlan::new(99).rule(FaultRule::rate(FaultKind::GpPredictNan, 0.1));
        plan.save(&path).expect("save");
        assert_eq!(FaultPlan::load(&path).expect("load"), plan);
        std::fs::remove_file(&path).ok();
    }
}
