//! Property tests of the RL controller's probabilistic bookkeeping.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_controller::{Controller, ControllerConfig};

fn small_controller(vocab: Vec<usize>, seed: u64) -> Controller {
    let mut cfg = ControllerConfig::paper_default(vocab);
    cfg.hidden = 12;
    cfg.embed = 6;
    cfg.seed = seed;
    Controller::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Entropy of each rollout is bounded by the maximum-entropy policy
    /// (sum of ln(vocab_s)), and log-probability is consistent with it.
    #[test]
    fn entropy_and_logprob_bounds(
        seed in 0u64..1000,
        vocab in proptest::collection::vec(2usize..7, 2..6),
    ) {
        let ctrl = small_controller(vocab.clone(), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
        let r = ctrl.sample(&mut rng);
        let max_entropy: f64 = vocab.iter().map(|&v| (v as f64).ln()).sum();
        prop_assert!(r.entropy > 0.0 && r.entropy <= max_entropy + 1e-9,
            "entropy {} > max {}", r.entropy, max_entropy);
        prop_assert!(r.log_prob <= 0.0);
        // The sampled sequence cannot be less likely than uniform^-... it
        // CAN be, but never more likely than certainty.
        prop_assert!(r.log_prob.exp() <= 1.0);
    }

    /// Updates leave all parameters finite for arbitrary reward scales.
    #[test]
    fn update_keeps_parameters_finite(seed in 0u64..200, reward in -100.0f64..100.0) {
        let mut ctrl = small_controller(vec![3, 4, 5], seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let r = ctrl.sample(&mut rng);
            let stats = ctrl.update(&[(r, reward)]);
            prop_assert!(stats.grad_norm.is_finite());
            prop_assert!(stats.baseline.is_finite());
        }
        let r = ctrl.sample(&mut rng);
        prop_assert!(r.log_prob.is_finite());
    }

    /// With a constant reward the advantage is ~0 after the first update,
    /// so the policy barely moves (baseline absorbs the signal).
    #[test]
    fn constant_reward_is_absorbed(seed in 0u64..100) {
        let mut ctrl = small_controller(vec![4, 4], seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let r0 = ctrl.sample(&mut rng);
        ctrl.update(&[(r0, 7.0)]);
        let before = ctrl.baseline().unwrap();
        for _ in 0..10 {
            let r = ctrl.sample(&mut rng);
            ctrl.update(&[(r, 7.0)]);
        }
        let after = ctrl.baseline().unwrap();
        prop_assert!((after - 7.0).abs() <= (before - 7.0).abs() + 1e-9);
        prop_assert!((after - 7.0).abs() < 1e-6);
    }
}

/// The sampled action distribution is not degenerate at initialization:
/// over many rollouts every action of a small vocabulary appears.
#[test]
fn initial_policy_explores() {
    let ctrl = small_controller(vec![4], 3);
    let mut rng = StdRng::seed_from_u64(0);
    let mut seen = [false; 4];
    for _ in 0..200 {
        seen[ctrl.sample(&mut rng).actions[0]] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "degenerate initial policy: {seen:?}"
    );
}
