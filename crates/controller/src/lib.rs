//! # yoso-controller
//!
//! The reinforcement-learning searcher of the YOSO framework: an LSTM
//! policy (120 hidden units) that autoregressively emits the 44-symbol
//! DNN+accelerator action sequence and is trained with REINFORCE, a
//! moving-average baseline and an entropy bonus (paper §III-C, Eq. 2–4).
//!
//! The crate is search-space agnostic: it takes a list of per-step
//! vocabulary sizes, so it composes with `yoso_arch::ActionSpace` but can
//! drive any discrete sequence-design problem.
//!
//! ## Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use yoso_controller::{Controller, ControllerConfig};
//!
//! let mut cfg = ControllerConfig::paper_default(vec![4, 4, 4]);
//! cfg.hidden = 16; // small for the doc test
//! let mut ctrl = Controller::new(cfg);
//! let mut rng = StdRng::seed_from_u64(0);
//! let rollout = ctrl.sample(&mut rng);
//! let reward = rollout.actions.iter().sum::<usize>() as f64; // toy reward
//! let stats = ctrl.update(&[(rollout, reward)]);
//! assert_eq!(stats.mean_reward, reward);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lstm;
pub mod policy;

pub use lstm::{LstmCache, LstmParams, LstmShape};
pub use policy::{Controller, ControllerConfig, Rollout, UpdateStats};
