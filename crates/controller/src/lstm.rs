//! A single-layer LSTM cell with manual forward/backward, specialized for
//! the controller's per-step sequence generation.

#![allow(clippy::needless_range_loop)]

use yoso_tensor::{ParamId, ParamStore, Tensor};

/// Parameter ids of one LSTM cell inside a [`ParamStore`].
#[derive(Debug, Clone, Copy)]
pub struct LstmParams {
    /// Input-to-hidden weights `[4H, E]` (gate order: i, f, g, o).
    pub w_ih: ParamId,
    /// Hidden-to-hidden weights `[4H, H]`.
    pub w_hh: ParamId,
    /// Gate biases `[4H]` (forget-gate bias initialized to 1).
    pub b: ParamId,
}

/// Per-step cache required by the backward pass.
#[derive(Debug, Clone)]
pub struct LstmCache {
    /// Input vector.
    pub x: Vec<f32>,
    /// Previous hidden state.
    pub h_prev: Vec<f32>,
    /// Previous cell state.
    pub c_prev: Vec<f32>,
    /// Post-activation gates (i, f, g, o).
    pub gates: Vec<f32>,
    /// New cell state.
    pub c: Vec<f32>,
    /// New hidden state.
    pub h: Vec<f32>,
}

/// Hidden/input sizes of the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmShape {
    /// Hidden units (paper: 120).
    pub hidden: usize,
    /// Input (embedding) size.
    pub input: usize,
}

impl LstmParams {
    /// Allocates LSTM parameters in `store` with small random init and a
    /// forget-gate bias of 1.
    pub fn init<R: rand::Rng + ?Sized>(
        shape: LstmShape,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        let (h, e) = (shape.hidden, shape.input);
        let w_ih = store.add(Tensor::randn(&[4 * h, e], 0.1, rng));
        let w_hh = store.add(Tensor::randn(&[4 * h, h], 0.1, rng));
        let mut bias = Tensor::zeros(&[4 * h]);
        for v in &mut bias.data_mut()[h..2 * h] {
            *v = 1.0; // forget-gate bias
        }
        let b = store.add(bias);
        LstmParams { w_ih, w_hh, b }
    }

    /// One forward step; returns the cache holding `(h, c)` and
    /// intermediates.
    pub fn forward(
        &self,
        store: &ParamStore,
        shape: LstmShape,
        x: &[f32],
        h_prev: &[f32],
        c_prev: &[f32],
    ) -> LstmCache {
        let (h_n, e) = (shape.hidden, shape.input);
        debug_assert_eq!(x.len(), e);
        debug_assert_eq!(h_prev.len(), h_n);
        let w_ih = store.value(self.w_ih).data();
        let w_hh = store.value(self.w_hh).data();
        let b = store.value(self.b).data();
        let mut pre = b.to_vec();
        for r in 0..4 * h_n {
            let wrow = &w_ih[r * e..(r + 1) * e];
            let hrow = &w_hh[r * h_n..(r + 1) * h_n];
            let mut acc = 0.0f32;
            for (w, v) in wrow.iter().zip(x) {
                acc += w * v;
            }
            for (w, v) in hrow.iter().zip(h_prev) {
                acc += w * v;
            }
            pre[r] += acc;
        }
        let mut gates = vec![0.0f32; 4 * h_n];
        for j in 0..h_n {
            gates[j] = sigmoid(pre[j]); // i
            gates[h_n + j] = sigmoid(pre[h_n + j]); // f
            gates[2 * h_n + j] = pre[2 * h_n + j].tanh(); // g
            gates[3 * h_n + j] = sigmoid(pre[3 * h_n + j]); // o
        }
        let mut c = vec![0.0f32; h_n];
        let mut h = vec![0.0f32; h_n];
        for j in 0..h_n {
            c[j] = gates[h_n + j] * c_prev[j] + gates[j] * gates[2 * h_n + j];
            h[j] = gates[3 * h_n + j] * c[j].tanh();
        }
        LstmCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            gates,
            c,
            h,
        }
    }

    /// One backward step. `dh`/`dc` are gradients flowing into this step's
    /// outputs; returns `(dx, dh_prev, dc_prev)` and accumulates parameter
    /// gradients into `store`.
    pub fn backward(
        &self,
        store: &mut ParamStore,
        shape: LstmShape,
        cache: &LstmCache,
        dh: &[f32],
        dc_in: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let (h_n, e) = (shape.hidden, shape.input);
        let mut dpre = vec![0.0f32; 4 * h_n];
        let mut dc_prev = vec![0.0f32; h_n];
        for j in 0..h_n {
            let (i, f, g, o) = (
                cache.gates[j],
                cache.gates[h_n + j],
                cache.gates[2 * h_n + j],
                cache.gates[3 * h_n + j],
            );
            let tc = cache.c[j].tanh();
            let dc = dc_in[j] + dh[j] * o * (1.0 - tc * tc);
            let do_ = dh[j] * tc;
            let di = dc * g;
            let df = dc * cache.c_prev[j];
            let dg = dc * i;
            dc_prev[j] = dc * f;
            dpre[j] = di * i * (1.0 - i);
            dpre[h_n + j] = df * f * (1.0 - f);
            dpre[2 * h_n + j] = dg * (1.0 - g * g);
            dpre[3 * h_n + j] = do_ * o * (1.0 - o);
        }
        // Parameter gradients.
        let mut gw_ih = Tensor::zeros(&[4 * h_n, e]);
        let mut gw_hh = Tensor::zeros(&[4 * h_n, h_n]);
        {
            let gi = gw_ih.data_mut();
            let gh = gw_hh.data_mut();
            for r in 0..4 * h_n {
                let d = dpre[r];
                if d == 0.0 {
                    continue;
                }
                for (slot, v) in gi[r * e..(r + 1) * e].iter_mut().zip(&cache.x) {
                    *slot = d * v;
                }
                for (slot, v) in gh[r * h_n..(r + 1) * h_n].iter_mut().zip(&cache.h_prev) {
                    *slot = d * v;
                }
            }
        }
        store.accumulate_grad(self.w_ih, &gw_ih);
        store.accumulate_grad(self.w_hh, &gw_hh);
        store.accumulate_grad(self.b, &Tensor::from_vec(&[4 * h_n], dpre.clone()));
        // Input gradients.
        let w_ih = store.value(self.w_ih).data();
        let w_hh = store.value(self.w_hh).data();
        let mut dx = vec![0.0f32; e];
        let mut dh_prev = vec![0.0f32; h_n];
        for r in 0..4 * h_n {
            let d = dpre[r];
            if d == 0.0 {
                continue;
            }
            for (slot, w) in dx.iter_mut().zip(&w_ih[r * e..(r + 1) * e]) {
                *slot += d * w;
            }
            for (slot, w) in dh_prev.iter_mut().zip(&w_hh[r * h_n..(r + 1) * h_n]) {
                *slot += d * w;
            }
        }
        (dx, dh_prev, dc_prev)
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, LstmParams, LstmShape) {
        let mut rng = StdRng::seed_from_u64(0);
        let shape = LstmShape {
            hidden: 6,
            input: 4,
        };
        let mut store = ParamStore::new();
        let p = LstmParams::init(shape, &mut store, &mut rng);
        (store, p, shape)
    }

    /// Scalar loss = sum(h) after two steps, checked against finite
    /// differences on every parameter tensor.
    #[test]
    fn bptt_matches_finite_differences() {
        let (mut store, p, shape) = setup();
        let x1 = vec![0.5, -0.3, 0.8, 0.1];
        let x2 = vec![-0.2, 0.7, 0.0, -0.5];
        let forward_loss = |store: &ParamStore| -> f32 {
            let h0 = vec![0.0; shape.hidden];
            let c0 = vec![0.0; shape.hidden];
            let s1 = p.forward(store, shape, &x1, &h0, &c0);
            let s2 = p.forward(store, shape, &x2, &s1.h, &s1.c);
            s2.h.iter().sum()
        };
        // Analytic gradient.
        store.zero_grads();
        let h0 = vec![0.0; shape.hidden];
        let c0 = vec![0.0; shape.hidden];
        let s1 = p.forward(&store, shape, &x1, &h0, &c0);
        let s2 = p.forward(&store, shape, &x2, &s1.h, &s1.c);
        let dh2 = vec![1.0f32; shape.hidden];
        let dc2 = vec![0.0f32; shape.hidden];
        let (_, dh1, dc1) = p.backward(&mut store, shape, &s2, &dh2, &dc2);
        let _ = p.backward(&mut store, shape, &s1, &dh1, &dc1);

        let eps = 1e-3f32;
        for (pid, indices) in [
            (p.w_ih, vec![0usize, 17, 95]),
            (p.w_hh, vec![0usize, 50, 143]),
            (p.b, vec![0usize, 7, 23]),
        ] {
            for idx in indices {
                let orig = store.value(pid).data()[idx];
                store.value_mut(pid).data_mut()[idx] = orig + eps;
                let f1 = forward_loss(&store);
                store.value_mut(pid).data_mut()[idx] = orig - eps;
                let f2 = forward_loss(&store);
                store.value_mut(pid).data_mut()[idx] = orig;
                let num = (f1 - f2) / (2.0 * eps);
                let ana = store.grad(pid).data()[idx];
                assert!(
                    (num - ana).abs() < 0.02 * (1.0 + num.abs().max(ana.abs())),
                    "grad[{idx}]: fd {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn forward_is_deterministic_and_bounded() {
        let (store, p, shape) = setup();
        let x = vec![1.0, -1.0, 0.5, 2.0];
        let h0 = vec![0.0; 6];
        let c0 = vec![0.0; 6];
        let a = p.forward(&store, shape, &x, &h0, &c0);
        let b = p.forward(&store, shape, &x, &h0, &c0);
        assert_eq!(a.h, b.h);
        for v in &a.h {
            assert!(v.abs() <= 1.0, "|h| must be < 1 (o * tanh(c))");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let (store, p, shape) = setup();
        let b = store.value(p.b).data();
        for j in shape.hidden..2 * shape.hidden {
            assert_eq!(b[j], 1.0);
        }
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn state_propagates_between_steps() {
        let (store, p, shape) = setup();
        let x = vec![0.3; 4];
        let h0 = vec![0.0; 6];
        let c0 = vec![0.0; 6];
        let s1 = p.forward(&store, shape, &x, &h0, &c0);
        let s2 = p.forward(&store, shape, &x, &s1.h, &s1.c);
        assert_ne!(s1.h, s2.h, "same input, different state => different h");
    }
}
