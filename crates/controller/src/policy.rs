//! The autoregressive RL controller (paper §III-C).
//!
//! An LSTM with 120 hidden units emits the 44-symbol action sequence via a
//! per-step softmax classifier; previously generated actions are fed back
//! as embeddings (zero vector at the initial step). Logits are shaped with
//! a temperature of 1.1 and a `2.5 * tanh` constant (following ENAS \[7\]),
//! a sample-entropy bonus is added to the reward, and the parameters are
//! updated with REINFORCE plus a moving-average baseline (Eq. 4).

#![allow(clippy::needless_range_loop)]

use crate::lstm::{LstmParams, LstmShape};
use rand::{Rng, RngExt};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};
use yoso_tensor::{Adam, ParamId, ParamStore, Tensor};

/// Controller hyper-parameters (defaults follow the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Per-step vocabulary sizes (44 steps for YOSO).
    pub vocab_sizes: Vec<usize>,
    /// LSTM hidden units (paper: 120).
    pub hidden: usize,
    /// Action-embedding size.
    pub embed: usize,
    /// Adam learning rate (paper: 0.0035).
    pub lr: f32,
    /// Softmax temperature (paper: 1.1).
    pub temperature: f32,
    /// Logit tanh constant (paper: 2.5).
    pub tanh_constant: f32,
    /// Entropy bonus weight (paper: 1e-4).
    pub entropy_weight: f32,
    /// Moving-average baseline decay.
    pub baseline_decay: f64,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Parameter-init seed.
    pub seed: u64,
}

impl ControllerConfig {
    /// Paper-default hyper-parameters for a given action space.
    pub fn paper_default(vocab_sizes: Vec<usize>) -> Self {
        ControllerConfig {
            vocab_sizes,
            hidden: 120,
            embed: 32,
            lr: 0.0035,
            temperature: 1.1,
            tanh_constant: 2.5,
            entropy_weight: 1e-4,
            baseline_decay: 0.95,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

/// One sampled action sequence with its policy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollout {
    /// Sampled action per step.
    pub actions: Vec<usize>,
    /// Sum of log-probabilities of the sampled actions.
    pub log_prob: f64,
    /// Sum of per-step softmax entropies.
    pub entropy: f64,
}

/// Statistics returned by [`Controller::update`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStats {
    /// Mean reward of the batch.
    pub mean_reward: f64,
    /// Baseline value after the update.
    pub baseline: f64,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
    /// Mean policy entropy per step.
    pub mean_entropy: f64,
}

/// The LSTM policy with per-step embeddings and softmax heads.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    store: ParamStore,
    lstm: LstmParams,
    /// `emb[0]` is the learned start vector `[1, E]`; `emb[s]` (s ≥ 1)
    /// embeds step `s-1`'s action, `[vocab_{s-1}, E]`.
    emb: Vec<ParamId>,
    /// Per-step softmax heads: `(W [vocab_s, H], b [vocab_s])`.
    heads: Vec<(ParamId, ParamId)>,
    opt: Adam,
    baseline: Option<f64>,
}

struct StepCache {
    lstm: crate::lstm::LstmCache,
    probs: Vec<f32>,
    logits_raw: Vec<f32>,
    action: usize,
}

impl Controller {
    /// Builds a controller with randomly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_sizes` is empty or contains a zero.
    pub fn new(cfg: ControllerConfig) -> Self {
        assert!(!cfg.vocab_sizes.is_empty(), "empty action space");
        assert!(cfg.vocab_sizes.iter().all(|&v| v > 0), "zero vocab");
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let shape = LstmShape {
            hidden: cfg.hidden,
            input: cfg.embed,
        };
        let lstm = LstmParams::init(shape, &mut store, &mut rng);
        let mut emb = Vec::with_capacity(cfg.vocab_sizes.len());
        emb.push(store.add(Tensor::randn(&[1, cfg.embed], 0.1, &mut rng)));
        for s in 1..cfg.vocab_sizes.len() {
            emb.push(store.add(Tensor::randn(
                &[cfg.vocab_sizes[s - 1], cfg.embed],
                0.1,
                &mut rng,
            )));
        }
        let heads = cfg
            .vocab_sizes
            .iter()
            .map(|&v| {
                (
                    store.add(Tensor::randn(&[v, cfg.hidden], 0.1, &mut rng)),
                    store.add(Tensor::zeros(&[v])),
                )
            })
            .collect();
        let opt = Adam::new(cfg.lr);
        Controller {
            cfg,
            store,
            lstm,
            emb,
            heads,
            opt,
            baseline: None,
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Current moving-average baseline (`None` before the first update).
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.store.total_elems()
    }

    fn shape(&self) -> LstmShape {
        LstmShape {
            hidden: self.cfg.hidden,
            input: self.cfg.embed,
        }
    }

    /// Runs the policy forward; `forced` replays a stored action sequence
    /// (for the update pass), otherwise actions are sampled from `rng`.
    fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        forced: Option<&[usize]>,
    ) -> (Vec<StepCache>, f64, f64) {
        let t_len = self.cfg.vocab_sizes.len();
        let shape = self.shape();
        let mut h = vec![0.0f32; self.cfg.hidden];
        let mut c = vec![0.0f32; self.cfg.hidden];
        let mut caches = Vec::with_capacity(t_len);
        let mut log_prob = 0.0f64;
        let mut entropy = 0.0f64;
        let mut prev_action = 0usize;
        for s in 0..t_len {
            let emb_t = self.store.value(self.emb[s]);
            let row = if s == 0 { 0 } else { prev_action };
            let e = self.cfg.embed;
            let x = &emb_t.data()[row * e..(row + 1) * e];
            let cache = self.lstm.forward(&self.store, shape, x, &h, &c);
            let v = self.cfg.vocab_sizes[s];
            let (w, b) = self.heads[s];
            let wd = self.store.value(w).data();
            let bd = self.store.value(b).data();
            let mut logits_raw = vec![0.0f32; v];
            for (j, lr_) in logits_raw.iter_mut().enumerate() {
                let row_w = &wd[j * self.cfg.hidden..(j + 1) * self.cfg.hidden];
                *lr_ = row_w.iter().zip(&cache.h).map(|(a, b)| a * b).sum::<f32>() + bd[j];
            }
            // ENAS-style logit shaping.
            let logits: Vec<f32> = logits_raw
                .iter()
                .map(|&z| self.cfg.tanh_constant * (z / self.cfg.temperature).tanh())
                .collect();
            let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut probs: Vec<f32> = logits.iter().map(|&z| (z - mx).exp()).collect();
            let denom: f32 = probs.iter().sum();
            for p in &mut probs {
                *p /= denom;
            }
            let action = match forced {
                Some(seq) => seq[s],
                None => {
                    let u: f32 = rng.random();
                    let mut acc = 0.0;
                    let mut a = v - 1;
                    for (j, &p) in probs.iter().enumerate() {
                        acc += p;
                        if u < acc {
                            a = j;
                            break;
                        }
                    }
                    a
                }
            };
            log_prob += (probs[action].max(1e-12) as f64).ln();
            entropy += -probs
                .iter()
                .map(|&p| {
                    if p > 0.0 {
                        (p as f64) * (p as f64).ln()
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            h = cache.h.clone();
            c = cache.c.clone();
            caches.push(StepCache {
                lstm: cache,
                probs,
                logits_raw,
                action,
            });
            prev_action = action;
        }
        (caches, log_prob, entropy)
    }

    /// Samples one action sequence from the current policy.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Rollout {
        let _span = yoso_trace::span("controller.sample");
        let (caches, log_prob, entropy) = self.run(rng, None);
        Rollout {
            actions: caches.iter().map(|c| c.action).collect(),
            log_prob,
            entropy,
        }
    }

    /// REINFORCE update on a batch of `(rollout, reward)` pairs (Eq. 4:
    /// moving-average baseline, entropy bonus).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or an action sequence has the wrong
    /// length.
    pub fn update(&mut self, batch: &[(Rollout, f64)]) -> UpdateStats {
        assert!(!batch.is_empty(), "empty update batch");
        let _span = yoso_trace::span("controller.update");
        let t_len = self.cfg.vocab_sizes.len();
        let mean_reward = batch.iter().map(|(_, r)| r).sum::<f64>() / batch.len() as f64;
        let baseline = match self.baseline {
            None => mean_reward,
            Some(b) => self.cfg.baseline_decay * b + (1.0 - self.cfg.baseline_decay) * mean_reward,
        };
        self.baseline = Some(baseline);
        self.store.zero_grads();
        let shape = self.shape();
        let mut entropy_sum = 0.0;
        for (rollout, reward) in batch {
            assert_eq!(rollout.actions.len(), t_len, "wrong action length");
            // Replay the forward pass to rebuild caches.
            let mut dummy = NoRng;
            let (caches, _, entropy) = self.run(&mut dummy, Some(&rollout.actions));
            entropy_sum += entropy / t_len as f64;
            // Advantage: loss = -(R - b) log p - w_e H.
            let adv = (*reward - baseline) as f32 / batch.len() as f32;
            let w_e = self.cfg.entropy_weight / batch.len() as f32;
            let mut dh = vec![0.0f32; self.cfg.hidden];
            let mut dc = vec![0.0f32; self.cfg.hidden];
            for s in (0..t_len).rev() {
                let cache = &caches[s];
                let v = self.cfg.vocab_sizes[s];
                let step_entropy: f32 = -cache
                    .probs
                    .iter()
                    .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                    .sum::<f32>();
                // d(loss)/d(logits).
                let mut dlogits = vec![0.0f32; v];
                for j in 0..v {
                    let p = cache.probs[j];
                    let onehot = if j == cache.action { 1.0 } else { 0.0 };
                    let d_logp = -adv * (onehot - p); // -(R-b) dlogp
                    let d_ent = w_e * p * (p.max(1e-12).ln() + step_entropy); // -w_e dH
                    dlogits[j] = d_logp + d_ent;
                }
                // Back through the tanh/temperature shaping.
                let mut dlogits_raw = vec![0.0f32; v];
                for j in 0..v {
                    let t = (cache.logits_raw[j] / self.cfg.temperature).tanh();
                    dlogits_raw[j] =
                        dlogits[j] * self.cfg.tanh_constant * (1.0 - t * t) / self.cfg.temperature;
                }
                // Head gradients.
                let (w, b) = self.heads[s];
                let hdim = self.cfg.hidden;
                let mut gw = Tensor::zeros(&[v, hdim]);
                for j in 0..v {
                    let d = dlogits_raw[j];
                    if d != 0.0 {
                        for (slot, hv) in gw.data_mut()[j * hdim..(j + 1) * hdim]
                            .iter_mut()
                            .zip(&cache.lstm.h)
                        {
                            *slot = d * hv;
                        }
                    }
                }
                self.store.accumulate_grad(w, &gw);
                self.store
                    .accumulate_grad(b, &Tensor::from_vec(&[v], dlogits_raw.clone()));
                // dh from the head plus the gradient flowing from step s+1.
                let wd = self.store.value(w).data().to_vec();
                for j in 0..v {
                    let d = dlogits_raw[j];
                    if d != 0.0 {
                        for (slot, wv) in dh.iter_mut().zip(&wd[j * hdim..(j + 1) * hdim]) {
                            *slot += d * wv;
                        }
                    }
                }
                let (dx, dh_prev, dc_prev) =
                    self.lstm
                        .backward(&mut self.store, shape, &cache.lstm, &dh, &dc);
                // Embedding gradient for the action fed into this step.
                let row = if s == 0 { 0 } else { caches[s - 1].action };
                let e = self.cfg.embed;
                let vocab_rows = self.store.value(self.emb[s]).shape()[0];
                let mut gemb = Tensor::zeros(&[vocab_rows, e]);
                gemb.data_mut()[row * e..(row + 1) * e].copy_from_slice(&dx);
                self.store.accumulate_grad(self.emb[s], &gemb);
                dh = dh_prev;
                dc = dc_prev;
            }
        }
        let grad_norm = self.store.clip_grad_norm(self.cfg.grad_clip);
        self.opt.step(&mut self.store);
        UpdateStats {
            mean_reward,
            baseline,
            grad_norm,
            mean_entropy: entropy_sum / batch.len() as f64,
        }
    }
}

impl Snapshot for ControllerConfig {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usizes(&self.vocab_sizes);
        w.put_usize(self.hidden);
        w.put_usize(self.embed);
        w.put_f32(self.lr);
        w.put_f32(self.temperature);
        w.put_f32(self.tanh_constant);
        w.put_f32(self.entropy_weight);
        w.put_f64(self.baseline_decay);
        w.put_f32(self.grad_clip);
        w.put_u64(self.seed);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = ControllerConfig {
            vocab_sizes: r.take_usizes()?,
            hidden: r.take_usize()?,
            embed: r.take_usize()?,
            lr: r.take_f32()?,
            temperature: r.take_f32()?,
            tanh_constant: r.take_f32()?,
            entropy_weight: r.take_f32()?,
            baseline_decay: r.take_f64()?,
            grad_clip: r.take_f32()?,
            seed: r.take_u64()?,
        };
        if cfg.vocab_sizes.is_empty() || cfg.vocab_sizes.contains(&0) {
            return Err(PersistError::Malformed("controller vocab sizes".into()));
        }
        Ok(cfg)
    }
}

// Restore-by-reconstruct: `Controller::new` builds the same ParamId
// layout for a given config (the construction loops are deterministic;
// the RNG only affects initial values), so restore rebuilds the
// skeleton from the stored config and overwrites the trained weights,
// Adam state and baseline. Shape disagreement between the snapshot and
// the reconstructed layout is a `Malformed` error, not a panic.
impl Snapshot for Controller {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.cfg.snapshot(w);
        match self.baseline {
            Some(b) => {
                w.put_bool(true);
                w.put_f64(b);
            }
            None => w.put_bool(false),
        }
        self.store.snapshot(w);
        self.opt.snapshot(w);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = ControllerConfig::restore(r)?;
        let baseline = if r.take_bool()? {
            Some(r.take_f64()?)
        } else {
            None
        };
        let store = ParamStore::restore(r)?;
        let opt = Adam::restore(r)?;
        let mut ctrl = Controller::new(cfg);
        if store.param_count() != ctrl.store.param_count() {
            return Err(PersistError::Malformed(format!(
                "controller: snapshot has {} params, config implies {}",
                store.param_count(),
                ctrl.store.param_count()
            )));
        }
        for (id, value) in store.iter() {
            if value.shape() != ctrl.store.value(id).shape() {
                return Err(PersistError::Malformed(format!(
                    "controller param {}: snapshot shape {:?} vs layout {:?}",
                    id.index(),
                    value.shape(),
                    ctrl.store.value(id).shape()
                )));
            }
        }
        ctrl.store = store;
        ctrl.opt = opt;
        ctrl.baseline = baseline;
        Ok(ctrl)
    }
}

/// RNG stub used when replaying forced action sequences: the policy never
/// draws from it (any seed works; present only to satisfy the signature).
struct NoRng;

impl rand::TryRng for NoRng {
    type Error = std::convert::Infallible;
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        unreachable!("forced replay must not sample")
    }
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        unreachable!("forced replay must not sample")
    }
    fn try_fill_bytes(&mut self, _dst: &mut [u8]) -> Result<(), Self::Error> {
        unreachable!("forced replay must not sample")
    }
}

// `rand::Rng` is blanket-implemented for every `TryRng<Error = Infallible>`.

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> ControllerConfig {
        let mut cfg = ControllerConfig::paper_default(vec![3, 4, 2, 5]);
        cfg.hidden = 16;
        cfg.embed = 8;
        cfg.lr = 0.02;
        cfg
    }

    #[test]
    fn sample_respects_vocab() {
        let ctrl = Controller::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let r = ctrl.sample(&mut rng);
            assert_eq!(r.actions.len(), 4);
            for (a, &v) in r.actions.iter().zip(&ctrl.cfg.vocab_sizes) {
                assert!(*a < v);
            }
            assert!(r.log_prob <= 0.0);
            assert!(r.entropy > 0.0);
        }
    }

    #[test]
    fn restored_controller_samples_and_updates_bit_identically() {
        // Train a few steps so the Adam moments, step counter and
        // baseline are all non-trivial, then snapshot.
        let mut ctrl = Controller::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let batch: Vec<(Rollout, f64)> = (0..4)
                .map(|_| {
                    let r = ctrl.sample(&mut rng);
                    let reward = r.actions[0] as f64 / 3.0;
                    (r, reward)
                })
                .collect();
            ctrl.update(&batch);
        }
        let mut w = ByteWriter::new();
        ctrl.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = Controller::restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.baseline(), ctrl.baseline());
        // Identical RNG streams must produce identical rollouts, and one
        // more update must leave both controllers in identical states.
        let mut ra = StdRng::seed_from_u64(99);
        let mut rb = ra.clone();
        let batch_a: Vec<(Rollout, f64)> =
            (0..4).map(|i| (ctrl.sample(&mut ra), i as f64)).collect();
        let batch_b: Vec<(Rollout, f64)> =
            (0..4).map(|i| (back.sample(&mut rb), i as f64)).collect();
        assert_eq!(batch_a, batch_b);
        let sa = ctrl.update(&batch_a);
        let sb = back.update(&batch_b);
        assert_eq!(sa, sb);
        assert_eq!(ctrl.sample(&mut ra), back.sample(&mut rb));
    }

    #[test]
    fn corrupted_controller_snapshot_is_rejected() {
        let ctrl = Controller::new(small_cfg());
        let mut w = ByteWriter::new();
        ctrl.snapshot(&mut w);
        let bytes = w.into_bytes();
        // Truncation is a typed error, not a panic.
        assert!(matches!(
            Controller::restore(&mut ByteReader::new(&bytes[..bytes.len() / 3])),
            Err(PersistError::Truncated { .. })
        ));
        // A config whose layout disagrees with the stored params is
        // Malformed: shrink the first vocab entry in place.
        let mut tampered = bytes.clone();
        // vocab_sizes length prefix (8B) then first entry as u64.
        tampered[8..16].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(
            Controller::restore(&mut ByteReader::new(&tampered)),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn learns_to_prefer_rewarded_action() {
        // Reward = 1 when action[0] == 2, else 0. After training the
        // controller should sample action 2 at step 0 most of the time.
        let mut ctrl = Controller::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let batch: Vec<(Rollout, f64)> = (0..8)
                .map(|_| {
                    let r = ctrl.sample(&mut rng);
                    let reward = if r.actions[0] == 2 { 1.0 } else { 0.0 };
                    (r, reward)
                })
                .collect();
            ctrl.update(&batch);
        }
        let hits = (0..100)
            .filter(|_| ctrl.sample(&mut rng).actions[0] == 2)
            .count();
        assert!(hits > 80, "only {hits}/100 after training");
    }

    #[test]
    fn learns_joint_action_pattern() {
        // Reward depends on two coordinated actions, exercising the
        // autoregressive conditioning: a[1] must equal a[0] + 1.
        let mut cfg = small_cfg();
        cfg.vocab_sizes = vec![3, 4];
        let mut ctrl = Controller::new(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..400 {
            let batch: Vec<(Rollout, f64)> = (0..8)
                .map(|_| {
                    let r = ctrl.sample(&mut rng);
                    let reward = if r.actions[1] == r.actions[0] + 1 {
                        1.0
                    } else {
                        0.0
                    };
                    (r, reward)
                })
                .collect();
            ctrl.update(&batch);
        }
        let hits = (0..100)
            .filter(|_| {
                let r = ctrl.sample(&mut rng);
                r.actions[1] == r.actions[0] + 1
            })
            .count();
        assert!(hits > 60, "only {hits}/100 after training");
    }

    #[test]
    fn baseline_tracks_reward() {
        let mut ctrl = Controller::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(ctrl.baseline().is_none());
        let r = ctrl.sample(&mut rng);
        let stats = ctrl.update(&[(r, 5.0)]);
        assert_eq!(stats.baseline, 5.0);
        let r2 = ctrl.sample(&mut rng);
        let stats2 = ctrl.update(&[(r2, 1.0)]);
        assert!(stats2.baseline < 5.0 && stats2.baseline > 1.0);
    }

    #[test]
    #[should_panic(expected = "empty update batch")]
    fn empty_batch_panics() {
        let mut ctrl = Controller::new(small_cfg());
        ctrl.update(&[]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Controller::new(small_cfg());
        let b = Controller::new(small_cfg());
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(a.sample(&mut r1), b.sample(&mut r2));
    }

    #[test]
    fn param_count_nontrivial() {
        let ctrl = Controller::new(small_cfg());
        assert!(ctrl.param_count() > 1000);
    }
}
