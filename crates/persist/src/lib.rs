//! # yoso-persist
//!
//! Crash-safe persistence for every stateful YOSO component: a small,
//! dependency-free binary snapshot container plus the [`Snapshot`] trait
//! the rest of the workspace implements.
//!
//! ## Container format (version 1)
//!
//! ```text
//! [ 8B magic "YOSOSNAP" ][ u32 version ][ u64 payload_len ][ u64 fnv1a(payload) ]
//! [ payload:  kind string | u32 n_sections | n * (name string | u64 len | bytes) ]
//! ```
//!
//! All integers are little-endian. The checksum covers the entire
//! payload, so any bit flip or truncation surfaces as a typed
//! [`PersistError`] — never a panic and never silently-wrong state.
//!
//! ## Atomicity
//!
//! [`SnapshotBuilder::write_atomic`] writes to a `*.tmp` sibling, fsyncs
//! it, then atomically renames it over the destination (and best-effort
//! fsyncs the parent directory). A crash mid-write therefore leaves
//! either the previous complete snapshot or a stray `.tmp` file — never
//! a torn snapshot at the destination path.
//!
//! ## Example
//!
//! ```
//! use yoso_persist::{SnapshotArchive, SnapshotBuilder};
//!
//! let mut b = SnapshotBuilder::new("example.counter");
//! b.section("state", |w| w.put_u64(42));
//! let bytes = b.to_bytes();
//! let a = SnapshotArchive::from_bytes(&bytes).unwrap();
//! assert_eq!(a.kind(), "example.counter");
//! assert_eq!(a.section("state").unwrap().take_u64().unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"YOSOSNAP";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Typed failure of any persistence operation. No code path in this
/// crate panics on malformed input: corruption, truncation and version
/// skew all map to a variant here.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// Fewer bytes than a field requires (truncated file or section).
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A named section the reader requires is absent.
    MissingSection(String),
    /// Structurally invalid content inside an intact container
    /// (e.g. a shape mismatch against the reconstructed component).
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a YOSO snapshot (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} (supported: {supported})"
                )
            }
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header {expected:#018x}, payload {found:#018x}"
            ),
            PersistError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, had {available}"
                )
            }
            PersistError::MissingSection(name) => {
                write!(f, "snapshot is missing section {name:?}")
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// 64-bit FNV-1a over `bytes` — the container checksum. Not
/// cryptographic; it guards against corruption and truncation, not
/// adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian binary encoder backing every [`Snapshot`] impl.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` by its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` by its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `usize` slice (as `u64`s).
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }
}

/// Cursor over encoded bytes; every read is bounds-checked and returns a
/// typed [`PersistError`] on shortfall.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any value other than 0/1 is [`PersistError::Malformed`].
    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(PersistError::Malformed(format!("bool byte {v}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` written by [`ByteWriter::put_usize`].
    pub fn take_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Malformed(format!("usize overflow: {v}")))
    }

    /// Reads an `f32` bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, PersistError> {
        let n = self.take_usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PersistError::Malformed(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn take_f32s(&mut self) -> Result<Vec<f32>, PersistError> {
        let n = self.checked_len(4)?;
        (0..n).map(|_| self.take_f32()).collect()
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn take_f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.take_f64()).collect()
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn take_u64s(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.take_u64()).collect()
    }

    /// Reads a length-prefixed `usize` slice.
    pub fn take_usizes(&mut self) -> Result<Vec<usize>, PersistError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.take_usize()).collect()
    }

    /// Reads a slice length and verifies the remaining bytes can hold it
    /// (`elem_size` bytes per element), so corrupted lengths fail fast
    /// instead of attempting a huge allocation.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.take_usize()?;
        let needed = n.saturating_mul(elem_size);
        if self.remaining() < needed {
            return Err(PersistError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(n)
    }
}

/// A component that can write its complete state to a [`ByteWriter`] and
/// reconstruct a bit-identical copy from a [`ByteReader`].
///
/// "Bit-identical" is the contract the resume tests enforce: after
/// `restore`, every observable output of the component (samples,
/// predictions, RNG draws) must match the original exactly.
pub trait Snapshot: Sized {
    /// Serializes this component's state.
    fn snapshot(&self, w: &mut ByteWriter);

    /// Reconstructs the component from bytes written by
    /// [`snapshot`](Snapshot::snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the bytes are truncated or
    /// structurally invalid.
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError>;
}

/// Assembles a named-section snapshot and writes it atomically.
#[derive(Debug)]
pub struct SnapshotBuilder {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Starts a snapshot of the given kind (a free-form tag the reader
    /// can use to reject files of the wrong type).
    pub fn new(kind: &str) -> Self {
        SnapshotBuilder {
            kind: kind.to_string(),
            sections: Vec::new(),
        }
    }

    /// Adds a named section whose payload `f` writes.
    pub fn section(&mut self, name: &str, f: impl FnOnce(&mut ByteWriter)) -> &mut Self {
        let mut w = ByteWriter::new();
        f(&mut w);
        self.sections.push((name.to_string(), w.into_bytes()));
        self
    }

    /// Adds a named section holding one [`Snapshot`] value.
    pub fn put<T: Snapshot>(&mut self, name: &str, value: &T) -> &mut Self {
        self.section(name, |w| value.snapshot(w))
    }

    /// Serializes the full container (header + checksummed payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_str(&self.kind);
        payload.put_u32(self.sections.len() as u32);
        for (name, bytes) in &self.sections {
            payload.put_str(name);
            payload.put_usize(bytes.len());
            payload.buf.extend_from_slice(bytes);
        }
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Writes the container to `path` atomically: a `.tmp` sibling is
    /// written and fsynced, then renamed over `path`; the parent
    /// directory is fsynced best-effort so the rename itself is durable.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure; `path` is
    /// never left holding a partial snapshot.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Durability of the rename: fsync the containing directory.
        // Best-effort — some filesystems refuse to open directories.
        if let Some(dir) = path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// A verified, parsed snapshot: checksum and version checked up front,
/// sections retrievable by name.
#[derive(Debug, Clone)]
pub struct SnapshotArchive {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotArchive {
    /// Parses and verifies a container produced by
    /// [`SnapshotBuilder::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`PersistError::BadMagic`] / [`PersistError::UnsupportedVersion`] /
    /// [`PersistError::Truncated`] / [`PersistError::ChecksumMismatch`]
    /// on an invalid container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < 28 {
            return Err(PersistError::Truncated {
                needed: 28,
                available: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let mut r = ByteReader::new(&bytes[8..]);
        let version = r.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let payload_len = r.take_usize()?;
        let checksum = r.take_u64()?;
        if r.remaining() != payload_len {
            return Err(PersistError::Truncated {
                needed: payload_len,
                available: r.remaining(),
            });
        }
        let payload = &bytes[28..];
        let found = fnv1a(payload);
        if found != checksum {
            return Err(PersistError::ChecksumMismatch {
                expected: checksum,
                found,
            });
        }
        let mut r = ByteReader::new(payload);
        let kind = r.take_str()?;
        let n = r.take_u32()? as usize;
        let mut sections = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.take_str()?;
            let len = r.take_usize()?;
            let bytes = r.take(len)?.to_vec();
            sections.push((name, bytes));
        }
        Ok(SnapshotArchive { kind, sections })
    }

    /// Reads and verifies a snapshot file.
    ///
    /// # Errors
    ///
    /// As [`from_bytes`](Self::from_bytes), plus [`PersistError::Io`].
    pub fn read(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// The kind tag the snapshot was built with.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Names of all sections, in write order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Whether a section exists.
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// A reader over a named section's payload.
    ///
    /// # Errors
    ///
    /// [`PersistError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<ByteReader<'_>, PersistError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, bytes)| ByteReader::new(bytes))
            .ok_or_else(|| PersistError::MissingSection(name.to_string()))
    }

    /// Restores one [`Snapshot`] value from a named section.
    ///
    /// # Errors
    ///
    /// [`PersistError::MissingSection`] or the value's restore error.
    pub fn get<T: Snapshot>(&self, name: &str) -> Result<T, PersistError> {
        T::restore(&mut self.section(name)?)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip_is_bit_exact() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(44);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_f64s(&[1.5, -2.25, 1e-300]);
        w.put_u64s(&[1, 2, 3]);
        w.put_usizes(&[9, 8]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 44);
        assert_eq!(r.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_str().unwrap(), "héllo");
        assert_eq!(r.take_f64s().unwrap(), vec![1.5, -2.25, 1e-300]);
        assert_eq!(r.take_u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_usizes().unwrap(), vec![9, 8]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_past_end_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.take_u64(),
            Err(PersistError::Truncated {
                needed: 8,
                available: 2
            })
        ));
    }

    #[test]
    fn oversized_slice_length_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2); // claims ~9e18 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_f64s(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn container_roundtrip() {
        let mut b = SnapshotBuilder::new("test.kind");
        b.section("alpha", |w| w.put_u64(1));
        b.section("beta", |w| w.put_str("two"));
        let bytes = b.to_bytes();
        let a = SnapshotArchive::from_bytes(&bytes).unwrap();
        assert_eq!(a.kind(), "test.kind");
        assert_eq!(a.section_names(), vec!["alpha", "beta"]);
        assert!(a.has("alpha") && !a.has("gamma"));
        assert_eq!(a.section("alpha").unwrap().take_u64().unwrap(), 1);
        assert_eq!(a.section("beta").unwrap().take_str().unwrap(), "two");
        assert!(matches!(
            a.section("gamma"),
            Err(PersistError::MissingSection(_))
        ));
    }

    #[test]
    fn corrupted_byte_is_checksum_mismatch() {
        let mut b = SnapshotBuilder::new("test");
        b.section("s", |w| w.put_f64s(&[1.0, 2.0, 3.0]));
        let mut bytes = b.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            SnapshotArchive::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_container_is_truncation_error() {
        let mut b = SnapshotBuilder::new("test");
        b.section("s", |w| w.put_u64s(&[1, 2, 3, 4]));
        let bytes = b.to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 27, 5] {
            let err = SnapshotArchive::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated { .. } | PersistError::BadMagic),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let bytes = SnapshotBuilder::new("t").to_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            SnapshotArchive::from_bytes(&bad_magic),
            Err(PersistError::BadMagic)
        ));
        let mut bad_version = bytes;
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            SnapshotArchive::from_bytes(&bad_version),
            Err(PersistError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("yoso-persist-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let mut b = SnapshotBuilder::new("t");
        b.section("v", |w| w.put_u64(17));
        b.write_atomic(&path).unwrap();
        // Overwrite (the rolling-checkpoint pattern) also succeeds.
        let mut b2 = SnapshotBuilder::new("t");
        b2.section("v", |w| w.put_u64(18));
        b2.write_atomic(&path).unwrap();
        let a = SnapshotArchive::read(&path).unwrap();
        assert_eq!(a.section("v").unwrap().take_u64().unwrap(), 18);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_display_and_source_chain() {
        let io = PersistError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&io).is_some());
        assert!(io.to_string().contains("gone"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::MissingSection("x".into())
            .to_string()
            .contains('x'));
    }
}
