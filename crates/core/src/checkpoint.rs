//! Session checkpointing: [`Snapshot`] codecs for the core search types
//! and the on-disk checkpoint container a [`SearchSession`] writes while
//! running and reads back when resuming.
//!
//! A checkpoint captures everything the search loop needs to continue
//! bit-identically after a crash: the configuration (strategy, search
//! parameters, reward), the full evaluated history, the session RNG
//! stream, the controller (weights, Adam moments and baseline — RL
//! only) and the global simulator cache. Files are written atomically
//! via [`SnapshotBuilder::write_atomic`], so a crash mid-write leaves
//! the previous checkpoint intact.
//!
//! [`SearchSession`]: crate::session::SearchSession

use crate::error::Error;
use crate::evaluation::Evaluation;
use crate::reward::{Constraints, NonFiniteMetric, RewardConfig, RewardForm};
use crate::search::{QuarantineEntry, SearchConfig, SearchRecord};
use crate::session::Strategy;
use std::path::{Path, PathBuf};
use yoso_arch::DesignPoint;
use yoso_controller::Controller;
use yoso_persist::{
    ByteReader, ByteWriter, PersistError, Snapshot, SnapshotArchive, SnapshotBuilder,
};

/// The container kind string of session checkpoints.
pub const CHECKPOINT_KIND: &str = "yoso.session";

/// Prefix of checkpoint file names (`ckpt_00000015.snap`).
const CKPT_PREFIX: &str = "ckpt_";
/// Extension of checkpoint file names.
const CKPT_SUFFIX: &str = ".snap";

/// The checkpoint file name for a given iteration count.
pub fn checkpoint_file_name(iteration: usize) -> String {
    format!("{CKPT_PREFIX}{iteration:08}{CKPT_SUFFIX}")
}

/// The newest checkpoint (highest iteration) in a directory, or `None`
/// when the directory holds no checkpoint files.
///
/// # Errors
///
/// Returns [`Error::Persist`] when the directory cannot be read.
pub fn latest_checkpoint(dir: impl AsRef<Path>) -> Result<Option<PathBuf>, Error> {
    let mut best: Option<(String, PathBuf)> = None;
    for entry in std::fs::read_dir(dir.as_ref())? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(CKPT_PREFIX) && name.ends_with(CKPT_SUFFIX) {
            // Zero-padded fixed-width iteration numbers sort lexically.
            if best.as_ref().is_none_or(|(b, _)| name > *b) {
                best = Some((name, entry.path()));
            }
        }
    }
    Ok(best.map(|(_, p)| p))
}

impl Snapshot for Strategy {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            Strategy::Rl => 0,
            Strategy::Evolution => 1,
            Strategy::Random => 2,
        });
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(Strategy::Rl),
            1 => Ok(Strategy::Evolution),
            2 => Ok(Strategy::Random),
            t => Err(PersistError::Malformed(format!("strategy tag {t}"))),
        }
    }
}

impl Snapshot for Evaluation {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64(self.accuracy);
        w.put_f64(self.latency_ms);
        w.put_f64(self.energy_mj);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Evaluation {
            accuracy: r.take_f64()?,
            latency_ms: r.take_f64()?,
            energy_mj: r.take_f64()?,
        })
    }
}

impl Snapshot for SearchRecord {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.iteration);
        self.point.snapshot(w);
        self.eval.snapshot(w);
        w.put_f64(self.reward);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(SearchRecord {
            iteration: r.take_usize()?,
            point: DesignPoint::restore(r)?,
            eval: Evaluation::restore(r)?,
            reward: r.take_f64()?,
        })
    }
}

impl Snapshot for NonFiniteMetric {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            NonFiniteMetric::Accuracy => 0,
            NonFiniteMetric::LatencyMs => 1,
            NonFiniteMetric::EnergyMj => 2,
            NonFiniteMetric::Reward => 3,
        });
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(NonFiniteMetric::Accuracy),
            1 => Ok(NonFiniteMetric::LatencyMs),
            2 => Ok(NonFiniteMetric::EnergyMj),
            3 => Ok(NonFiniteMetric::Reward),
            t => Err(PersistError::Malformed(format!(
                "non-finite-metric tag {t}"
            ))),
        }
    }
}

impl Snapshot for QuarantineEntry {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.iteration);
        self.point.snapshot(w);
        match &self.actions {
            Some(actions) => {
                w.put_bool(true);
                w.put_usize(actions.len());
                for &a in actions {
                    w.put_usize(a);
                }
            }
            None => w.put_bool(false),
        }
        self.eval.snapshot(w);
        self.reason.snapshot(w);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let iteration = r.take_usize()?;
        let point = DesignPoint::restore(r)?;
        let actions = if r.take_bool()? {
            let n = r.take_usize()?;
            let mut actions = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                actions.push(r.take_usize()?);
            }
            Some(actions)
        } else {
            None
        };
        Ok(QuarantineEntry {
            iteration,
            point,
            actions,
            eval: Evaluation::restore(r)?,
            reason: NonFiniteMetric::restore(r)?,
        })
    }
}

impl Snapshot for SearchConfig {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.iterations);
        w.put_usize(self.rollouts_per_update);
        w.put_u64(self.seed);
        w.put_usize(self.population);
        w.put_usize(self.tournament);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(SearchConfig {
            iterations: r.take_usize()?,
            rollouts_per_update: r.take_usize()?,
            seed: r.take_u64()?,
            population: r.take_usize()?,
            tournament: r.take_usize()?,
        })
    }
}

impl Snapshot for Constraints {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64(self.t_lat_ms);
        w.put_f64(self.t_eer_mj);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Constraints {
            t_lat_ms: r.take_f64()?,
            t_eer_mj: r.take_f64()?,
        })
    }
}

impl Snapshot for RewardForm {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            RewardForm::WeightedProduct => 0,
            RewardForm::Additive => 1,
        });
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(RewardForm::WeightedProduct),
            1 => Ok(RewardForm::Additive),
            t => Err(PersistError::Malformed(format!("reward-form tag {t}"))),
        }
    }
}

impl Snapshot for RewardConfig {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64(self.alpha1);
        w.put_f64(self.omega1);
        w.put_f64(self.alpha2);
        w.put_f64(self.omega2);
        self.constraints.snapshot(w);
        self.form.snapshot(w);
        w.put_bool(self.hard_constraints);
        w.put_bool(self.saturate_below_threshold);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(RewardConfig {
            alpha1: r.take_f64()?,
            omega1: r.take_f64()?,
            alpha2: r.take_f64()?,
            omega2: r.take_f64()?,
            constraints: Constraints::restore(r)?,
            form: RewardForm::restore(r)?,
            hard_constraints: r.take_bool()?,
            saturate_below_threshold: r.take_bool()?,
        })
    }
}

/// Everything a [`SearchSession`] needs to continue a run: strategy,
/// configuration, reward, evaluated history, RNG stream and (for RL)
/// the controller. The global simulator cache rides along as a warm-up
/// section — its entries are pure functions of their keys, so importing
/// them never changes observable values, only turns misses into hits.
///
/// [`SearchSession`]: crate::session::SearchSession
pub struct SessionCheckpoint {
    /// Which search algorithm the run uses.
    pub strategy: Strategy,
    /// `Evaluator::name()` of the evaluator the run used; resume
    /// validates it against the newly supplied evaluator.
    pub evaluator: String,
    /// The checkpoint cadence the run was configured with (0 = none).
    pub checkpoint_every: usize,
    /// Search-loop parameters.
    pub config: SearchConfig,
    /// Reward configuration.
    pub reward: RewardConfig,
    /// REINFORCE updates applied so far (RL only; 0 otherwise).
    pub update_index: u64,
    /// Every candidate evaluated so far, in order.
    pub history: Vec<SearchRecord>,
    /// Candidates quarantined for non-finite metrics so far (empty on a
    /// fault-free run; stored as an optional section, so fault-free
    /// checkpoints are byte-identical to pre-fault-tolerance ones).
    pub quarantine: Vec<QuarantineEntry>,
    /// The session RNG stream (xoshiro256++ state).
    pub rng_state: [u64; 4],
    /// The LSTM controller — weights, Adam moments, baseline (RL only).
    pub controller: Option<Controller>,
}

/// A borrowed view of the session state to checkpoint — what the search
/// loop hands to [`CheckpointWriter::write_to`] at each boundary without
/// cloning the history or the controller.
pub struct CheckpointWriter<'a> {
    /// Which search algorithm the run uses.
    pub strategy: Strategy,
    /// `Evaluator::name()` of the running evaluator.
    pub evaluator: &'a str,
    /// The configured checkpoint cadence (0 = none).
    pub checkpoint_every: usize,
    /// Search-loop parameters.
    pub config: &'a SearchConfig,
    /// Reward configuration.
    pub reward: &'a RewardConfig,
    /// REINFORCE updates applied so far.
    pub update_index: u64,
    /// Every candidate evaluated so far.
    pub history: &'a [SearchRecord],
    /// The quarantine ledger (written only when non-empty).
    pub quarantine: &'a [QuarantineEntry],
    /// The session RNG stream.
    pub rng_state: [u64; 4],
    /// The LSTM controller (RL only).
    pub controller: Option<&'a Controller>,
}

impl CheckpointWriter<'_> {
    /// Serializes and writes the checkpoint atomically.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] when the file cannot be written.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut b = SnapshotBuilder::new(CHECKPOINT_KIND);
        b.section("meta", |w| {
            self.strategy.snapshot(w);
            w.put_str(self.evaluator);
            w.put_usize(self.checkpoint_every);
            w.put_u64(self.update_index);
        });
        b.put("config", self.config);
        b.put("reward", self.reward);
        b.section("history", |w| {
            w.put_usize(self.history.len());
            for rec in self.history {
                rec.snapshot(w);
            }
        });
        if !self.quarantine.is_empty() {
            b.section("quarantine", |w| {
                w.put_usize(self.quarantine.len());
                for q in self.quarantine {
                    q.snapshot(w);
                }
            });
        }
        b.section("rng", |w| w.put_u64s(&self.rng_state));
        if let Some(ctrl) = self.controller {
            b.put("controller", ctrl);
        }
        b.section("sim_cache", yoso_accel::cache::export);
        b.write_atomic(path)
    }
}

impl SessionCheckpoint {
    /// Serializes and writes the checkpoint atomically.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] when the file cannot be written.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        CheckpointWriter {
            strategy: self.strategy,
            evaluator: &self.evaluator,
            checkpoint_every: self.checkpoint_every,
            config: &self.config,
            reward: &self.reward,
            update_index: self.update_index,
            history: &self.history,
            quarantine: &self.quarantine,
            rng_state: self.rng_state,
            controller: self.controller.as_ref(),
        }
        .write_to(path)
    }

    /// Reads a checkpoint back and imports its simulator-cache section
    /// into the global cache.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on I/O failure, checksum mismatch,
    /// truncation or any malformed section.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let archive = SnapshotArchive::read(path)?;
        if archive.kind() != CHECKPOINT_KIND {
            return Err(PersistError::Malformed(format!(
                "expected a `{CHECKPOINT_KIND}` snapshot, found `{}`",
                archive.kind()
            )));
        }
        let mut meta = archive.section("meta")?;
        let strategy = Strategy::restore(&mut meta)?;
        let evaluator = meta.take_str()?;
        let checkpoint_every = meta.take_usize()?;
        let update_index = meta.take_u64()?;
        let config: SearchConfig = archive.get("config")?;
        let reward: RewardConfig = archive.get("reward")?;
        let mut hist = archive.section("history")?;
        let n = hist.take_usize()?;
        let mut history = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            history.push(SearchRecord::restore(&mut hist)?);
        }
        let mut rng = archive.section("rng")?;
        let rng_state: [u64; 4] = rng
            .take_u64s()?
            .try_into()
            .map_err(|_| PersistError::Malformed("rng state is not 4 words".into()))?;
        let quarantine = if archive.has("quarantine") {
            let mut q = archive.section("quarantine")?;
            let n = q.take_usize()?;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                entries.push(QuarantineEntry::restore(&mut q)?);
            }
            entries
        } else {
            Vec::new()
        };
        let controller = if archive.has("controller") {
            Some(archive.get("controller")?)
        } else {
            None
        };
        if archive.has("sim_cache") {
            yoso_accel::cache::import(&mut archive.section("sim_cache")?)?;
        }
        Ok(SessionCheckpoint {
            strategy,
            evaluator,
            checkpoint_every,
            config,
            reward,
            update_index,
            history,
            quarantine,
            rng_state,
            controller,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_history(n: usize) -> Vec<SearchRecord> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n)
            .map(|i| SearchRecord {
                iteration: i,
                point: DesignPoint::random(&mut rng),
                eval: Evaluation {
                    accuracy: 0.5 + i as f64 * 1e-3,
                    latency_ms: 1.0 + i as f64,
                    energy_mj: 2.0 + i as f64,
                },
                reward: 0.25 * i as f64,
            })
            .collect()
    }

    fn sample_checkpoint() -> SessionCheckpoint {
        SessionCheckpoint {
            strategy: Strategy::Evolution,
            evaluator: "surrogate".into(),
            checkpoint_every: 5,
            config: SearchConfig::builder().iterations(40).seed(3).build(),
            reward: RewardConfig::balanced(Constraints::paper()),
            update_index: 0,
            history: sample_history(12),
            quarantine: Vec::new(),
            rng_state: [1, 2, 3, 4],
            controller: None,
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("yoso-ckpt-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(checkpoint_file_name(12));
        let ck = sample_checkpoint();
        ck.write_to(&path).unwrap();
        let back = SessionCheckpoint::read_from(&path).unwrap();
        assert_eq!(back.strategy, ck.strategy);
        assert_eq!(back.evaluator, ck.evaluator);
        assert_eq!(back.checkpoint_every, ck.checkpoint_every);
        assert_eq!(back.config, ck.config);
        assert_eq!(back.reward, ck.reward);
        assert_eq!(back.history, ck.history);
        assert_eq!(back.rng_state, ck.rng_state);
        assert!(back.controller.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checkpoint_is_rejected_with_typed_error() {
        let dir = std::env::temp_dir().join(format!("yoso-ckpt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(checkpoint_file_name(3));
        sample_checkpoint().write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SessionCheckpoint::read_from(&path),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        // Truncation is equally typed, never a panic.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(SessionCheckpoint::read_from(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_section_roundtrips_raw_non_finite_observations() {
        let dir = std::env::temp_dir().join(format!("yoso-ckpt-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(checkpoint_file_name(9));
        let mut rng = StdRng::seed_from_u64(11);
        let mut ck = sample_checkpoint();
        ck.quarantine = vec![
            QuarantineEntry {
                iteration: 3,
                point: DesignPoint::random(&mut rng),
                actions: Some(vec![1, 4, 0, 7]),
                eval: Evaluation {
                    accuracy: 0.9,
                    latency_ms: f64::NAN,
                    energy_mj: f64::INFINITY,
                },
                reason: NonFiniteMetric::LatencyMs,
            },
            QuarantineEntry {
                iteration: 7,
                point: DesignPoint::random(&mut rng),
                actions: None,
                eval: Evaluation {
                    accuracy: 0.8,
                    latency_ms: 1.0,
                    energy_mj: 2.0,
                },
                reason: NonFiniteMetric::Reward,
            },
        ];
        ck.write_to(&path).unwrap();
        let back = SessionCheckpoint::read_from(&path).unwrap();
        // QuarantineEntry equality is bit-exact on the raw evaluation, so
        // NaN/Inf observations survive the disk roundtrip comparably.
        assert_eq!(back.quarantine, ck.quarantine);
        // A fault-free checkpoint omits the section entirely.
        ck.quarantine.clear();
        ck.write_to(&path).unwrap();
        let back = SessionCheckpoint::read_from(&path).unwrap();
        assert!(back.quarantine.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_checkpoint_picks_highest_iteration() {
        let dir = std::env::temp_dir().join(format!("yoso-ckpt-latest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        for it in [5usize, 25, 10] {
            sample_checkpoint()
                .write_to(dir.join(checkpoint_file_name(it)))
                .unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let latest = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(
            latest.file_name().unwrap().to_string_lossy(),
            checkpoint_file_name(25)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let dir = std::env::temp_dir().join(format!("yoso-ckpt-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("other.snap");
        let mut b = SnapshotBuilder::new("yoso.other");
        b.section("meta", |w| w.put_u8(0));
        b.write_atomic(&path).unwrap();
        assert!(matches!(
            SessionCheckpoint::read_from(&path),
            Err(PersistError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn core_types_roundtrip_bit_identically() {
        let mut w = ByteWriter::new();
        let cfg = SearchConfig::builder()
            .iterations(123)
            .rollouts_per_update(7)
            .seed(99)
            .population(31)
            .tournament(9)
            .build();
        cfg.snapshot(&mut w);
        let mut rc = RewardConfig::latency_focused(Constraints {
            t_lat_ms: 0.125,
            t_eer_mj: 7.75,
        });
        rc.form = RewardForm::Additive;
        rc.hard_constraints = true;
        rc.snapshot(&mut w);
        Strategy::Random.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(SearchConfig::restore(&mut r).unwrap(), cfg);
        assert_eq!(RewardConfig::restore(&mut r).unwrap(), rc);
        assert_eq!(Strategy::restore(&mut r).unwrap(), Strategy::Random);
        assert_eq!(r.remaining(), 0);
    }
}
