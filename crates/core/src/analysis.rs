//! Post-search analysis utilities: feasibility filtering, hypervolume
//! indicator and CSV persistence of search histories.

use crate::evaluation::Evaluation;
use crate::reward::Constraints;
use crate::search::{SearchOutcome, SearchRecord};
use std::io::Write;
use std::path::Path;

/// Records satisfying the thresholds (the paper screens out the rest
/// before comparing designs).
pub fn feasible<'a>(
    outcome: &'a SearchOutcome,
    constraints: &Constraints,
) -> Vec<&'a SearchRecord> {
    outcome
        .history
        .iter()
        .filter(|r| constraints.satisfied(r.eval.latency_ms, r.eval.energy_mj))
        .collect()
}

/// 2-D hypervolume (to be *maximized*) of an accuracy-vs-cost point set
/// with respect to a reference `(cost_ref, acc_ref = 0)` corner: the area
/// dominated by the Pareto front in (lower cost, higher accuracy) space.
///
/// # Panics
///
/// Panics if `cost_ref <= 0`.
pub fn hypervolume(points: &[(f64, f64)], cost_ref: f64) -> f64 {
    assert!(cost_ref > 0.0);
    // Keep only points within the reference box.
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(c, a)| c <= cost_ref && a >= 0.0)
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by cost ascending; sweep keeping the running max accuracy.
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut volume = 0.0;
    let mut best_acc: f64 = 0.0;
    // Walk from the cheapest point to the reference cost.
    let mut prev_cost = pts[0].0;
    let mut i = 0;
    while i < pts.len() {
        let cost = pts[i].0;
        volume += best_acc * (cost - prev_cost);
        while i < pts.len() && pts[i].0 == cost {
            best_acc = best_acc.max(pts[i].1);
            i += 1;
        }
        prev_cost = cost;
    }
    volume += best_acc * (cost_ref - prev_cost);
    volume
}

/// Writes a search history to CSV (one row per candidate).
///
/// # Errors
///
/// Returns an I/O error on write failure.
pub fn save_history_csv(outcome: &SearchOutcome, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "iteration,accuracy,latency_ms,energy_mj,reward,hw")?;
    for r in &outcome.history {
        writeln!(
            f,
            "{},{},{},{},{},{}",
            r.iteration, r.eval.accuracy, r.eval.latency_ms, r.eval.energy_mj, r.reward, r.point.hw
        )?;
    }
    Ok(())
}

/// Writes the non-dominated Pareto archive to CSV (one row per front
/// entry, in the archive's canonical order), including the derived
/// area/power proxies so deployment-target filtering can be replayed
/// from the file alone.
///
/// # Errors
///
/// Returns an I/O error on write failure.
pub fn save_pareto_csv(outcome: &SearchOutcome, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "iteration,accuracy,latency_ms,energy_mj,reward,power_w,area_units,hw"
    )?;
    for r in outcome.pareto() {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{}",
            r.iteration,
            r.eval.accuracy,
            r.eval.latency_ms,
            r.eval.energy_mj,
            r.reward,
            crate::archive::power_w(&r.eval),
            crate::archive::area_units(&r.point.hw),
            r.point.hw
        )?;
    }
    Ok(())
}

/// Summary statistics of an evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalSummary {
    /// Mean accuracy.
    pub mean_accuracy: f64,
    /// Mean latency (ms).
    pub mean_latency_ms: f64,
    /// Mean energy (mJ).
    pub mean_energy_mj: f64,
    /// Count.
    pub count: usize,
}

/// Aggregates evaluations into means.
pub fn summarize<'a>(evals: impl IntoIterator<Item = &'a Evaluation>) -> EvalSummary {
    let mut s = EvalSummary::default();
    for e in evals {
        s.mean_accuracy += e.accuracy;
        s.mean_latency_ms += e.latency_ms;
        s.mean_energy_mj += e.energy_mj;
        s.count += 1;
    }
    if s.count > 0 {
        let n = s.count as f64;
        s.mean_accuracy /= n;
        s.mean_latency_ms /= n;
        s.mean_energy_mj /= n;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Evaluation;
    use yoso_arch::DesignPoint;

    fn rec(acc: f64, lat: f64, eer: f64) -> SearchRecord {
        use rand::{rngs::StdRng, SeedableRng};
        SearchRecord {
            iteration: 0,
            point: DesignPoint::random(&mut StdRng::seed_from_u64(0)),
            eval: Evaluation {
                accuracy: acc,
                latency_ms: lat,
                energy_mj: eer,
            },
            reward: acc,
        }
    }

    #[test]
    fn feasible_filters_correctly() {
        let outcome = SearchOutcome {
            history: vec![rec(0.9, 1.0, 5.0), rec(0.8, 3.0, 5.0), rec(0.7, 1.0, 20.0)],
            ..SearchOutcome::default()
        };
        let cons = Constraints {
            t_lat_ms: 2.0,
            t_eer_mj: 10.0,
        };
        let ok = feasible(&outcome, &cons);
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].eval.accuracy, 0.9);
    }

    #[test]
    fn hypervolume_simple_rectangle() {
        // One point (cost 1, acc 0.5) with ref cost 3: area = 0.5 * (3-1).
        let hv = hypervolume(&[(1.0, 0.5)], 3.0);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_dominated_point_adds_nothing() {
        let base = hypervolume(&[(1.0, 0.5)], 3.0);
        let with_dominated = hypervolume(&[(1.0, 0.5), (2.0, 0.3)], 3.0);
        assert!((base - with_dominated).abs() < 1e-12);
        // A non-dominated point adds area.
        let with_front = hypervolume(&[(1.0, 0.5), (2.0, 0.8)], 3.0);
        assert!(with_front > base);
    }

    #[test]
    fn hypervolume_empty_and_out_of_box() {
        assert_eq!(hypervolume(&[], 1.0), 0.0);
        assert_eq!(hypervolume(&[(5.0, 0.9)], 1.0), 0.0);
    }

    #[test]
    fn summarize_means() {
        let evals = [
            Evaluation {
                accuracy: 0.8,
                latency_ms: 1.0,
                energy_mj: 2.0,
            },
            Evaluation {
                accuracy: 0.6,
                latency_ms: 3.0,
                energy_mj: 4.0,
            },
        ];
        let s = summarize(evals.iter());
        assert_eq!(s.count, 2);
        assert!((s.mean_accuracy - 0.7).abs() < 1e-12);
        assert!((s.mean_latency_ms - 2.0).abs() < 1e-12);
        assert!((s.mean_energy_mj - 3.0).abs() < 1e-12);
    }

    #[test]
    fn save_history_roundtrip() {
        let outcome = SearchOutcome {
            history: vec![rec(0.9, 1.0, 5.0)],
            ..SearchOutcome::default()
        };
        let path = std::env::temp_dir().join("yoso_hist_test.csv");
        save_history_csv(&outcome, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("iteration,"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn save_pareto_writes_front_rows() {
        let outcome = SearchOutcome::from_parts(
            vec![rec(0.9, 1.0, 5.0), rec(0.8, 3.0, 6.0), rec(0.95, 0.5, 4.0)],
            Vec::new(),
        );
        let path = std::env::temp_dir().join("yoso_pareto_test.csv");
        save_pareto_csv(&outcome, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("iteration,"));
        // Third record dominates the other two: header + 1 row.
        assert_eq!(text.lines().count(), 1 + outcome.pareto().len());
        assert_eq!(outcome.pareto().len(), 1);
    }
}
