//! Design-space search: configuration, history bookkeeping, top-N
//! selection and Pareto-front extraction. The search loops themselves
//! live behind [`crate::session::SearchSession`], the single entry point
//! (the historical `rl_search`/`evolution_search`/`random_search` free
//! functions were deprecated in favor of the session builder and have
//! been removed).

use crate::archive::{FeasibilityCaps, Objective, ParetoArchive};
use crate::evaluation::Evaluation;
use crate::reward::NonFiniteMetric;
use yoso_arch::DesignPoint;

/// Sentinel reward recorded for quarantined candidates: finite (so
/// [`SearchOutcome::best`] and the running-best curve stay finite) but far
/// below any reachable reward, so a quarantined record can never win
/// selection, a tournament, or top-N.
pub const QUARANTINE_REWARD: f64 = -1e30;

/// One quarantined candidate: a design point whose evaluation or reward
/// came out non-finite (a simulator fault, a poisoned GP prediction, an
/// injected NaN, …). Quarantined candidates are kept out of the REINFORCE
/// baseline and recorded here with enough context to reproduce them.
///
/// Equality compares the raw evaluation **bit-exactly** (`f64::to_bits`),
/// so two ledgers holding the same NaN observations compare equal — the
/// ordinary IEEE rule `NaN != NaN` would make every faulted outcome
/// unequal to its own checkpoint-resumed replay.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Candidate index (0-based), aligned with the history record that
    /// carries the [`QUARANTINE_REWARD`] sentinel.
    pub iteration: usize,
    /// The offending design point.
    pub point: DesignPoint,
    /// The controller action sequence that produced it (RL strategy
    /// only; `None` for evolution/random candidates).
    pub actions: Option<Vec<usize>>,
    /// The (partially non-finite) evaluation as observed.
    pub eval: Evaluation,
    /// Which metric was non-finite.
    pub reason: NonFiniteMetric,
}

impl PartialEq for QuarantineEntry {
    fn eq(&self, other: &Self) -> bool {
        let bits = |e: &Evaluation| {
            (
                e.accuracy.to_bits(),
                e.latency_ms.to_bits(),
                e.energy_mj.to_bits(),
            )
        };
        self.iteration == other.iteration
            && self.point == other.point
            && self.actions == other.actions
            && bits(&self.eval) == bits(&other.eval)
            && self.reason == other.reason
    }
}

/// Search-loop parameters, shared by every [`Strategy`].
///
/// [`Strategy`]: crate::session::Strategy
///
/// Construct with [`SearchConfig::builder`] (or a struct literal with
/// `..SearchConfig::default()`); the defaults are the paper's settings.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Total candidate evaluations.
    pub iterations: usize,
    /// Rollouts per controller update (RL only).
    pub rollouts_per_update: usize,
    /// RNG / controller-init seed.
    pub seed: u64,
    /// Sliding-population size (evolution only).
    pub population: usize,
    /// Tournament size for parent selection (evolution only).
    pub tournament: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 2000,
            rollouts_per_update: 8,
            seed: 0,
            population: 50,
            tournament: 10,
        }
    }
}

impl SearchConfig {
    /// Starts a builder seeded with the paper defaults.
    pub fn builder() -> SearchConfigBuilder {
        SearchConfigBuilder::default()
    }
}

/// Builder for [`SearchConfig`]; every field starts at the paper default.
///
/// ```
/// use yoso_core::search::SearchConfig;
/// let cfg = SearchConfig::builder().iterations(500).seed(7).build();
/// assert_eq!(cfg.iterations, 500);
/// assert_eq!(cfg.rollouts_per_update, 8); // paper default kept
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchConfigBuilder {
    config: SearchConfig,
}

impl SearchConfigBuilder {
    /// Total candidate evaluations.
    #[must_use]
    pub fn iterations(mut self, n: usize) -> Self {
        self.config.iterations = n;
        self
    }

    /// Rollouts per controller update (RL only).
    #[must_use]
    pub fn rollouts_per_update(mut self, n: usize) -> Self {
        self.config.rollouts_per_update = n;
        self
    }

    /// RNG / controller-init seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sliding-population size (evolution only).
    #[must_use]
    pub fn population(mut self, n: usize) -> Self {
        self.config.population = n;
        self
    }

    /// Tournament size for parent selection (evolution only).
    #[must_use]
    pub fn tournament(mut self, n: usize) -> Self {
        self.config.tournament = n;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SearchConfig {
        self.config
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchRecord {
    /// Candidate index (0-based).
    pub iteration: usize,
    /// The design point.
    pub point: DesignPoint,
    /// Its fast evaluation.
    pub eval: Evaluation,
    /// Its reward under the configured objective.
    pub reward: f64,
}

/// Full search history plus the non-dominated Pareto archive maintained
/// over it.
///
/// The archive (see [`crate::archive`]) is the search's primary output:
/// where [`best`](SearchOutcome::best) answers one deployment target,
/// [`pareto`](SearchOutcome::pareto) /
/// [`top_k_by`](SearchOutcome::top_k_by) /
/// [`best_feasible`](SearchOutcome::best_feasible) answer many from the
/// same run. It is a pure function of the history, so derived equality
/// (used by the resume-equivalence tests) covers it with no extra
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchOutcome {
    /// Every evaluated candidate, in order. Quarantined candidates appear
    /// here too (keeping iteration numbering contiguous for resume) with
    /// the [`QUARANTINE_REWARD`] sentinel as their reward.
    pub history: Vec<SearchRecord>,
    /// Candidates quarantined for non-finite metrics, in iteration order.
    /// Empty on a fault-free run.
    pub quarantine: Vec<QuarantineEntry>,
    /// Non-dominated front over `(accuracy, latency, energy)`, maintained
    /// incrementally by [`record`](SearchOutcome::record).
    pub archive: ParetoArchive,
}

impl SearchOutcome {
    /// Rebuilds an outcome (including its archive) from checkpointed
    /// history and quarantine ledgers.
    pub fn from_parts(history: Vec<SearchRecord>, quarantine: Vec<QuarantineEntry>) -> Self {
        let archive = ParetoArchive::from_history(&history);
        SearchOutcome {
            history,
            quarantine,
            archive,
        }
    }

    /// Appends one evaluated candidate, offering it to the archive.
    pub fn record(&mut self, rec: SearchRecord) {
        self.archive.insert(rec);
        self.history.push(rec);
    }

    /// The highest-reward record.
    ///
    /// The reward is monotone in the archive's objectives (higher
    /// accuracy / lower latency / lower energy never lowers it), so the
    /// reward maximum always sits on the Pareto front; this delegates to
    /// the archive and only falls back to a history scan for outcomes
    /// whose archive is empty (manually assembled histories, or runs
    /// where every candidate was quarantined).
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    pub fn best(&self) -> &SearchRecord {
        self.archive
            .entries()
            .iter()
            .max_by(|a, b| a.reward.total_cmp(&b.reward))
            .or_else(|| {
                self.history
                    .iter()
                    .max_by(|a, b| a.reward.total_cmp(&b.reward))
            })
            .expect("non-empty search history")
    }

    /// The non-dominated records over `(accuracy, latency, energy)`, in
    /// the archive's canonical order.
    pub fn pareto(&self) -> &[SearchRecord] {
        self.archive.entries()
    }

    /// The `k` best archive entries along one objective axis.
    pub fn top_k_by(&self, objective: Objective, k: usize) -> Vec<SearchRecord> {
        self.archive.top_k_by(objective, k)
    }

    /// The highest-reward archive entry satisfying the feasibility caps,
    /// if any.
    pub fn best_feasible(&self, caps: &FeasibilityCaps) -> Option<&SearchRecord> {
        self.archive.best_feasible(caps)
    }

    /// The `n` highest-reward *distinct* design points (paper step 3
    /// selects the top-10 promising candidates).
    pub fn top_n(&self, n: usize) -> Vec<SearchRecord> {
        let mut sorted: Vec<&SearchRecord> = self.history.iter().collect();
        sorted.sort_by(|a, b| b.reward.total_cmp(&a.reward));
        let mut out: Vec<SearchRecord> = Vec::with_capacity(n);
        for r in sorted {
            if out.iter().all(|o| o.point != r.point) {
                out.push(*r);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// Running maximum of the reward (the Fig. 6(a) curve).
    pub fn running_best_reward(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.history
            .iter()
            .map(|r| {
                best = best.max(r.reward);
                best
            })
            .collect()
    }

    /// Pareto-optimal records for a `(cost, quality)` projection: a record
    /// is kept when no other record has lower cost *and* higher quality.
    pub fn pareto_by(&self, project: impl Fn(&SearchRecord) -> (f64, f64)) -> Vec<SearchRecord> {
        let pts: Vec<(f64, f64)> = self.history.iter().map(&project).collect();
        let mut out = Vec::new();
        for (i, r) in self.history.iter().enumerate() {
            let (ci, qi) = pts[i];
            let dominated = pts
                .iter()
                .enumerate()
                .any(|(j, &(cj, qj))| j != i && cj <= ci && qj >= qi && (cj < ci || qj > qi));
            if !dominated {
                out.push(*r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{Evaluator, SurrogateEvaluator};
    use crate::reward::RewardConfig;
    use crate::session::{SearchSession, Strategy};
    use yoso_arch::NetworkSkeleton;

    fn setup() -> (SurrogateEvaluator, RewardConfig) {
        let sk = NetworkSkeleton::tiny();
        let ev = SurrogateEvaluator::new(sk.clone());
        let cons = crate::evaluation::calibrate_constraints(&sk, 60, 0, 50.0);
        (ev, RewardConfig::balanced(cons))
    }

    fn run(
        evaluator: &dyn Evaluator,
        reward_cfg: &RewardConfig,
        cfg: &SearchConfig,
        strategy: Strategy,
    ) -> SearchOutcome {
        SearchSession::builder()
            .evaluator(evaluator)
            .reward(*reward_cfg)
            .config(cfg.clone())
            .strategy(strategy)
            .run()
            .expect("valid search configuration and infallible evaluator")
    }

    fn rl_search(ev: &dyn Evaluator, rc: &RewardConfig, cfg: &SearchConfig) -> SearchOutcome {
        run(ev, rc, cfg, Strategy::Rl)
    }

    fn evolution_search(
        ev: &dyn Evaluator,
        rc: &RewardConfig,
        cfg: &SearchConfig,
    ) -> SearchOutcome {
        run(ev, rc, cfg, Strategy::Evolution)
    }

    fn random_search(ev: &dyn Evaluator, rc: &RewardConfig, cfg: &SearchConfig) -> SearchOutcome {
        run(ev, rc, cfg, Strategy::Random)
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(SearchConfig::builder().build(), SearchConfig::default());
        let cfg = SearchConfig::builder()
            .iterations(10)
            .rollouts_per_update(2)
            .seed(42)
            .population(20)
            .tournament(5)
            .build();
        assert_eq!(cfg.iterations, 10);
        assert_eq!(cfg.rollouts_per_update, 2);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.population, 20);
        assert_eq!(cfg.tournament, 5);
    }

    #[test]
    fn rl_search_improves_over_iterations() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 600,
            rollouts_per_update: 8,
            seed: 1,
            ..SearchConfig::default()
        };
        let out = rl_search(&ev, &rc, &cfg);
        assert_eq!(out.history.len(), 600);
        // Mean reward of the last eighth beats the first eighth.
        let k = out.history.len() / 8;
        let first: f64 = out.history[..k].iter().map(|r| r.reward).sum::<f64>() / k as f64;
        let last: f64 = out.history[out.history.len() - k..]
            .iter()
            .map(|r| r.reward)
            .sum::<f64>()
            / k as f64;
        assert!(
            last > first,
            "RL did not improve: first {first:.4} last {last:.4}"
        );
    }

    #[test]
    fn rl_beats_random_on_average_tail() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 600,
            rollouts_per_update: 8,
            seed: 2,
            ..SearchConfig::default()
        };
        let rl = rl_search(&ev, &rc, &cfg);
        let rnd = random_search(&ev, &rc, &cfg);
        let tail = |o: &SearchOutcome| {
            let k = o.history.len() / 4;
            o.history[o.history.len() - k..]
                .iter()
                .map(|r| r.reward)
                .sum::<f64>()
                / k as f64
        };
        assert!(
            tail(&rl) > tail(&rnd),
            "rl tail {} vs random tail {}",
            tail(&rl),
            tail(&rnd)
        );
    }

    #[test]
    fn evolution_beats_random_tail() {
        let (ev, rc) = setup();
        let cfg = SearchConfig::builder()
            .iterations(600)
            .seed(9)
            .population(40)
            .tournament(8)
            .build();
        let evo = evolution_search(&ev, &rc, &cfg);
        let rnd = random_search(&ev, &rc, &cfg);
        assert_eq!(evo.history.len(), 600);
        let tail = |o: &SearchOutcome| {
            let k = o.history.len() / 4;
            o.history[o.history.len() - k..]
                .iter()
                .map(|r| r.reward)
                .sum::<f64>()
                / k as f64
        };
        assert!(
            tail(&evo) > tail(&rnd),
            "evolution tail {} vs random tail {}",
            tail(&evo),
            tail(&rnd)
        );
    }

    #[test]
    fn evolution_deterministic() {
        let (ev, rc) = setup();
        let cfg = SearchConfig::builder()
            .iterations(60)
            .rollouts_per_update(1)
            .seed(10)
            .population(16)
            .tournament(4)
            .build();
        let a = evolution_search(&ev, &rc, &cfg);
        let b = evolution_search(&ev, &rc, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn top_n_is_distinct_and_sorted() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 100,
            rollouts_per_update: 5,
            seed: 3,
            ..SearchConfig::default()
        };
        let out = random_search(&ev, &rc, &cfg);
        let top = out.top_n(10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].reward >= w[1].reward);
            assert_ne!(w[0].point, w[1].point);
        }
        assert_eq!(top[0].reward, out.best().reward);
    }

    #[test]
    fn running_best_monotone() {
        let (ev, rc) = setup();
        let out = random_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 50,
                rollouts_per_update: 1,
                seed: 4,
                ..SearchConfig::default()
            },
        );
        let rb = out.running_best_reward();
        for w in rb.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let (ev, rc) = setup();
        let out = random_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 80,
                rollouts_per_update: 1,
                seed: 5,
                ..SearchConfig::default()
            },
        );
        let front = out.pareto_by(|r| (r.eval.energy_mj, r.eval.accuracy));
        assert!(!front.is_empty());
        for a in &front {
            for b in &out.history {
                let dominates = b.eval.energy_mj <= a.eval.energy_mj
                    && b.eval.accuracy >= a.eval.accuracy
                    && (b.eval.energy_mj < a.eval.energy_mj || b.eval.accuracy > a.eval.accuracy);
                assert!(!dominates, "front member dominated");
            }
        }
    }

    #[test]
    fn archive_is_pure_function_of_history() {
        let (ev, rc) = setup();
        let out = random_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 120,
                rollouts_per_update: 1,
                seed: 11,
                ..SearchConfig::default()
            },
        );
        assert!(!out.archive.is_empty());
        let rebuilt = crate::archive::ParetoArchive::from_history(&out.history);
        assert_eq!(out.archive, rebuilt);
        assert_eq!(
            SearchOutcome::from_parts(out.history.clone(), out.quarantine.clone()),
            out
        );
    }

    #[test]
    fn best_delegates_to_archive_and_matches_history_scan() {
        let (ev, rc) = setup();
        let out = rl_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 80,
                rollouts_per_update: 4,
                seed: 12,
                ..SearchConfig::default()
            },
        );
        let scan = out
            .history
            .iter()
            .max_by(|a, b| a.reward.total_cmp(&b.reward))
            .unwrap();
        assert_eq!(out.best(), scan);
        // The champion sits on the Pareto front.
        assert!(out.pareto().contains(scan));
    }

    #[test]
    fn typed_queries_answer_multiple_targets_from_one_run() {
        use crate::archive::{FeasibilityCaps, Objective};
        let (ev, rc) = setup();
        let out = random_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 150,
                rollouts_per_update: 1,
                seed: 13,
                ..SearchConfig::default()
            },
        );
        let fastest = out.top_k_by(Objective::LatencyMs, 1);
        assert_eq!(fastest.len(), 1);
        for r in out.pareto() {
            assert!(fastest[0].eval.latency_ms <= r.eval.latency_ms);
        }
        let caps = FeasibilityCaps {
            max_latency_ms: Some(fastest[0].eval.latency_ms),
            ..FeasibilityCaps::none()
        };
        let feasible = out.best_feasible(&caps).expect("fastest point is feasible");
        assert!(feasible.eval.latency_ms <= fastest[0].eval.latency_ms);
        assert!(out.best_feasible(&FeasibilityCaps::none()).is_some());
    }

    #[test]
    fn searches_are_deterministic() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 40,
            rollouts_per_update: 4,
            seed: 6,
            ..SearchConfig::default()
        };
        let a = rl_search(&ev, &rc, &cfg);
        let b = rl_search(&ev, &rc, &cfg);
        assert_eq!(a, b);
    }
}
