//! Design-space search: the RL engine (paper step 2) and the random-search
//! baseline of Fig. 6(a), plus history bookkeeping, top-N selection and
//! Pareto-front extraction.

use crate::evaluation::{Evaluation, Evaluator};
use crate::reward::RewardConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_arch::{ActionSpace, DesignPoint};
use yoso_controller::{Controller, ControllerConfig, Rollout};

/// Search-loop parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Total candidate evaluations.
    pub iterations: usize,
    /// Rollouts per controller update (RL only).
    pub rollouts_per_update: usize,
    /// RNG / controller-init seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 2000,
            rollouts_per_update: 8,
            seed: 0,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchRecord {
    /// Candidate index (0-based).
    pub iteration: usize,
    /// The design point.
    pub point: DesignPoint,
    /// Its fast evaluation.
    pub eval: Evaluation,
    /// Its reward under the configured objective.
    pub reward: f64,
}

/// Full search history.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchOutcome {
    /// Every evaluated candidate, in order.
    pub history: Vec<SearchRecord>,
}

impl SearchOutcome {
    /// The highest-reward record.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    pub fn best(&self) -> &SearchRecord {
        self.history
            .iter()
            .max_by(|a, b| a.reward.total_cmp(&b.reward))
            .expect("non-empty search history")
    }

    /// The `n` highest-reward *distinct* design points (paper step 3
    /// selects the top-10 promising candidates).
    pub fn top_n(&self, n: usize) -> Vec<SearchRecord> {
        let mut sorted: Vec<&SearchRecord> = self.history.iter().collect();
        sorted.sort_by(|a, b| b.reward.total_cmp(&a.reward));
        let mut out: Vec<SearchRecord> = Vec::with_capacity(n);
        for r in sorted {
            if out.iter().all(|o| o.point != r.point) {
                out.push(*r);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// Running maximum of the reward (the Fig. 6(a) curve).
    pub fn running_best_reward(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.history
            .iter()
            .map(|r| {
                best = best.max(r.reward);
                best
            })
            .collect()
    }

    /// Pareto-optimal records for a `(cost, quality)` projection: a record
    /// is kept when no other record has lower cost *and* higher quality.
    pub fn pareto_by(&self, project: impl Fn(&SearchRecord) -> (f64, f64)) -> Vec<SearchRecord> {
        let pts: Vec<(f64, f64)> = self.history.iter().map(&project).collect();
        let mut out = Vec::new();
        for (i, r) in self.history.iter().enumerate() {
            let (ci, qi) = pts[i];
            let dominated = pts
                .iter()
                .enumerate()
                .any(|(j, &(cj, qj))| j != i && cj <= ci && qj >= qi && (cj < ci || qj > qi));
            if !dominated {
                out.push(*r);
            }
        }
        out
    }
}

fn record(
    evaluator: &dyn Evaluator,
    reward_cfg: &RewardConfig,
    iteration: usize,
    point: DesignPoint,
) -> SearchRecord {
    let eval = evaluator.evaluate(&point);
    let reward = reward_cfg.reward(eval.accuracy, eval.latency_ms, eval.energy_mj);
    SearchRecord {
        iteration,
        point,
        eval,
        reward,
    }
}

/// RL-based search (paper step 2): the LSTM controller generates joint
/// DNN + accelerator action sequences, the evaluator scores them, and
/// REINFORCE steers the policy towards higher composite reward.
///
/// Each update batch of rollouts is scored through
/// [`Evaluator::evaluate_batch`], so evaluators with a batched path
/// (the GP-backed [`crate::evaluation::FastEvaluator`]) amortize
/// prediction over the whole batch.
pub fn rl_search(
    evaluator: &dyn Evaluator,
    reward_cfg: &RewardConfig,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let space = ActionSpace::new();
    let mut ctrl_cfg = ControllerConfig::paper_default(space.vocab_sizes().to_vec());
    ctrl_cfg.seed = cfg.seed;
    let mut controller = Controller::new(ctrl_cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
    let mut outcome = SearchOutcome::default();
    let mut iteration = 0;
    while iteration < cfg.iterations {
        let batch_n = cfg.rollouts_per_update.min(cfg.iterations - iteration);
        let rollouts: Vec<Rollout> = (0..batch_n).map(|_| controller.sample(&mut rng)).collect();
        let points: Vec<DesignPoint> = rollouts
            .iter()
            .map(|r| {
                space
                    .decode(&r.actions)
                    .expect("controller emits in-vocabulary actions")
            })
            .collect();
        let evals = evaluator.evaluate_batch(&points);
        let mut batch: Vec<(Rollout, f64)> = Vec::with_capacity(batch_n);
        for (rollout, (point, eval)) in rollouts.into_iter().zip(points.into_iter().zip(evals)) {
            let reward = reward_cfg.reward(eval.accuracy, eval.latency_ms, eval.energy_mj);
            batch.push((rollout, reward));
            outcome.history.push(SearchRecord {
                iteration,
                point,
                eval,
                reward,
            });
            iteration += 1;
        }
        controller.update(&batch);
    }
    outcome
}

/// Regularized-evolution search (Real et al., the AmoebaNet method cited
/// as \[9\]) over the joint space — an extra baseline beyond the paper's
/// RL-vs-random comparison. Tournament selection over a sliding
/// population with single-symbol mutation through the action codec.
///
/// # Panics
///
/// Panics if `population` or `tournament` is zero.
pub fn evolution_search(
    evaluator: &dyn Evaluator,
    reward_cfg: &RewardConfig,
    cfg: &SearchConfig,
    population: usize,
    tournament: usize,
) -> SearchOutcome {
    assert!(population > 0 && tournament > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0_5EED);
    let mut outcome = SearchOutcome::default();
    let mut pop: std::collections::VecDeque<SearchRecord> = std::collections::VecDeque::new();
    for iteration in 0..cfg.iterations {
        let rec = if pop.len() < population {
            record(
                evaluator,
                reward_cfg,
                iteration,
                DesignPoint::random(&mut rng),
            )
        } else {
            // Tournament: sample `tournament` members, mutate the fittest.
            let parent = (0..tournament)
                .map(|_| &pop[rand::RngExt::random_range(&mut rng, 0..pop.len())])
                .max_by(|a, b| a.reward.total_cmp(&b.reward))
                .expect("tournament > 0");
            let child = parent.point.mutate(&mut rng);
            record(evaluator, reward_cfg, iteration, child)
        };
        pop.push_back(rec);
        if pop.len() > population {
            pop.pop_front(); // regularization: age-based removal
        }
        outcome.history.push(rec);
    }
    outcome
}

/// Uniform random search over the joint space — the Fig. 6(a) baseline.
pub fn random_search(
    evaluator: &dyn Evaluator,
    reward_cfg: &RewardConfig,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1234);
    let mut outcome = SearchOutcome::default();
    for iteration in 0..cfg.iterations {
        let point = DesignPoint::random(&mut rng);
        outcome
            .history
            .push(record(evaluator, reward_cfg, iteration, point));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::SurrogateEvaluator;
    use crate::reward::RewardConfig;
    use yoso_arch::NetworkSkeleton;

    fn setup() -> (SurrogateEvaluator, RewardConfig) {
        let sk = NetworkSkeleton::tiny();
        let ev = SurrogateEvaluator::new(sk.clone());
        let cons = crate::evaluation::calibrate_constraints(&sk, 60, 0, 50.0);
        (ev, RewardConfig::balanced(cons))
    }

    #[test]
    fn rl_search_improves_over_iterations() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 600,
            rollouts_per_update: 8,
            seed: 1,
        };
        let out = rl_search(&ev, &rc, &cfg);
        assert_eq!(out.history.len(), 600);
        // Mean reward of the last eighth beats the first eighth.
        let k = out.history.len() / 8;
        let first: f64 = out.history[..k].iter().map(|r| r.reward).sum::<f64>() / k as f64;
        let last: f64 = out.history[out.history.len() - k..]
            .iter()
            .map(|r| r.reward)
            .sum::<f64>()
            / k as f64;
        assert!(
            last > first,
            "RL did not improve: first {first:.4} last {last:.4}"
        );
    }

    #[test]
    fn rl_beats_random_on_average_tail() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 600,
            rollouts_per_update: 8,
            seed: 2,
        };
        let rl = rl_search(&ev, &rc, &cfg);
        let rnd = random_search(&ev, &rc, &cfg);
        let tail = |o: &SearchOutcome| {
            let k = o.history.len() / 4;
            o.history[o.history.len() - k..]
                .iter()
                .map(|r| r.reward)
                .sum::<f64>()
                / k as f64
        };
        assert!(
            tail(&rl) > tail(&rnd),
            "rl tail {} vs random tail {}",
            tail(&rl),
            tail(&rnd)
        );
    }

    #[test]
    fn evolution_beats_random_tail() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 600,
            rollouts_per_update: 8,
            seed: 9,
        };
        let evo = evolution_search(&ev, &rc, &cfg, 40, 8);
        let rnd = random_search(&ev, &rc, &cfg);
        assert_eq!(evo.history.len(), 600);
        let tail = |o: &SearchOutcome| {
            let k = o.history.len() / 4;
            o.history[o.history.len() - k..]
                .iter()
                .map(|r| r.reward)
                .sum::<f64>()
                / k as f64
        };
        assert!(
            tail(&evo) > tail(&rnd),
            "evolution tail {} vs random tail {}",
            tail(&evo),
            tail(&rnd)
        );
    }

    #[test]
    fn evolution_deterministic() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 60,
            rollouts_per_update: 1,
            seed: 10,
        };
        let a = evolution_search(&ev, &rc, &cfg, 16, 4);
        let b = evolution_search(&ev, &rc, &cfg, 16, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn top_n_is_distinct_and_sorted() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 100,
            rollouts_per_update: 5,
            seed: 3,
        };
        let out = random_search(&ev, &rc, &cfg);
        let top = out.top_n(10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].reward >= w[1].reward);
            assert_ne!(w[0].point, w[1].point);
        }
        assert_eq!(top[0].reward, out.best().reward);
    }

    #[test]
    fn running_best_monotone() {
        let (ev, rc) = setup();
        let out = random_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 50,
                rollouts_per_update: 1,
                seed: 4,
            },
        );
        let rb = out.running_best_reward();
        for w in rb.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let (ev, rc) = setup();
        let out = random_search(
            &ev,
            &rc,
            &SearchConfig {
                iterations: 80,
                rollouts_per_update: 1,
                seed: 5,
            },
        );
        let front = out.pareto_by(|r| (r.eval.energy_mj, r.eval.accuracy));
        assert!(!front.is_empty());
        for a in &front {
            for b in &out.history {
                let dominates = b.eval.energy_mj <= a.eval.energy_mj
                    && b.eval.accuracy >= a.eval.accuracy
                    && (b.eval.energy_mj < a.eval.energy_mj || b.eval.accuracy > a.eval.accuracy);
                assert!(!dominates, "front member dominated");
            }
        }
    }

    #[test]
    fn searches_are_deterministic() {
        let (ev, rc) = setup();
        let cfg = SearchConfig {
            iterations: 40,
            rollouts_per_update: 4,
            seed: 6,
        };
        let a = rl_search(&ev, &rc, &cfg);
        let b = rl_search(&ev, &rc, &cfg);
        assert_eq!(a, b);
    }
}
