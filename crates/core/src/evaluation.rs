//! Candidate evaluation: the fast evaluator (HyperNet + GP predictors,
//! paper step 1/2) and the accurate evaluator (full training + exact
//! simulation, paper step 3), plus a cheap deterministic surrogate for
//! large-scale search-behaviour experiments and tests.

use crate::error::Error;
use crate::reward::Constraints;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use yoso_accel::Simulator;
use yoso_arch::{DesignPoint, Genotype, NetworkSkeleton};
use yoso_dataset::SynthCifar;
use yoso_hypernet::{HyperNet, HyperTrainConfig};
use yoso_nn::{CellNetwork, QuantizedNetwork, TrainConfig};
pub use yoso_predictor::perf::SurrogateKind;
use yoso_predictor::perf::{collect_samples, PerfPredictor};

/// Numeric precision of the accuracy pass of candidate scoring.
///
/// [`Int8`](ScoringPrecision::Int8) runs the HyperNet validation pass on
/// the tape-free int8 path (`yoso_nn::QuantizedNetwork`): candidate
/// weights are quantized once per genotype and every batch is scored
/// with integer GEMMs — faster, at the cost of conv quantization error.
/// The `quantized_scoring` integration test pins the rank correlation
/// between the two precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringPrecision {
    /// Full-precision f32 forward (default).
    #[default]
    F32,
    /// Int8 conv path with per-channel weight quantization.
    Int8,
}

impl std::fmt::Display for ScoringPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScoringPrecision::F32 => "f32",
            ScoringPrecision::Int8 => "int8",
        })
    }
}

/// The three metrics the reward combines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Validation accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Latency in ms.
    pub latency_ms: f64,
    /// Energy in mJ.
    pub energy_mj: f64,
}

/// Scores a design point. Implementations must be deterministic for a
/// given point so that search histories are reproducible.
pub trait Evaluator: Send + Sync {
    /// Evaluates one candidate.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the implementation cannot score the point
    /// (the built-in evaluators are infallible once constructed, but
    /// implementations backed by external processes or files may fail).
    fn evaluate(&self, point: &DesignPoint) -> Result<Evaluation, Error>;

    /// Evaluates a batch of candidates.
    ///
    /// Must return exactly what per-point [`evaluate`](Self::evaluate)
    /// would — implementations override this only to score the batch
    /// more cheaply (e.g. one batched GP pass), never to change values.
    ///
    /// # Errors
    ///
    /// Returns the first per-point [`Error`], if any.
    fn evaluate_batch(&self, points: &[DesignPoint]) -> Result<Vec<Evaluation>, Error> {
        points.iter().map(|p| self.evaluate(p)).collect()
    }

    /// Short name for logs. Implementations that support several
    /// scoring precisions must fold the active one into the name so
    /// checkpoint resume detects a precision switch as an evaluator
    /// mismatch (scores are not comparable across precisions).
    fn name(&self) -> &'static str;

    /// Requests a scoring precision for subsequent accuracy queries.
    ///
    /// Default: ignored — evaluators that only implement f32 scoring
    /// silently keep using it. [`FastEvaluator`] honours
    /// [`ScoringPrecision::Int8`].
    fn set_scoring_precision(&self, _precision: ScoringPrecision) {}

    /// The precision accuracy queries currently run at.
    fn scoring_precision(&self) -> ScoringPrecision {
        ScoringPrecision::F32
    }

    /// Queries answered through a degraded-mode fallback (e.g. the
    /// memoized simulator standing in for a non-finite GP prediction)
    /// since construction. The session loop charges the per-run delta
    /// against its fault budget and reports it in the end-of-run
    /// subsystem summary. Default: the evaluator never degrades.
    fn degraded_queries(&self) -> u64 {
        0
    }
}

/// Calibrates thresholds from the distribution of random designs: the
/// given percentile (0..=100) of latency and energy over `n` samples.
///
/// The paper's absolute thresholds (1.2 ms / 9 mJ) are tied to its
/// CIFAR-scale workload; at our CPU scale the equivalent "moderately
/// demanding" constraint is a percentile of the random-design population.
pub fn calibrate_constraints(
    skeleton: &NetworkSkeleton,
    n: usize,
    seed: u64,
    percentile: f64,
) -> Constraints {
    let sim = Simulator::fast();
    let samples = collect_samples(skeleton, &sim, n, seed);
    let mut lats: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let mut eers: Vec<f64> = samples.iter().map(|s| s.energy_mj).collect();
    lats.sort_by(|a, b| a.total_cmp(b));
    eers.sort_by(|a, b| a.total_cmp(b));
    let idx = ((percentile / 100.0) * (n.saturating_sub(1)) as f64).round() as usize;
    Constraints {
        t_lat_ms: lats[idx.min(n - 1)],
        t_eer_mj: eers[idx.min(n - 1)],
    }
}

/// Cached compiled-network summary: statistics + cell output arities.
type StatsEntry = (yoso_arch::NetworkStats, (usize, usize));

/// The paper's fast evaluator: accuracy from the trained HyperNet
/// (weight inheritance, single test run) and latency/energy from the
/// Gaussian-process predictors.
pub struct FastEvaluator {
    hyper: HyperNet,
    predictor: PerfPredictor,
    data: SynthCifar,
    /// Validation examples used per accuracy query (caps cost).
    pub eval_subset: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    acc_cache: RwLock<HashMap<Genotype, f64>>,
    /// Int8 accuracies live in their own cache: the two precisions give
    /// different numbers, and toggling precision mid-run must not serve
    /// stale entries from the other path.
    acc_cache_int8: RwLock<HashMap<Genotype, f64>>,
    /// Active [`ScoringPrecision`] as its discriminant (0 = f32,
    /// 1 = int8); atomic so `&self` scoring calls can read it.
    precision: AtomicU8,
    stats_cache: RwLock<HashMap<Genotype, StatsEntry>>,
    /// Graceful-degradation substrate: when a GP prediction comes back
    /// non-finite, the query falls back to this memoized fast simulator.
    fallback_sim: Simulator,
    degraded: AtomicU64,
}

impl FastEvaluator {
    /// Assembles a fast evaluator from already-built parts.
    pub fn from_parts(hyper: HyperNet, predictor: PerfPredictor, data: SynthCifar) -> Self {
        FastEvaluator {
            hyper,
            predictor,
            data,
            eval_subset: 256,
            eval_batch: 128,
            acc_cache: RwLock::new(HashMap::new()),
            acc_cache_int8: RwLock::new(HashMap::new()),
            precision: AtomicU8::new(0),
            stats_cache: RwLock::new(HashMap::new()),
            fallback_sim: Simulator::fast(),
            degraded: AtomicU64::new(0),
        }
    }

    /// Paper step 1 — "fast evaluator construction": trains the HyperNet
    /// with uniform sampling and fits the GP predictors on simulator
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Fit`] when the performance-predictor fit fails
    /// (e.g. `predictor_samples == 0`).
    pub fn build(
        skeleton: &NetworkSkeleton,
        data: &SynthCifar,
        hyper_cfg: &HyperTrainConfig,
        predictor_samples: usize,
        seed: u64,
    ) -> Result<Self, Error> {
        Self::build_with_surrogate(
            skeleton,
            data,
            hyper_cfg,
            predictor_samples,
            seed,
            SurrogateKind::Exact,
        )
    }

    /// [`build`](Self::build) with an explicit performance-surrogate
    /// backend: [`SurrogateKind::Sparse`] swaps the O(n³) exact GPs for
    /// subset-of-regressors approximations that absorb unbounded
    /// observation volumes (the `--surrogate` bench flag ends up here).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Fit`] when the performance-predictor fit fails
    /// (e.g. `predictor_samples == 0`).
    pub fn build_with_surrogate(
        skeleton: &NetworkSkeleton,
        data: &SynthCifar,
        hyper_cfg: &HyperTrainConfig,
        predictor_samples: usize,
        seed: u64,
        surrogate: SurrogateKind,
    ) -> Result<Self, Error> {
        let mut hyper = HyperNet::new(skeleton.clone(), seed);
        hyper.train(data, hyper_cfg);
        let sim = Simulator::exact();
        let samples = collect_samples(skeleton, &sim, predictor_samples, seed ^ 0x5a5a);
        let predictor = PerfPredictor::train_with(skeleton, &samples, surrogate)?;
        Ok(Self::from_parts(hyper, predictor, data.clone()))
    }

    /// The wrapped HyperNet.
    pub fn hypernet(&self) -> &HyperNet {
        &self.hyper
    }

    /// The wrapped performance predictor.
    pub fn predictor(&self) -> &PerfPredictor {
        &self.predictor
    }

    fn accuracy_of(&self, genotype: &Genotype) -> f64 {
        match self.scoring_precision() {
            ScoringPrecision::F32 => self.accuracy_of_f32(genotype),
            ScoringPrecision::Int8 => self.accuracy_of_int8(genotype),
        }
    }

    fn accuracy_of_f32(&self, genotype: &Genotype) -> f64 {
        if let Some(&a) = self.acc_cache.read().get(genotype) {
            return a;
        }
        let plan = self.hyper.skeleton().compile(genotype);
        let provider = self.hyper.provider(&plan);
        let acc = self.subset_accuracy(|images, labels| {
            let mut g = yoso_tensor::Graph::new();
            let logits =
                yoso_nn::forward_network(&plan, &mut g, self.hyper.store(), &provider, images);
            yoso_tensor::accuracy(g.value(logits), labels)
        });
        self.acc_cache.write().insert(*genotype, acc);
        acc
    }

    /// Int8 twin of [`accuracy_of_f32`](Self::accuracy_of_f32): the
    /// candidate's inherited weights are quantized once into a
    /// [`QuantizedNetwork`], then the exact same deterministic subset is
    /// scored batch-by-batch through the integer conv path.
    fn accuracy_of_int8(&self, genotype: &Genotype) -> f64 {
        if let Some(&a) = self.acc_cache_int8.read().get(genotype) {
            return a;
        }
        let plan = self.hyper.skeleton().compile(genotype);
        let provider = self.hyper.provider(&plan);
        let qnet = QuantizedNetwork::prepare(&plan, self.hyper.store(), &provider);
        let acc = self.subset_accuracy(|images, labels| {
            yoso_tensor::accuracy(&qnet.forward(&images), labels)
        });
        self.acc_cache_int8.write().insert(*genotype, acc);
        acc
    }

    /// Runs `batch_acc` over the deterministic validation subset (first
    /// `eval_subset` examples in batches of `eval_batch`) and returns the
    /// example-weighted mean accuracy. Shared by both precisions so they
    /// score exactly the same examples.
    fn subset_accuracy(
        &self,
        mut batch_acc: impl FnMut(yoso_tensor::Tensor, &[usize]) -> f64,
    ) -> f64 {
        let n = self.data.val.len().min(self.eval_subset.max(1));
        let subset: Vec<usize> = (0..n).collect();
        let mut correct = 0.0;
        let mut total = 0usize;
        let mut i = 0;
        while i < subset.len() {
            let end = (i + self.eval_batch).min(subset.len());
            let (images, labels) = self.data.val.batch(&subset[i..end]);
            correct += batch_acc(images, &labels) * labels.len() as f64;
            total += labels.len();
            i = end;
        }
        correct / total.max(1) as f64
    }

    /// Compiled network statistics + cell output arities, cached per
    /// genotype so hardware sweeps recompile nothing.
    fn stats_arities_of(&self, point: &DesignPoint) -> StatsEntry {
        if let Some(&v) = self.stats_cache.read().get(&point.genotype) {
            return v;
        }
        let plan = self.hyper.skeleton().compile(&point.genotype);
        let v = (
            plan.stats,
            (
                point.genotype.normal.output_arity(),
                point.genotype.reduction.output_arity(),
            ),
        );
        self.stats_cache.write().insert(point.genotype, v);
        v
    }

    /// Per-query degraded-mode fallback: a non-finite GP prediction
    /// (poisoned kernel state, chaos injection) is replaced by a run of
    /// the memoized cycle-level simulator. Costs a plan compile + one
    /// cached simulation instead of a GP dot product, but keeps the
    /// search loop supplied with finite metrics.
    fn degraded_perf(&self, point: &DesignPoint) -> (f64, f64) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if yoso_trace::enabled() {
            yoso_trace::counter_add("evaluator.degraded_queries", 1);
        }
        let plan = self.hyper.skeleton().compile(&point.genotype);
        let rep = self.fallback_sim.simulate_plan(&plan, &point.hw);
        (rep.latency_ms, rep.energy_mj)
    }
}

impl Evaluator for FastEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> Result<Evaluation, Error> {
        let accuracy = self.accuracy_of(&point.genotype);
        let (stats, arities) = self.stats_arities_of(point);
        let (mut latency_ms, mut energy_mj) = self
            .predictor
            .predict_from_stats(&stats, &point.hw, arities);
        if !latency_ms.is_finite() || !energy_mj.is_finite() {
            (latency_ms, energy_mj) = self.degraded_perf(point);
        }
        Ok(Evaluation {
            accuracy,
            latency_ms,
            energy_mj,
        })
    }

    /// Batched scoring: the per-point work (hypernet accuracy pass +
    /// feature extraction) fans out over the supervised worker pool —
    /// per-genotype caches keep repeated rollouts cheap and make the
    /// result independent of thread count — then both GPs score the
    /// whole batch in one cross-kernel pass each via
    /// [`PerfPredictor::predict_batch_from_features`]. Bit-identical to
    /// per-point [`evaluate`](Evaluator::evaluate).
    fn evaluate_batch(&self, points: &[DesignPoint]) -> Result<Vec<Evaluation>, Error> {
        let per_point: Vec<(f64, Vec<f64>)> = yoso_pool::parallel_map(points.len(), 0, |i| {
            let p = &points[i];
            let (stats, arities) = self.stats_arities_of(p);
            (
                self.accuracy_of(&p.genotype),
                yoso_predictor::stats_features(&stats, &p.hw, arities),
            )
        });
        let (accs, xs): (Vec<f64>, Vec<Vec<f64>>) = per_point.into_iter().unzip();
        let perf = self.predictor.predict_batch_from_features(&xs);
        Ok(accs
            .into_iter()
            .zip(perf)
            .zip(points)
            .map(|((accuracy, (mut latency_ms, mut energy_mj)), point)| {
                if !latency_ms.is_finite() || !energy_mj.is_finite() {
                    (latency_ms, energy_mj) = self.degraded_perf(point);
                }
                Evaluation {
                    accuracy,
                    latency_ms,
                    energy_mj,
                }
            })
            .collect())
    }

    /// The precision is part of the name so a checkpoint written under
    /// one precision refuses to resume under the other
    /// ([`Error::ResumeMismatch`]): cached rewards would not be
    /// comparable across precisions.
    fn name(&self) -> &'static str {
        match self.scoring_precision() {
            ScoringPrecision::F32 => "fast(hypernet+gp)",
            ScoringPrecision::Int8 => "fast(hypernet+gp,int8)",
        }
    }

    fn set_scoring_precision(&self, precision: ScoringPrecision) {
        self.precision.store(precision as u8, Ordering::Relaxed);
    }

    fn scoring_precision(&self) -> ScoringPrecision {
        match self.precision.load(Ordering::Relaxed) {
            0 => ScoringPrecision::F32,
            _ => ScoringPrecision::Int8,
        }
    }

    fn degraded_queries(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// The accurate evaluator used for final top-N reranking: fully trains
/// the candidate network and runs the exact simulator.
pub struct AccurateEvaluator {
    /// Skeleton for compilation.
    pub skeleton: NetworkSkeleton,
    /// Dataset for training/validation.
    pub data: SynthCifar,
    /// Full-training recipe.
    pub train_cfg: TrainConfig,
    /// Exact simulator.
    pub sim: Simulator,
}

impl AccurateEvaluator {
    /// Creates the accurate evaluator.
    pub fn new(skeleton: NetworkSkeleton, data: SynthCifar, train_cfg: TrainConfig) -> Self {
        AccurateEvaluator {
            skeleton,
            data,
            train_cfg,
            sim: Simulator::exact(),
        }
    }
}

impl Evaluator for AccurateEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> Result<Evaluation, Error> {
        let plan = self.skeleton.compile(&point.genotype);
        let mut net = CellNetwork::new(plan.clone(), self.train_cfg.seed);
        let hist = net.train(&self.data, &self.train_cfg);
        let rep = self.sim.simulate_plan(&plan, &point.hw);
        Ok(Evaluation {
            accuracy: hist.final_val_acc,
            latency_ms: rep.latency_ms,
            energy_mj: rep.energy_mj,
        })
    }

    fn name(&self) -> &'static str {
        "accurate(train+sim)"
    }
}

/// Deterministic analytic evaluator: accuracy is a saturating function of
/// network capacity (plus op-mix terms and a small per-genotype jitter),
/// latency/energy come from the fast simulator. Used for large-iteration
/// search-behaviour experiments and unit tests, where per-candidate
/// HyperNet inference would dominate runtime.
pub struct SurrogateEvaluator {
    /// Skeleton for compilation.
    pub skeleton: NetworkSkeleton,
    sim: Simulator,
}

impl SurrogateEvaluator {
    /// Creates the surrogate for a skeleton.
    pub fn new(skeleton: NetworkSkeleton) -> Self {
        SurrogateEvaluator {
            skeleton,
            sim: Simulator::fast(),
        }
    }

    /// The accuracy model, exposed for tests.
    pub fn surrogate_accuracy(&self, point: &DesignPoint) -> f64 {
        let plan = self.skeleton.compile(&point.genotype);
        let stats = plan.stats;
        let macs = stats.total_macs as f64;
        let size_term = 1.0 - (-macs / 25.0e6).exp();
        let total = stats.total_macs.max(1) as f64;
        let conv_frac = stats.conv_macs as f64 / total;
        let dw_frac = stats.dw_macs as f64 / total;
        // Small deterministic jitter so equal-capacity genotypes differ.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        point.genotype.hash(&mut h);
        let jitter = ((h.finish() % 1000) as f64 / 1000.0 - 0.5) * 0.02;
        (0.38 + 0.5 * size_term + 0.05 * conv_frac + 0.03 * dw_frac + jitter).clamp(0.1, 0.97)
    }
}

impl Evaluator for SurrogateEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> Result<Evaluation, Error> {
        let plan = self.skeleton.compile(&point.genotype);
        let rep = self.sim.simulate_plan(&plan, &point.hw);
        Ok(Evaluation {
            accuracy: self.surrogate_accuracy(point),
            latency_ms: rep.latency_ms,
            energy_mj: rep.energy_mj,
        })
    }

    fn name(&self) -> &'static str {
        "surrogate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn surrogate_is_deterministic_and_bounded() {
        let ev = SurrogateEvaluator::new(NetworkSkeleton::tiny());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let p = DesignPoint::random(&mut rng);
            let a = ev.evaluate(&p).unwrap();
            let b = ev.evaluate(&p).unwrap();
            assert_eq!(a, b);
            assert!((0.1..=0.97).contains(&a.accuracy));
            assert!(a.latency_ms > 0.0 && a.energy_mj > 0.0);
        }
    }

    #[test]
    fn surrogate_prefers_bigger_networks() {
        // A conv5x5-heavy genotype has far more MACs than a pool-only one.
        use yoso_arch::{CellGenotype, NodeGene, Op};
        let heavy_gene = NodeGene {
            in1: 0,
            op1: Op::Conv5,
            in2: 1,
            op2: Op::Conv5,
        };
        let light_gene = NodeGene {
            in1: 0,
            op1: Op::MaxPool,
            in2: 1,
            op2: Op::AvgPool,
        };
        let cell = |g: NodeGene| CellGenotype { nodes: [g; 5] };
        let mut rng = StdRng::seed_from_u64(1);
        let hw = yoso_arch::HwConfig::random(&mut rng);
        let ev = SurrogateEvaluator::new(NetworkSkeleton::tiny());
        let heavy = ev
            .evaluate(&DesignPoint {
                genotype: Genotype {
                    normal: cell(heavy_gene),
                    reduction: cell(heavy_gene),
                },
                hw,
            })
            .unwrap();
        let light = ev
            .evaluate(&DesignPoint {
                genotype: Genotype {
                    normal: cell(light_gene),
                    reduction: cell(light_gene),
                },
                hw,
            })
            .unwrap();
        assert!(heavy.accuracy > light.accuracy);
        assert!(heavy.energy_mj > light.energy_mj, "capacity costs energy");
    }

    #[test]
    fn fast_evaluator_batch_matches_per_point() {
        use yoso_dataset::SynthCifarConfig;
        let sk = NetworkSkeleton::tiny();
        let data = SynthCifar::generate(&SynthCifarConfig::tiny());
        // Untrained HyperNet keeps this cheap; the batch/per-point
        // equivalence being tested is independent of training.
        let hyper = HyperNet::new(sk.clone(), 0);
        let samples = collect_samples(&sk, &Simulator::fast(), 80, 11);
        let predictor = PerfPredictor::train(&sk, &samples).unwrap();
        let ev = FastEvaluator::from_parts(hyper, predictor, data);
        let mut rng = StdRng::seed_from_u64(12);
        let points: Vec<DesignPoint> = (0..9).map(|_| DesignPoint::random(&mut rng)).collect();
        let batch = ev.evaluate_batch(&points).unwrap();
        assert_eq!(batch.len(), points.len());
        for (p, b) in points.iter().zip(&batch) {
            assert_eq!(ev.evaluate(p).unwrap(), *b);
        }
    }

    #[test]
    fn scoring_precision_switches_name_and_path() {
        use yoso_dataset::SynthCifarConfig;
        let sk = NetworkSkeleton::tiny();
        let data = SynthCifar::generate(&SynthCifarConfig::tiny());
        let hyper = HyperNet::new(sk.clone(), 3);
        let samples = collect_samples(&sk, &Simulator::fast(), 80, 7);
        let predictor = PerfPredictor::train(&sk, &samples).unwrap();
        let ev = FastEvaluator::from_parts(hyper, predictor, data);
        assert_eq!(ev.scoring_precision(), ScoringPrecision::F32);
        assert_eq!(ev.name(), "fast(hypernet+gp)");

        let mut rng = StdRng::seed_from_u64(21);
        let p = DesignPoint::random(&mut rng);
        let f32_eval = ev.evaluate(&p).unwrap();

        ev.set_scoring_precision(ScoringPrecision::Int8);
        assert_eq!(ev.scoring_precision(), ScoringPrecision::Int8);
        assert_eq!(ev.name(), "fast(hypernet+gp,int8)");
        let int8_eval = ev.evaluate(&p).unwrap();
        assert!((0.0..=1.0).contains(&int8_eval.accuracy));
        // Perf metrics come from the GP either way; only accuracy may move.
        assert_eq!(int8_eval.latency_ms, f32_eval.latency_ms);
        assert_eq!(int8_eval.energy_mj, f32_eval.energy_mj);
        // Int8 results are cached independently and deterministically.
        assert_eq!(ev.evaluate(&p).unwrap(), int8_eval);

        // Switching back must serve the original f32 number (per-precision
        // caches, no cross-contamination).
        ev.set_scoring_precision(ScoringPrecision::F32);
        assert_eq!(ev.evaluate(&p).unwrap(), f32_eval);
    }

    #[test]
    fn calibrated_constraints_are_interior() {
        let sk = NetworkSkeleton::tiny();
        let c = calibrate_constraints(&sk, 50, 0, 40.0);
        assert!(c.t_lat_ms > 0.0 && c.t_eer_mj > 0.0);
        // Roughly 40% of random designs should satisfy each threshold.
        let sim = Simulator::fast();
        let samples = collect_samples(&sk, &sim, 50, 0);
        let ok_lat = samples
            .iter()
            .filter(|s| s.latency_ms <= c.t_lat_ms)
            .count();
        assert!((10..=30).contains(&ok_lat), "{ok_lat}");
    }
}
