//! Parallel execution primitives, re-exported from [`yoso_pool`].
//!
//! The pool self-schedules items off an atomic counter (single-queue
//! work sharing), replacing the old fixed-chunk splitting that let
//! threads with cheap chunks go idle. See the `yoso-pool` crate docs for
//! the determinism guarantees (`parallel_map_seeded` output is invariant
//! to thread count).

pub use yoso_pool::{
    derive_seed, for_each_chunk_mut, num_threads, parallel_map, parallel_map_seeded,
    set_num_threads,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let v = parallel_map(100, 8, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn reexports_cover_pool_surface() {
        assert!(num_threads() >= 1);
        let a = parallel_map_seeded(8, 1, 7, |i, _| i);
        assert_eq!(a, (0..8).collect::<Vec<_>>());
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
    }

    proptest::proptest! {
        /// The seeded map's output — including every value drawn from the
        /// per-item RNGs — is invariant to the worker count.
        #[test]
        fn seeded_map_invariant_to_thread_count(
            seed in proptest::prelude::any::<u64>(),
            n in 0usize..64,
        ) {
            let run = |threads: usize| {
                parallel_map_seeded(n, threads, seed, |i, rng| {
                    (i, rand::RngExt::random::<u64>(rng), rand::RngExt::random_range(rng, 0.0f64..1.0))
                })
            };
            let serial = run(1);
            proptest::prop_assert_eq!(&run(2), &serial);
            proptest::prop_assert_eq!(&run(8), &serial);
        }
    }
}
