//! Scoped-thread parallel map over an index range (crossbeam-based),
//! used by the exhaustive hardware sweeps and benchmark drivers.

/// Applies `f` to `0..n` across up to `threads` worker threads and
/// returns results in index order.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(t * chunk + i));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|v| v.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let v = parallel_map(100, 8, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn single_thread_and_empty() {
        assert_eq!(parallel_map(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i + 1), vec![1, 2, 3]);
    }
}
