//! The two-stage baseline flow (paper §IV-D).
//!
//! Stage 1 takes an accuracy-first network — the paper reuses published
//! NAS results (NasNet-A, DARTS, AmoebaNet-A, ENAS, PNAS). Those exact
//! models are not reproducible offline, so we substitute *representative
//! genotypes in our own search space* whose structural signatures mimic
//! each family (op mix and DAG shape); see DESIGN.md. Stage 2 enumerates
//! the entire accelerator configuration space for the fixed network and
//! keeps the best configuration under the user constraints — exactly the
//! paper's "all the possible accelerator configuration are enumerated".

use crate::evaluation::Evaluation;
use crate::reward::{Constraints, RewardConfig};
use yoso_accel::{PerfReport, Simulator};
use yoso_arch::{CellGenotype, DesignPoint, Genotype, HwConfig, NetworkSkeleton, NodeGene, Op};

/// A named reference model standing in for a published two-stage network.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceModel {
    /// Display name (matches Table 2 rows).
    pub name: &'static str,
    /// Search cost reported by the original paper (GPU-days), echoed in
    /// Table 2.
    pub search_cost_gpu_days: f64,
    /// Representative genotype in our search space.
    pub genotype: Genotype,
}

fn gene(in1: usize, op1: Op, in2: usize, op2: Op) -> NodeGene {
    NodeGene { in1, op1, in2, op2 }
}

/// Builds the six representative reference models of Table 2.
pub fn reference_models() -> Vec<ReferenceModel> {
    // NasNet-A: separable-conv heavy with pooling branches, deep chains.
    let nasnet = Genotype {
        normal: CellGenotype {
            nodes: [
                gene(0, Op::DwConv5, 1, Op::DwConv3),
                gene(1, Op::DwConv5, 0, Op::AvgPool),
                gene(2, Op::AvgPool, 1, Op::DwConv3),
                gene(3, Op::DwConv3, 1, Op::MaxPool),
                gene(4, Op::DwConv5, 2, Op::DwConv3),
            ],
        },
        reduction: CellGenotype {
            nodes: [
                gene(0, Op::DwConv5, 1, Op::DwConv5),
                gene(2, Op::MaxPool, 0, Op::DwConv5),
                gene(2, Op::AvgPool, 1, Op::DwConv3),
                gene(3, Op::MaxPool, 2, Op::DwConv5),
                gene(4, Op::DwConv3, 3, Op::AvgPool),
            ],
        },
    };
    // DARTS v1: dw3-dominated, shallow fan-in from the two inputs.
    let darts_v1 = Genotype {
        normal: CellGenotype {
            nodes: [
                gene(0, Op::DwConv3, 1, Op::DwConv3),
                gene(0, Op::DwConv3, 1, Op::DwConv3),
                gene(1, Op::DwConv3, 2, Op::DwConv3),
                gene(0, Op::DwConv3, 2, Op::AvgPool),
                gene(1, Op::DwConv3, 3, Op::DwConv3),
            ],
        },
        reduction: CellGenotype {
            nodes: [
                gene(0, Op::MaxPool, 1, Op::DwConv3),
                gene(1, Op::MaxPool, 2, Op::DwConv3),
                gene(1, Op::MaxPool, 2, Op::DwConv3),
                gene(2, Op::DwConv3, 3, Op::DwConv3),
                gene(2, Op::MaxPool, 4, Op::DwConv3),
            ],
        },
    };
    // DARTS v2: a deeper variant mixing dw3 and dw5.
    let darts_v2 = Genotype {
        normal: CellGenotype {
            nodes: [
                gene(0, Op::DwConv3, 1, Op::DwConv3),
                gene(2, Op::DwConv3, 0, Op::DwConv5),
                gene(3, Op::DwConv3, 1, Op::DwConv3),
                gene(4, Op::DwConv5, 2, Op::AvgPool),
                gene(5, Op::DwConv3, 0, Op::DwConv3),
            ],
        },
        reduction: darts_v1.reduction,
    };
    // AmoebaNet-A: evolution found wide cells with 5x5 convs and avgpool.
    let amoeba = Genotype {
        normal: CellGenotype {
            nodes: [
                gene(0, Op::Conv5, 1, Op::AvgPool),
                gene(0, Op::DwConv5, 1, Op::Conv3),
                gene(0, Op::AvgPool, 1, Op::DwConv5),
                gene(1, Op::Conv5, 2, Op::AvgPool),
                gene(0, Op::DwConv3, 1, Op::Conv5),
            ],
        },
        reduction: CellGenotype {
            nodes: [
                gene(0, Op::AvgPool, 1, Op::Conv5),
                gene(1, Op::MaxPool, 2, Op::DwConv5),
                gene(0, Op::Conv5, 2, Op::MaxPool),
                gene(3, Op::Conv3, 1, Op::AvgPool),
                gene(4, Op::DwConv5, 0, Op::Conv3),
            ],
        },
    };
    // ENAS: RL-found, conv3/5 mixed with wide output.
    let enas = Genotype {
        normal: CellGenotype {
            nodes: [
                gene(1, Op::Conv3, 0, Op::Conv5),
                gene(1, Op::Conv5, 0, Op::DwConv3),
                gene(0, Op::Conv3, 1, Op::AvgPool),
                gene(1, Op::Conv5, 0, Op::Conv3),
                gene(0, Op::Conv5, 1, Op::Conv5),
            ],
        },
        reduction: CellGenotype {
            nodes: [
                gene(0, Op::Conv5, 1, Op::MaxPool),
                gene(1, Op::Conv5, 2, Op::Conv3),
                gene(1, Op::MaxPool, 0, Op::Conv5),
                gene(2, Op::Conv3, 3, Op::MaxPool),
                gene(1, Op::Conv5, 4, Op::Conv3),
            ],
        },
    };
    // PNAS: progressive search favored large separable kernels.
    let pnas = Genotype {
        normal: CellGenotype {
            nodes: [
                gene(0, Op::DwConv5, 1, Op::DwConv5),
                gene(1, Op::DwConv5, 2, Op::MaxPool),
                gene(2, Op::DwConv5, 3, Op::DwConv5),
                gene(3, Op::DwConv5, 4, Op::DwConv5),
                gene(4, Op::DwConv5, 5, Op::MaxPool),
            ],
        },
        reduction: CellGenotype {
            nodes: [
                gene(0, Op::DwConv5, 1, Op::DwConv5),
                gene(1, Op::MaxPool, 2, Op::DwConv5),
                gene(2, Op::DwConv5, 3, Op::MaxPool),
                gene(3, Op::DwConv5, 4, Op::DwConv5),
                gene(4, Op::MaxPool, 5, Op::DwConv5),
            ],
        },
    };
    vec![
        ReferenceModel {
            name: "NasNet-A",
            search_cost_gpu_days: 1800.0,
            genotype: nasnet,
        },
        ReferenceModel {
            name: "Darts_v1",
            search_cost_gpu_days: 0.38,
            genotype: darts_v1,
        },
        ReferenceModel {
            name: "Darts_v2",
            search_cost_gpu_days: 1.0,
            genotype: darts_v2,
        },
        ReferenceModel {
            name: "AmoebaNet-A",
            search_cost_gpu_days: 3150.0,
            genotype: amoeba,
        },
        ReferenceModel {
            name: "EnasNet",
            search_cost_gpu_days: 1.0,
            genotype: enas,
        },
        ReferenceModel {
            name: "PnasNet",
            search_cost_gpu_days: 150.0,
            genotype: pnas,
        },
    ]
}

/// Which hardware metric stage 2 optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizationTarget {
    /// Minimize energy (the `Yoso_eer` comparison).
    Energy,
    /// Minimize latency (the `Yoso_lat` comparison).
    Latency,
}

/// Result of the exhaustive stage-2 enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct BestHw {
    /// The winning configuration.
    pub hw: HwConfig,
    /// Its simulation report.
    pub report: PerfReport,
    /// Whether it satisfied the constraints (if none did, the
    /// least-violating configuration is returned and this is `false`).
    pub feasible: bool,
}

/// Enumerates every hardware configuration for a fixed genotype and
/// returns the best under `target`, preferring constraint-satisfying
/// configurations.
///
/// The ~10^3 simulations fan out over the worker pool; the reduction
/// walks results in enumeration order, so the winner (including
/// tie-breaking on equal metrics) is identical to a serial sweep.
pub fn best_hw_for(
    genotype: &Genotype,
    skeleton: &NetworkSkeleton,
    sim: &Simulator,
    constraints: &Constraints,
    target: OptimizationTarget,
) -> BestHw {
    let plan = skeleton.compile(genotype);
    let configs: Vec<HwConfig> = HwConfig::enumerate_all().collect();
    let candidates = crate::parallel::parallel_map(configs.len(), 0, |i| {
        let hw = configs[i];
        let report = sim.simulate_plan(&plan, &hw);
        let feasible = constraints.satisfied(report.latency_ms, report.energy_mj);
        BestHw {
            hw,
            report,
            feasible,
        }
    });
    let mut best: Option<BestHw> = None;
    for cand in candidates {
        let metric = match target {
            OptimizationTarget::Energy => cand.report.energy_mj,
            OptimizationTarget::Latency => cand.report.latency_ms,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                let b_metric = match target {
                    OptimizationTarget::Energy => b.report.energy_mj,
                    OptimizationTarget::Latency => b.report.latency_ms,
                };
                (cand.feasible && !b.feasible) || (cand.feasible == b.feasible && metric < b_metric)
            }
        };
        if better {
            best = Some(cand);
        }
    }
    best.expect("hardware space is non-empty")
}

/// A completed two-stage run for one reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageResult {
    /// Model name.
    pub name: &'static str,
    /// Original search cost (GPU-days, from the source papers).
    pub search_cost_gpu_days: f64,
    /// The resulting design point.
    pub point: DesignPoint,
    /// Accuracy / latency / energy of the final pair.
    pub eval: Evaluation,
    /// Reward under the experiment's objective.
    pub reward: f64,
}

/// Runs the two-stage flow for each reference model: accuracy from
/// `accuracy_of` (stage 1 output is fixed), hardware by exhaustive
/// enumeration (stage 2).
pub fn run_two_stage(
    models: &[ReferenceModel],
    skeleton: &NetworkSkeleton,
    sim: &Simulator,
    reward_cfg: &RewardConfig,
    target: OptimizationTarget,
    mut accuracy_of: impl FnMut(&Genotype) -> f64,
) -> Vec<TwoStageResult> {
    models
        .iter()
        .map(|m| {
            let best = best_hw_for(&m.genotype, skeleton, sim, &reward_cfg.constraints, target);
            let eval = Evaluation {
                accuracy: accuracy_of(&m.genotype),
                latency_ms: best.report.latency_ms,
                energy_mj: best.report.energy_mj,
            };
            TwoStageResult {
                name: m.name,
                search_cost_gpu_days: m.search_cost_gpu_days,
                point: DesignPoint {
                    genotype: m.genotype,
                    hw: best.hw,
                },
                eval,
                reward: reward_cfg.reward(eval.accuracy, eval.latency_ms, eval.energy_mj),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_models_are_valid_and_distinct() {
        let models = reference_models();
        assert_eq!(models.len(), 6);
        for m in &models {
            assert!(m.genotype.is_valid(), "{} invalid", m.name);
        }
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert_ne!(models[i].genotype, models[j].genotype);
            }
        }
    }

    #[test]
    fn reference_models_differ_structurally() {
        // PNAS should be dw5-heavy; ENAS conv-heavy.
        let models = reference_models();
        let pnas = models.iter().find(|m| m.name == "PnasNet").unwrap();
        let h = pnas.genotype.normal.op_histogram();
        assert!(h[Op::DwConv5.index()] >= 6);
        let enas = models.iter().find(|m| m.name == "EnasNet").unwrap();
        let he = enas.genotype.normal.op_histogram();
        assert!(he[Op::Conv3.index()] + he[Op::Conv5.index()] >= 6);
    }

    #[test]
    fn best_hw_minimizes_target() {
        let sk = NetworkSkeleton::tiny();
        let models = reference_models();
        let sim = Simulator::fast();
        let cons = Constraints {
            t_lat_ms: f64::INFINITY,
            t_eer_mj: f64::INFINITY,
        };
        let best_e = best_hw_for(
            &models[0].genotype,
            &sk,
            &sim,
            &cons,
            OptimizationTarget::Energy,
        );
        let best_l = best_hw_for(
            &models[0].genotype,
            &sk,
            &sim,
            &cons,
            OptimizationTarget::Latency,
        );
        assert!(best_e.feasible && best_l.feasible);
        // Energy-best is no worse in energy than latency-best, and vice versa.
        assert!(best_e.report.energy_mj <= best_l.report.energy_mj);
        assert!(best_l.report.latency_ms <= best_e.report.latency_ms);
        // Sanity: the enumeration actually explored the space.
        let plan = sk.compile(&models[0].genotype);
        let arbitrary = sim.simulate_plan(&plan, &HwConfig::from_indices(0, 0, 0, 3));
        assert!(best_e.report.energy_mj <= arbitrary.energy_mj);
    }

    #[test]
    fn infeasible_constraints_flagged() {
        let sk = NetworkSkeleton::tiny();
        let models = reference_models();
        let sim = Simulator::fast();
        let cons = Constraints {
            t_lat_ms: 1e-12,
            t_eer_mj: 1e-12,
        };
        let best = best_hw_for(
            &models[1].genotype,
            &sk,
            &sim,
            &cons,
            OptimizationTarget::Energy,
        );
        assert!(!best.feasible);
    }

    #[test]
    fn two_stage_produces_one_result_per_model() {
        let sk = NetworkSkeleton::tiny();
        let sim = Simulator::fast();
        let cons = crate::evaluation::calibrate_constraints(&sk, 40, 0, 60.0);
        let rc = RewardConfig::balanced(cons);
        let models = reference_models();
        let results = run_two_stage(&models, &sk, &sim, &rc, OptimizationTarget::Energy, |_| 0.8);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(r.eval.energy_mj > 0.0);
            assert!(r.reward.is_finite());
        }
    }
}
