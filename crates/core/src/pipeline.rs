//! The end-to-end YOSO pipeline: the three steps of §III-B.
//!
//! 1. **Fast evaluator construction** — train the HyperNet, fit the GP
//!    predictors ([`FastEvaluator::build`]).
//! 2. **Effective design search** — RL search in the joint space
//!    (a [`SearchSession`] with [`Strategy::Rl`]).
//! 3. **Determining the final solution** — rerank the top-N candidates
//!    with full training + exact simulation and return the best
//!    ([`finalize`]).
//!
//! [`SearchSession`]: crate::session::SearchSession
//! [`Strategy::Rl`]: crate::session::Strategy::Rl

use crate::error::Error;
use crate::evaluation::{AccurateEvaluator, Evaluation, Evaluator, FastEvaluator};
use crate::reward::RewardConfig;
use crate::search::{SearchConfig, SearchOutcome, SearchRecord};
use crate::session::{SearchSession, Strategy};
use yoso_arch::DesignPoint;

/// A reranked finalist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Finalist {
    /// The design point.
    pub point: DesignPoint,
    /// Its fast (search-time) evaluation.
    pub fast_eval: Evaluation,
    /// Its accurate (full-training + exact-simulation) evaluation.
    pub accurate_eval: Evaluation,
    /// Reward recomputed from the accurate evaluation.
    pub accurate_reward: f64,
}

/// Result of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct YosoResult {
    /// Complete search history.
    pub outcome: SearchOutcome,
    /// Accurately reranked top-N.
    pub finalists: Vec<Finalist>,
}

impl YosoResult {
    /// The winning finalist (highest accurate reward).
    ///
    /// # Panics
    ///
    /// Panics if there are no finalists.
    pub fn best(&self) -> &Finalist {
        self.finalists
            .iter()
            .max_by(|a, b| a.accurate_reward.total_cmp(&b.accurate_reward))
            .expect("non-empty finalists")
    }
}

/// Paper step 3: accurately re-evaluates the top-N candidates and returns
/// them sorted by accurate reward (best first).
///
/// Each finalist's full training + exact simulation is independent, so
/// the rerank fans out over the worker pool.
///
/// # Errors
///
/// Propagates the first evaluator [`Error`], if any.
pub fn finalize(
    outcome: &SearchOutcome,
    top_n: usize,
    accurate: &AccurateEvaluator,
    reward_cfg: &RewardConfig,
) -> Result<Vec<Finalist>, Error> {
    let top: Vec<SearchRecord> = outcome.top_n(top_n);
    let evaluated: Vec<Result<Finalist, Error>> =
        crate::parallel::parallel_map(top.len(), 0, |i| {
            let rec = &top[i];
            let accurate_eval = accurate.evaluate(&rec.point)?;
            Ok(Finalist {
                point: rec.point,
                fast_eval: rec.eval,
                accurate_eval,
                accurate_reward: reward_cfg.reward(
                    accurate_eval.accuracy,
                    accurate_eval.latency_ms,
                    accurate_eval.energy_mj,
                ),
            })
        });
    let mut finalists = evaluated.into_iter().collect::<Result<Vec<_>, _>>()?;
    finalists.sort_by(|a, b| b.accurate_reward.total_cmp(&a.accurate_reward));
    Ok(finalists)
}

/// Runs steps 2 and 3 against a prebuilt fast evaluator.
///
/// # Errors
///
/// Propagates any [`Error`] from the search or the accurate rerank.
pub fn run_search_and_finalize(
    fast: &FastEvaluator,
    accurate: &AccurateEvaluator,
    reward_cfg: &RewardConfig,
    search_cfg: &SearchConfig,
    top_n: usize,
) -> Result<YosoResult, Error> {
    let outcome = SearchSession::builder()
        .evaluator(fast)
        .reward(*reward_cfg)
        .config(search_cfg.clone())
        .strategy(Strategy::Rl)
        .run()?;
    let finalists = finalize(&outcome, top_n, accurate, reward_cfg)?;
    Ok(YosoResult { outcome, finalists })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{calibrate_constraints, SurrogateEvaluator};
    use yoso_arch::NetworkSkeleton;
    use yoso_dataset::{SynthCifar, SynthCifarConfig};
    use yoso_nn::TrainConfig;

    #[test]
    fn finalize_sorts_by_accurate_reward() {
        let sk = NetworkSkeleton::tiny();
        let ev = SurrogateEvaluator::new(sk.clone());
        let cons = calibrate_constraints(&sk, 40, 0, 60.0);
        let rc = RewardConfig::balanced(cons);
        let outcome = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(SearchConfig::builder().iterations(30).build())
            .strategy(Strategy::Random)
            .run()
            .unwrap();
        let data = SynthCifar::generate(&SynthCifarConfig::tiny());
        let mut train_cfg = TrainConfig::fast_test();
        train_cfg.epochs = 1;
        let accurate = AccurateEvaluator::new(sk, data, train_cfg);
        let finalists = finalize(&outcome, 3, &accurate, &rc).unwrap();
        assert_eq!(finalists.len(), 3);
        for w in finalists.windows(2) {
            assert!(w[0].accurate_reward >= w[1].accurate_reward);
        }
        // Accurate metrics are populated and positive.
        for f in &finalists {
            assert!(f.accurate_eval.latency_ms > 0.0);
            assert!(f.accurate_eval.accuracy > 0.0);
        }
        let result = YosoResult {
            outcome,
            finalists: finalists.clone(),
        };
        assert_eq!(result.best().point, finalists[0].point);
    }
}
