//! # yoso-core
//!
//! The single-stage DNN/accelerator co-design engine — the paper's primary
//! contribution, assembled from the substrate crates:
//!
//! * [`reward`] — the multi-objective reward `R(λ)` (Eq. 2) and user
//!   constraints;
//! * [`evaluation`] — the fast evaluator (HyperNet accuracy + GP
//!   performance predictors), the accurate evaluator (full training +
//!   exact simulation) and a deterministic surrogate;
//! * [`search`] — search configuration and history bookkeeping
//!   (top-N selection, Pareto extraction, quarantine ledger);
//! * [`archive`] — the non-dominated Pareto archive over typed
//!   [`Objectives`] with RHNAS-style feasibility
//!   caps, the multi-target answer a single run serves;
//! * [`session`] — the unified [`SearchSession`] entry point that runs
//!   the RL loop (LSTM + REINFORCE over the 44-symbol joint action
//!   space), regularized evolution or random search, with optional
//!   structured telemetry and crash-safe checkpointing;
//! * [`checkpoint`] — the on-disk checkpoint container behind
//!   [`SearchSession::resume_from`];
//! * [`error`] — the unified [`Error`] enum every fallible core path
//!   returns;
//! * [`twostage`] — the two-stage baseline flow with representative
//!   reference models (Table 2);
//! * [`pipeline`] — the three-step YOSO flow ending in top-N accurate
//!   reranking.
//!
//! ## Example
//!
//! ```
//! use yoso_core::evaluation::{calibrate_constraints, SurrogateEvaluator};
//! use yoso_core::reward::RewardConfig;
//! use yoso_core::search::SearchConfig;
//! use yoso_core::session::{SearchSession, Strategy};
//! use yoso_arch::NetworkSkeleton;
//!
//! let sk = NetworkSkeleton::tiny();
//! let evaluator = SurrogateEvaluator::new(sk.clone());
//! let constraints = calibrate_constraints(&sk, 30, 0, 50.0);
//! let reward = RewardConfig::balanced(constraints);
//! let outcome = SearchSession::builder()
//!     .evaluator(&evaluator)
//!     .reward(reward)
//!     .strategy(Strategy::Rl)
//!     .config(SearchConfig::builder().iterations(20).rollouts_per_update(4).build())
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.history.len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod archive;
pub mod checkpoint;
pub mod error;
pub mod evaluation;
pub mod parallel;
pub mod pipeline;
pub mod reward;
pub mod search;
pub mod session;
pub mod twostage;

pub use analysis::{
    feasible, hypervolume, save_history_csv, save_pareto_csv, summarize, EvalSummary,
};
pub use archive::{area_units, power_w, FeasibilityCaps, Objective, Objectives, ParetoArchive};
pub use checkpoint::{latest_checkpoint, SessionCheckpoint};
pub use error::{error_chain, Error};
pub use evaluation::{
    calibrate_constraints, AccurateEvaluator, Evaluation, Evaluator, FastEvaluator,
    ScoringPrecision, SurrogateEvaluator, SurrogateKind,
};
pub use parallel::parallel_map;
pub use pipeline::{finalize, run_search_and_finalize, Finalist, YosoResult};
pub use reward::{Constraints, RewardConfig, RewardForm};
pub use search::{SearchConfig, SearchConfigBuilder, SearchOutcome, SearchRecord};
pub use session::{SearchEvent, SearchSession, SearchSessionBuilder, Strategy};
pub use twostage::{
    best_hw_for, reference_models, run_two_stage, BestHw, OptimizationTarget, ReferenceModel,
    TwoStageResult,
};
