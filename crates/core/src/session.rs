//! The unified search entry point: [`SearchSession`] and its builder.
//!
//! A session bundles everything one co-design search needs — an
//! evaluator, a reward, a [`SearchConfig`] and a [`Strategy`] — behind
//! one builder, subsuming the three historical free functions and their
//! inconsistent signatures (`evolution_search` used to take trailing
//! positional `population, tournament` arguments; those now live in
//! [`SearchConfig`]). It is also where the observability layer hooks in:
//! give the builder a [`Trace`] sink and the session emits
//!
//! * one [`SearchEvent`] (`"search_iter"`) per evaluated candidate —
//!   reward, accuracy, latency, energy and (for RL) controller entropy;
//! * a `"controller_update"` event per REINFORCE batch (RL only);
//! * `"search_start"` / `"search_summary"` bracketing events; and
//! * `"cache_summary"`, `"gp_summary"`, `"pool_summary"` and
//!   `"controller_summary"` events describing what the simulator cache,
//!   the batched GP predictor, the worker pool and the controller
//!   contributed during this run (deltas against the run start).
//!
//! The per-iteration stream is a pure function of the seed: two sessions
//! with identical configs produce byte-identical `search_iter` lines at
//! any worker-pool thread count. Summary events carry wall-clock times
//! and are *not* deterministic.
//!
//! With the default [`Trace::disabled`] sink every emission site reduces
//! to a single pointer check, so searches pay nothing for the layer.
//!
//! # Crash-safe checkpointing
//!
//! Give the builder [`checkpoint_every`](SearchSessionBuilder::checkpoint_every)
//! and [`checkpoint_dir`](SearchSessionBuilder::checkpoint_dir) and the
//! session writes an atomic snapshot (`ckpt_00000015.snap`, …) of its
//! complete state — controller weights and Adam moments, RNG stream,
//! evaluated history, simulator cache — every `n` iterations (for RL,
//! at the next controller-update boundary). After a crash,
//! [`SearchSession::resume_from`] rebuilds the session from the newest
//! checkpoint and the continued run replays the remaining iterations
//! **bit-identically** to the uninterrupted run:
//!
//! ```
//! use yoso_core::evaluation::{calibrate_constraints, SurrogateEvaluator};
//! use yoso_core::reward::RewardConfig;
//! use yoso_core::search::SearchConfig;
//! use yoso_core::session::{SearchSession, Strategy};
//!
//! let sk = yoso_arch::NetworkSkeleton::tiny();
//! let evaluator = SurrogateEvaluator::new(sk.clone());
//! let reward = RewardConfig::balanced(calibrate_constraints(&sk, 30, 0, 50.0));
//! let dir = std::env::temp_dir().join(format!("yoso-doc-ckpt-{}", std::process::id()));
//! let full = SearchSession::builder()
//!     .evaluator(&evaluator)
//!     .reward(reward)
//!     .strategy(Strategy::Random)
//!     .config(SearchConfig::builder().iterations(20).build())
//!     .checkpoint_every(10)
//!     .checkpoint_dir(&dir)
//!     .run()
//!     .unwrap();
//! // Simulate a crash at iteration 10: restart from the newest snapshot.
//! let latest = yoso_core::checkpoint::latest_checkpoint(&dir).unwrap().unwrap();
//! let resumed = SearchSession::resume_from(&latest)
//!     .unwrap()
//!     .evaluator(&evaluator)
//!     .run()
//!     .unwrap();
//! assert_eq!(resumed, full);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::checkpoint::{checkpoint_file_name, CheckpointWriter, SessionCheckpoint};
use crate::error::Error;
use crate::evaluation::{Evaluation, Evaluator, ScoringPrecision};
use crate::reward::{NonFiniteMetric, RewardConfig};
use crate::search::{
    QuarantineEntry, SearchConfig, SearchOutcome, SearchRecord, QUARANTINE_REWARD,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use yoso_arch::{ActionSpace, DesignPoint};
use yoso_controller::{Controller, ControllerConfig, Rollout};
use yoso_trace::{Event, Trace};

/// Which search algorithm a [`SearchSession`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The paper's LSTM + REINFORCE controller (default).
    #[default]
    Rl,
    /// Regularized evolution over the joint space; population and
    /// tournament sizes come from [`SearchConfig`].
    Evolution,
    /// Uniform random search (the Fig. 6(a) baseline).
    Random,
}

impl Strategy {
    /// Stable lowercase name used in trace events and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Rl => "rl",
            Strategy::Evolution => "evolution",
            Strategy::Random => "random",
        }
    }

    /// Parses a [`Strategy::name`] back into a strategy (the protocol
    /// layer's wire form).
    pub fn from_name(s: &str) -> Option<Strategy> {
        match s {
            "rl" => Some(Strategy::Rl),
            "evolution" => Some(Strategy::Evolution),
            "random" => Some(Strategy::Random),
            _ => None,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-iteration telemetry record: one evaluated candidate.
///
/// Serialized as the `"search_iter"` JSONL event; [`SearchEvent::parse`]
/// reads a line back. For identical seeds and configs the stream of
/// these events is identical at any worker-pool thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchEvent {
    /// Candidate index (0-based).
    pub iteration: u64,
    /// Composite reward under the session's [`RewardConfig`].
    pub reward: f64,
    /// Predicted validation accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Predicted latency in ms.
    pub latency_ms: f64,
    /// Predicted energy in mJ.
    pub energy_mj: f64,
    /// Summed controller softmax entropy of the rollout that produced
    /// this candidate (RL only; `None` for evolution/random).
    pub entropy: Option<f64>,
}

impl SearchEvent {
    /// The JSONL event kind.
    pub const KIND: &'static str = "search_iter";

    /// Builds the event for one search record.
    pub fn from_record(rec: &SearchRecord, entropy: Option<f64>) -> Self {
        SearchEvent {
            iteration: rec.iteration as u64,
            reward: rec.reward,
            accuracy: rec.eval.accuracy,
            latency_ms: rec.eval.latency_ms,
            energy_mj: rec.eval.energy_mj,
            entropy,
        }
    }

    /// Converts to a generic trace [`Event`].
    pub fn to_event(&self) -> Event {
        let mut e = Event::new(Self::KIND)
            .with_u64("iteration", self.iteration)
            .with_f64("reward", self.reward)
            .with_f64("accuracy", self.accuracy)
            .with_f64("latency_ms", self.latency_ms)
            .with_f64("energy_mj", self.energy_mj);
        if let Some(h) = self.entropy {
            e = e.with_f64("entropy", h);
        }
        e
    }

    /// Reads a `"search_iter"` [`Event`] back; `None` when the kind or a
    /// required field does not match.
    pub fn from_event(event: &Event) -> Option<Self> {
        if event.kind != Self::KIND {
            return None;
        }
        Some(SearchEvent {
            iteration: event.get_u64("iteration")?,
            reward: event.get_f64("reward")?,
            accuracy: event.get_f64("accuracy")?,
            latency_ms: event.get_f64("latency_ms")?,
            energy_mj: event.get_f64("energy_mj")?,
            entropy: event.get_f64("entropy"),
        })
    }

    /// One JSONL line.
    pub fn to_json(&self) -> String {
        self.to_event().to_json()
    }

    /// Parses a JSONL line produced by [`SearchEvent::to_json`].
    pub fn parse(line: &str) -> Option<Self> {
        Self::from_event(&Event::parse(line).ok()?)
    }
}

/// Mid-run state restored from a checkpoint, applied when the session
/// runs: the continued loop starts after the last recorded iteration.
struct ResumeState {
    strategy: Strategy,
    evaluator: String,
    update_index: u64,
    history: Vec<SearchRecord>,
    quarantine: Vec<QuarantineEntry>,
    rng_state: [u64; 4],
    controller: Option<Controller>,
}

/// A fully configured search, ready to [`run`](SearchSession::run).
///
/// Construct with [`SearchSession::builder`] (or
/// [`SearchSession::resume_from`] to continue from a checkpoint); see
/// the [module docs](self) for what the session emits when given a
/// trace sink.
pub struct SearchSession<'a> {
    evaluator: &'a dyn Evaluator,
    reward: RewardConfig,
    config: SearchConfig,
    strategy: Strategy,
    trace: Trace,
    checkpoint_every: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    fault_budget: Option<u64>,
    scoring: Option<ScoringPrecision>,
    cancel: Option<Arc<AtomicBool>>,
    resume: Option<ResumeState>,
}

/// Builder for [`SearchSession`]; see the [module docs](self) example.
pub struct SearchSessionBuilder<'a> {
    evaluator: Option<&'a dyn Evaluator>,
    reward: Option<RewardConfig>,
    config: SearchConfig,
    strategy: Strategy,
    trace: Trace,
    checkpoint_every: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    fault_budget: Option<u64>,
    scoring: Option<ScoringPrecision>,
    cancel: Option<Arc<AtomicBool>>,
    resume: Option<ResumeState>,
}

impl<'a> SearchSessionBuilder<'a> {
    /// The candidate evaluator (required).
    #[must_use]
    pub fn evaluator(mut self, evaluator: &'a dyn Evaluator) -> Self {
        self.evaluator = Some(evaluator);
        self
    }

    /// The reward configuration (required).
    #[must_use]
    pub fn reward(mut self, reward: RewardConfig) -> Self {
        self.reward = Some(reward);
        self
    }

    /// Search-loop parameters (defaults to [`SearchConfig::default`]).
    #[must_use]
    pub fn config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// The search algorithm (defaults to [`Strategy::Rl`]).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The telemetry sink (defaults to [`Trace::disabled`], which makes
    /// every emission a no-op).
    #[must_use]
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Writes a crash-recovery checkpoint every `n` iterations (for RL,
    /// at the next controller-update boundary on or after each multiple
    /// of `n`). Requires [`checkpoint_dir`](Self::checkpoint_dir).
    #[must_use]
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = Some(n);
        self
    }

    /// Directory for checkpoint files (created on run when missing).
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Aborts the run with [`Error::FaultBudgetExhausted`] once the
    /// session has absorbed more than `budget` faults — quarantined
    /// candidates plus degraded-mode evaluator queries, counted over this
    /// run only. When a [`checkpoint_dir`](Self::checkpoint_dir) is
    /// configured an emergency checkpoint is written first so the run can
    /// be resumed once the fault source is fixed. The default (no budget)
    /// degrades indefinitely.
    #[must_use]
    pub fn fault_budget(mut self, budget: u64) -> Self {
        self.fault_budget = Some(budget);
        self
    }

    /// Requests a scoring precision from the evaluator at
    /// [`build`](Self::build) time (via
    /// [`Evaluator::set_scoring_precision`]). With
    /// [`ScoringPrecision::Int8`] and a [`FastEvaluator`] the HyperNet
    /// accuracy pass runs on the quantized int8 path; evaluators without
    /// int8 support ignore the request and keep scoring in f32. The
    /// default leaves the evaluator's current precision untouched.
    ///
    /// [`FastEvaluator`]: crate::evaluation::FastEvaluator
    #[must_use]
    pub fn scoring_precision(mut self, precision: ScoringPrecision) -> Self {
        self.scoring = Some(precision);
        self
    }

    /// A shared cancel flag for cooperative suspension. The session polls
    /// it at each iteration boundary (for RL, each controller-update
    /// boundary); once raised, the run stops with [`Error::Canceled`],
    /// writing a suspend checkpoint first when a
    /// [`checkpoint_dir`](Self::checkpoint_dir) is configured — the
    /// serving daemon's suspend/resume mechanism.
    #[must_use]
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The configured strategy (for turning a builder back into a
    /// protocol-level job spec).
    pub fn configured_strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured search parameters.
    pub fn configured_config(&self) -> &SearchConfig {
        &self.config
    }

    /// The configured reward, when one was supplied.
    pub fn configured_reward(&self) -> Option<&RewardConfig> {
        self.reward.as_ref()
    }

    /// The configured checkpoint cadence, when one was supplied.
    pub fn configured_checkpoint_every(&self) -> Option<usize> {
        self.checkpoint_every
    }

    /// The configured fault budget, when one was supplied.
    pub fn configured_fault_budget(&self) -> Option<u64> {
        self.fault_budget
    }

    /// The requested scoring precision, when one was supplied.
    pub fn configured_scoring_precision(&self) -> Option<ScoringPrecision> {
        self.scoring
    }

    /// Finalizes the session.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when no evaluator or reward was
    /// supplied, when `population`, `tournament` or (for RL)
    /// `rollouts_per_update` is zero, or when a checkpoint cadence was
    /// set without a directory (or vice versa, a zero cadence).
    pub fn build(self) -> Result<SearchSession<'a>, Error> {
        let config = self.config;
        if config.population == 0 || config.tournament == 0 {
            return Err(Error::InvalidConfig(
                "population and tournament must be positive".into(),
            ));
        }
        if self.strategy == Strategy::Rl && config.rollouts_per_update == 0 {
            return Err(Error::InvalidConfig(
                "rollouts_per_update must be positive for Strategy::Rl".into(),
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(Error::InvalidConfig(
                "checkpoint_every(0) — the cadence must be positive".into(),
            ));
        }
        if self.checkpoint_every.is_some() && self.checkpoint_dir.is_none() {
            return Err(Error::InvalidConfig(
                "checkpoint_every(..) requires .checkpoint_dir(..)".into(),
            ));
        }
        let evaluator = self
            .evaluator
            .ok_or_else(|| Error::InvalidConfig("SearchSession requires .evaluator(..)".into()))?;
        let reward = self
            .reward
            .ok_or_else(|| Error::InvalidConfig("SearchSession requires .reward(..)".into()))?;
        // Applied before the resume-mismatch check in `run` reads the
        // evaluator name, so a checkpoint written under int8 scoring
        // resumes cleanly when the caller re-requests int8.
        if let Some(p) = self.scoring {
            evaluator.set_scoring_precision(p);
        }
        Ok(SearchSession {
            evaluator,
            reward,
            config,
            strategy: self.strategy,
            trace: self.trace,
            checkpoint_every: self.checkpoint_every,
            checkpoint_dir: self.checkpoint_dir,
            fault_budget: self.fault_budget,
            scoring: self.scoring,
            cancel: self.cancel,
            resume: self.resume,
        })
    }

    /// [`build`](Self::build)s and [`run`](SearchSession::run)s in one
    /// call.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build) and [`run`](SearchSession::run).
    pub fn run(self) -> Result<SearchOutcome, Error> {
        self.build()?.run()
    }
}

impl<'a> SearchSession<'a> {
    /// Starts an empty builder.
    pub fn builder() -> SearchSessionBuilder<'a> {
        SearchSessionBuilder {
            evaluator: None,
            reward: None,
            config: SearchConfig::default(),
            strategy: Strategy::default(),
            trace: Trace::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
            fault_budget: None,
            scoring: None,
            cancel: None,
            resume: None,
        }
    }

    /// Starts a builder preloaded from a checkpoint file: strategy,
    /// config, reward, history, RNG stream and controller come from the
    /// snapshot; the caller supplies the evaluator (checkpoints record
    /// only its name) and may attach a trace sink. The checkpoint's
    /// parent directory becomes the new checkpoint directory, so the
    /// resumed run keeps checkpointing on the same cadence.
    ///
    /// The continued run replays the remaining iterations bit-identically
    /// to an uninterrupted run with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`] when the file cannot be read or fails
    /// validation (bad magic, checksum mismatch, truncation, malformed
    /// sections).
    pub fn resume_from(path: impl AsRef<Path>) -> Result<SearchSessionBuilder<'a>, Error> {
        let path = path.as_ref();
        let ck = SessionCheckpoint::read_from(path)?;
        let mut builder = SearchSession::builder()
            .reward(ck.reward)
            .config(ck.config.clone())
            .strategy(ck.strategy);
        if ck.checkpoint_every > 0 {
            builder = builder.checkpoint_every(ck.checkpoint_every);
            if let Some(dir) = path.parent() {
                builder = builder.checkpoint_dir(dir);
            }
        }
        builder.resume = Some(ResumeState {
            strategy: ck.strategy,
            evaluator: ck.evaluator,
            update_index: ck.update_index,
            history: ck.history,
            quarantine: ck.quarantine,
            rng_state: ck.rng_state,
            controller: ck.controller,
        });
        Ok(builder)
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured search parameters.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the search to completion and returns the full history (for
    /// a resumed session, including the restored prefix).
    ///
    /// When a trace sink is attached, global telemetry collection
    /// ([`yoso_trace::set_enabled`]) is switched on for the duration so
    /// the pool/GP/controller instrumentation feeds the end-of-run
    /// summary events.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ResumeMismatch`] when the session resumes from a
    /// checkpoint recorded with a different evaluator or strategy,
    /// [`Error::Persist`] when a checkpoint cannot be written,
    /// [`Error::FaultBudgetExhausted`] when a configured
    /// [`fault_budget`](SearchSessionBuilder::fault_budget) trips, and
    /// whatever the evaluator propagates.
    pub fn run(&self) -> Result<SearchOutcome, Error> {
        if let Some(res) = &self.resume {
            if res.evaluator != self.evaluator.name() {
                return Err(Error::ResumeMismatch {
                    expected: format!("evaluator `{}`", res.evaluator),
                    found: format!("evaluator `{}`", self.evaluator.name()),
                });
            }
            if res.strategy != self.strategy {
                return Err(Error::ResumeMismatch {
                    expected: format!("strategy `{}`", res.strategy),
                    found: format!("strategy `{}`", self.strategy),
                });
            }
        }
        if let Some(dir) = &self.checkpoint_dir {
            std::fs::create_dir_all(dir).map_err(Error::from)?;
        }
        let traced = self.trace.is_enabled();
        if traced {
            yoso_trace::set_enabled(true);
        }
        let cache_before = yoso_accel::cache::stats();
        let reg_before = yoso_trace::snapshot();
        if traced {
            let mut start = Event::new("search_start")
                .with_str("strategy", self.strategy.name())
                .with_u64("iterations", self.config.iterations as u64)
                .with_u64(
                    "rollouts_per_update",
                    self.config.rollouts_per_update as u64,
                )
                .with_u64("population", self.config.population as u64)
                .with_u64("tournament", self.config.tournament as u64)
                .with_u64("seed", self.config.seed);
            if let Some(p) = self.scoring {
                start = start.with_str(
                    "scoring",
                    match p {
                        ScoringPrecision::F32 => "f32",
                        ScoringPrecision::Int8 => "int8",
                    },
                );
            }
            if let Some(res) = &self.resume {
                start = start.with_u64("resume_iteration", res.history.len() as u64);
            }
            self.trace.emit(start);
        }
        let t0 = Instant::now();
        let degraded_before = self.evaluator.degraded_queries();
        let outcome = match self.strategy {
            Strategy::Rl => self.run_rl(degraded_before)?,
            Strategy::Evolution => self.run_evolution(degraded_before)?,
            Strategy::Random => self.run_random(degraded_before)?,
        };
        if traced {
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut summary = Event::new("search_summary")
                .with_str("strategy", self.strategy.name())
                .with_u64("iterations", outcome.history.len() as u64)
                .with_f64("wall_ms", wall_ms)
                .with_str("evaluator", self.evaluator.name())
                .with_u64("pareto_size", outcome.archive.len() as u64);
            if !outcome.history.is_empty() {
                let best = outcome.best();
                summary = summary
                    .with_f64("best_reward", best.reward)
                    .with_f64("best_accuracy", best.eval.accuracy)
                    .with_f64("best_latency_ms", best.eval.latency_ms)
                    .with_f64("best_energy_mj", best.eval.energy_mj);
            }
            self.trace.emit(summary);
            self.emit_subsystem_summaries(&cache_before, &reg_before);
            self.emit_fault_summary(&outcome, degraded_before, &reg_before);
            self.trace.flush();
        }
        Ok(outcome)
    }

    /// Emits the cache / GP / pool / controller summary events as deltas
    /// between the run's start and now.
    fn emit_subsystem_summaries(
        &self,
        cache_before: &yoso_accel::cache::CacheStats,
        reg_before: &yoso_trace::RegistrySnapshot,
    ) {
        let cs = yoso_accel::cache::stats();
        self.trace.emit(
            Event::new("cache_summary")
                .with_u64("hits", cs.hits.saturating_sub(cache_before.hits))
                .with_u64("misses", cs.misses.saturating_sub(cache_before.misses))
                .with_u64(
                    "contended_reads",
                    cs.contended_reads
                        .saturating_sub(cache_before.contended_reads),
                )
                .with_u64(
                    "contended_writes",
                    cs.contended_writes
                        .saturating_sub(cache_before.contended_writes),
                )
                .with_u64("entries", cs.entries as u64),
        );
        let reg = yoso_trace::snapshot();
        let delta = |name: &str| reg.counter(name).saturating_sub(reg_before.counter(name));
        let hist_delta = |name: &str| -> (u64, f64) {
            let after = reg.histogram(name).map_or((0, 0), |h| (h.count(), h.sum()));
            let before = reg_before
                .histogram(name)
                .map_or((0, 0), |h| (h.count(), h.sum()));
            (
                after.0.saturating_sub(before.0),
                after.1.saturating_sub(before.1) as f64 / 1e6,
            )
        };
        let (gp_calls, gp_ms) = hist_delta("gp.predict_batch");
        self.trace.emit(
            Event::new("gp_summary")
                .with_u64("batches", delta("gp.batches"))
                .with_u64("points", delta("gp.points"))
                .with_u64("timed_calls", gp_calls)
                .with_f64("total_ms", gp_ms),
        );
        let busy_ns = delta("pool.busy_ns");
        let thread_ns = delta("pool.thread_ns");
        self.trace.emit(
            Event::new("pool_summary")
                .with_u64("maps", delta("pool.maps"))
                .with_u64("items", delta("pool.items"))
                .with_f64("busy_ms", busy_ns as f64 / 1e6)
                .with_f64("thread_ms", thread_ns as f64 / 1e6)
                .with_f64(
                    "utilization",
                    if thread_ns == 0 {
                        0.0
                    } else {
                        busy_ns as f64 / thread_ns as f64
                    },
                ),
        );
        let (samples, sample_ms) = hist_delta("controller.sample");
        let (updates, update_ms) = hist_delta("controller.update");
        self.trace.emit(
            Event::new("controller_summary")
                .with_u64("samples", samples)
                .with_f64("sample_ms", sample_ms)
                .with_u64("updates", updates)
                .with_f64("update_ms", update_ms),
        );
    }

    /// Emits the `"fault_summary"` event — only when this run actually
    /// absorbed faults, so fault-free traces stay byte-identical to runs
    /// of builds without the fault-tolerance layer.
    fn emit_fault_summary(
        &self,
        outcome: &SearchOutcome,
        degraded_before: u64,
        reg_before: &yoso_trace::RegistrySnapshot,
    ) {
        let degraded = self
            .evaluator
            .degraded_queries()
            .saturating_sub(degraded_before);
        let injected = if yoso_chaos::armed() {
            yoso_chaos::injected_total()
        } else {
            0
        };
        let reg = yoso_trace::snapshot();
        let delta = |name: &str| reg.counter(name).saturating_sub(reg_before.counter(name));
        let panics = delta("pool.panics_caught");
        let retries = delta("pool.retries");
        if outcome.quarantine.is_empty() && degraded == 0 && injected == 0 && panics == 0 {
            return;
        }
        self.trace.emit(
            Event::new("fault_summary")
                .with_u64("quarantined", outcome.quarantine.len() as u64)
                .with_u64("degraded_queries", degraded)
                .with_u64("injected_faults", injected)
                .with_u64("pool_panics_caught", panics)
                .with_u64("pool_retries", retries)
                .with_u64("pool_items_recovered", delta("pool.items_recovered")),
        );
    }

    fn emit_iter(&self, rec: &SearchRecord, entropy: Option<f64>, fault: Option<NonFiniteMetric>) {
        if self.trace.is_enabled() {
            let mut e = SearchEvent::from_record(rec, entropy).to_event();
            // The extra field appears only on quarantined iterations, so
            // fault-free streams are unchanged byte for byte.
            if let Some(reason) = fault {
                e = e.with_str("quarantined", reason.name());
            }
            self.trace.emit(e);
        }
    }

    /// Sleeps when an armed chaos plan injects a `SlowEval` fault; one
    /// injection opportunity per candidate evaluation.
    fn chaos_slow_eval(&self) {
        if yoso_chaos::armed() {
            if let Some(d) = yoso_chaos::eval_delay() {
                std::thread::sleep(d);
            }
        }
    }

    /// Scores one evaluated candidate through the non-finite guard.
    ///
    /// A clean candidate gets its composite reward; a candidate with any
    /// non-finite metric (or a chaos-poisoned reward) is quarantined: the
    /// returned record carries [`QUARANTINE_REWARD`] and a sanitized
    /// evaluation (non-finite fields zeroed, keeping the history and its
    /// JSONL stream finite), and the raw observation plus the offending
    /// metric come back alongside for the quarantine ledger.
    fn guard(
        &self,
        iteration: usize,
        point: DesignPoint,
        eval: Evaluation,
    ) -> (SearchRecord, Option<(NonFiniteMetric, Evaluation)>) {
        let mut checked =
            self.reward
                .checked_reward(eval.accuracy, eval.latency_ms, eval.energy_mj);
        if yoso_chaos::armed() {
            if let Ok(r) = checked {
                if !yoso_chaos::poison_f64(yoso_chaos::FaultKind::NanReward, r).is_finite() {
                    checked = Err(NonFiniteMetric::Reward);
                }
            }
        }
        match checked {
            Ok(reward) => (
                SearchRecord {
                    iteration,
                    point,
                    eval,
                    reward,
                },
                None,
            ),
            Err(reason) => {
                let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
                let rec = SearchRecord {
                    iteration,
                    point,
                    eval: Evaluation {
                        accuracy: finite(eval.accuracy),
                        latency_ms: finite(eval.latency_ms),
                        energy_mj: finite(eval.energy_mj),
                    },
                    reward: QUARANTINE_REWARD,
                };
                (rec, Some((reason, eval)))
            }
        }
    }

    /// Appends a quarantine-ledger entry for a guarded-out candidate.
    fn push_quarantine(
        &self,
        outcome: &mut SearchOutcome,
        rec: &SearchRecord,
        raw: Evaluation,
        reason: NonFiniteMetric,
        actions: Option<Vec<usize>>,
    ) {
        if yoso_trace::enabled() {
            yoso_trace::counter_add("session.quarantined", 1);
        }
        outcome.quarantine.push(QuarantineEntry {
            iteration: rec.iteration,
            point: rec.point,
            actions,
            eval: raw,
            reason,
        });
    }

    /// Evaluates and guards one candidate (serial strategies).
    fn record(
        &self,
        iteration: usize,
        point: DesignPoint,
    ) -> Result<(SearchRecord, Option<(NonFiniteMetric, Evaluation)>), Error> {
        self.chaos_slow_eval();
        let eval = self.evaluator.evaluate(&point)?;
        Ok(self.guard(iteration, point, eval))
    }

    /// Errors out with [`Error::FaultBudgetExhausted`] when the faults
    /// absorbed so far (quarantined candidates + degraded evaluator
    /// queries this run) exceed the configured budget, writing an
    /// emergency checkpoint first when a directory is available.
    fn check_fault_budget(
        &self,
        outcome: &SearchOutcome,
        degraded_before: u64,
        update_index: u64,
        rng: &StdRng,
        controller: Option<&Controller>,
    ) -> Result<(), Error> {
        let Some(budget) = self.fault_budget else {
            return Ok(());
        };
        let faults = outcome.quarantine.len() as u64
            + self
                .evaluator
                .degraded_queries()
                .saturating_sub(degraded_before);
        if faults <= budget {
            return Ok(());
        }
        let checkpoint = match self.checkpoint_dir.as_ref() {
            Some(dir) => {
                let path = dir.join(checkpoint_file_name(outcome.history.len()));
                CheckpointWriter {
                    strategy: self.strategy,
                    evaluator: self.evaluator.name(),
                    checkpoint_every: self.checkpoint_every.unwrap_or(0),
                    config: &self.config,
                    reward: &self.reward,
                    update_index,
                    history: &outcome.history,
                    quarantine: &outcome.quarantine,
                    rng_state: rng.state(),
                    controller,
                }
                .write_to(&path)?;
                Some(path)
            }
            None => None,
        };
        if self.trace.is_enabled() {
            let mut e = Event::new("fault_budget_exhausted")
                .with_u64("faults", faults)
                .with_u64("budget", budget);
            if let Some(p) = &checkpoint {
                e = e.with_str("checkpoint", p.display().to_string());
            }
            self.trace.emit(e);
            self.trace.flush();
        }
        Err(Error::FaultBudgetExhausted {
            faults,
            budget,
            checkpoint,
        })
    }

    /// Errors out with [`Error::Canceled`] when the cancel flag has been
    /// raised, writing a suspend checkpoint first when a directory is
    /// available. Called at the same boundaries as the fault-budget
    /// check, so an RL suspend checkpoint always lands on a
    /// controller-update boundary and resumes bit-identically.
    fn check_canceled(
        &self,
        outcome: &SearchOutcome,
        update_index: u64,
        rng: &StdRng,
        controller: Option<&Controller>,
    ) -> Result<(), Error> {
        let Some(flag) = &self.cancel else {
            return Ok(());
        };
        if !flag.load(Ordering::Relaxed) {
            return Ok(());
        }
        let iterations = outcome.history.len();
        let checkpoint = match self.checkpoint_dir.as_ref() {
            Some(dir) => {
                let path = dir.join(checkpoint_file_name(iterations));
                CheckpointWriter {
                    strategy: self.strategy,
                    evaluator: self.evaluator.name(),
                    checkpoint_every: self.checkpoint_every.unwrap_or(0),
                    config: &self.config,
                    reward: &self.reward,
                    update_index,
                    history: &outcome.history,
                    quarantine: &outcome.quarantine,
                    rng_state: rng.state(),
                    controller,
                }
                .write_to(&path)?;
                Some(path)
            }
            None => None,
        };
        if self.trace.is_enabled() {
            let mut e = Event::new("session_canceled").with_u64("iteration", iterations as u64);
            if let Some(p) = &checkpoint {
                e = e.with_str("checkpoint", p.display().to_string());
            }
            self.trace.emit(e);
            self.trace.flush();
        }
        Err(Error::Canceled {
            iterations,
            checkpoint,
        })
    }

    /// Writes a checkpoint when the cadence since `last_ckpt` is due.
    /// `completed` counts evaluated iterations (= `history.len()`).
    fn maybe_checkpoint(
        &self,
        completed: usize,
        last_ckpt: &mut usize,
        update_index: u64,
        outcome: &SearchOutcome,
        rng: &StdRng,
        controller: Option<&Controller>,
    ) -> Result<(), Error> {
        let (Some(every), Some(dir)) = (self.checkpoint_every, self.checkpoint_dir.as_ref()) else {
            return Ok(());
        };
        if completed.saturating_sub(*last_ckpt) < every {
            return Ok(());
        }
        CheckpointWriter {
            strategy: self.strategy,
            evaluator: self.evaluator.name(),
            checkpoint_every: every,
            config: &self.config,
            reward: &self.reward,
            update_index,
            history: &outcome.history,
            quarantine: &outcome.quarantine,
            rng_state: rng.state(),
            controller,
        }
        .write_to(dir.join(checkpoint_file_name(completed)))?;
        *last_ckpt = completed;
        Ok(())
    }

    /// RL-based search (paper step 2): the LSTM controller generates
    /// joint DNN + accelerator action sequences, the evaluator scores
    /// them in batches, and REINFORCE steers the policy towards higher
    /// composite reward.
    fn run_rl(&self, degraded_before: u64) -> Result<SearchOutcome, Error> {
        let cfg = &self.config;
        let space = ActionSpace::new();
        let mut outcome = SearchOutcome::default();
        let mut update_index = 0u64;
        let mut last_ckpt = 0usize;
        let (mut controller, mut rng) = match &self.resume {
            Some(res) => {
                outcome = SearchOutcome::from_parts(res.history.clone(), res.quarantine.clone());
                update_index = res.update_index;
                last_ckpt = res.history.len();
                let controller = res
                    .controller
                    .clone()
                    .ok_or_else(|| Error::ResumeMismatch {
                        expected: "an RL checkpoint with a controller section".into(),
                        found: "a checkpoint without one".into(),
                    })?;
                (controller, StdRng::from_state(res.rng_state))
            }
            None => {
                let mut ctrl_cfg = ControllerConfig::paper_default(space.vocab_sizes().to_vec());
                ctrl_cfg.seed = cfg.seed;
                (
                    Controller::new(ctrl_cfg),
                    StdRng::seed_from_u64(cfg.seed ^ 0xABCD),
                )
            }
        };
        let mut iteration = outcome.history.len();
        while iteration < cfg.iterations {
            let batch_n = cfg.rollouts_per_update.min(cfg.iterations - iteration);
            let rollouts: Vec<Rollout> =
                (0..batch_n).map(|_| controller.sample(&mut rng)).collect();
            let mut points: Vec<DesignPoint> = Vec::with_capacity(batch_n);
            for r in &rollouts {
                points.push(space.decode(&r.actions)?);
            }
            for _ in 0..points.len() {
                self.chaos_slow_eval();
            }
            let evals = self.evaluator.evaluate_batch(&points)?;
            let mut batch: Vec<(Rollout, f64)> = Vec::with_capacity(batch_n);
            for (rollout, (point, eval)) in rollouts.into_iter().zip(points.into_iter().zip(evals))
            {
                let entropy = rollout.entropy;
                let (rec, fault) = self.guard(iteration, point, eval);
                self.emit_iter(&rec, Some(entropy), fault.map(|(m, _)| m));
                match fault {
                    // Quarantined rollouts never reach REINFORCE: learning
                    // from a sentinel reward would poison the baseline.
                    Some((reason, raw)) => {
                        self.push_quarantine(&mut outcome, &rec, raw, reason, Some(rollout.actions))
                    }
                    None => batch.push((rollout, rec.reward)),
                }
                outcome.record(rec);
                iteration += 1;
            }
            // An all-quarantined batch skips the update entirely — the
            // policy neither learns from faults nor asserts on an empty
            // batch; the update index still advances so the checkpoint
            // cadence is unaffected.
            if !batch.is_empty() {
                let stats = controller.update(&batch);
                if self.trace.is_enabled() {
                    self.trace.emit(
                        Event::new("controller_update")
                            .with_u64("update", update_index)
                            .with_u64("iteration", iteration as u64)
                            .with_f64("mean_reward", stats.mean_reward)
                            .with_f64("baseline", stats.baseline)
                            .with_f64("grad_norm", stats.grad_norm as f64)
                            .with_f64("mean_entropy", stats.mean_entropy),
                    );
                }
            }
            update_index += 1;
            self.check_fault_budget(
                &outcome,
                degraded_before,
                update_index,
                &rng,
                Some(&controller),
            )?;
            self.check_canceled(&outcome, update_index, &rng, Some(&controller))?;
            self.maybe_checkpoint(
                iteration,
                &mut last_ckpt,
                update_index,
                &outcome,
                &rng,
                Some(&controller),
            )?;
        }
        Ok(outcome)
    }

    /// Regularized-evolution search (Real et al., the AmoebaNet method
    /// cited as \[9\]): tournament selection over a sliding population
    /// with single-symbol mutation through the action codec.
    fn run_evolution(&self, degraded_before: u64) -> Result<SearchOutcome, Error> {
        let cfg = &self.config;
        let mut outcome = SearchOutcome::default();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0_5EED);
        let mut last_ckpt = 0usize;
        let mut pop: std::collections::VecDeque<SearchRecord> = std::collections::VecDeque::new();
        if let Some(res) = &self.resume {
            outcome = SearchOutcome::from_parts(res.history.clone(), res.quarantine.clone());
            last_ckpt = res.history.len();
            rng = StdRng::from_state(res.rng_state);
            // The sliding population is a pure function of the history:
            // replay the push/evict sequence to rebuild it (the Pareto
            // archive is rebuilt the same way inside `from_parts`).
            for rec in &outcome.history {
                pop.push_back(*rec);
                if pop.len() > cfg.population {
                    pop.pop_front();
                }
            }
        }
        for iteration in outcome.history.len()..cfg.iterations {
            let (rec, fault) = if pop.len() < cfg.population {
                self.record(iteration, DesignPoint::random(&mut rng))?
            } else {
                // Tournament: sample `tournament` members, mutate the
                // fittest. Quarantined members carry the sentinel reward,
                // so they can sit in the population but never win.
                let parent = (0..cfg.tournament)
                    .map(|_| &pop[rand::RngExt::random_range(&mut rng, 0..pop.len())])
                    .max_by(|a, b| a.reward.total_cmp(&b.reward))
                    .expect("tournament > 0");
                let child = parent.point.mutate(&mut rng);
                self.record(iteration, child)?
            };
            self.emit_iter(&rec, None, fault.map(|(m, _)| m));
            if let Some((reason, raw)) = fault {
                self.push_quarantine(&mut outcome, &rec, raw, reason, None);
            }
            pop.push_back(rec);
            if pop.len() > cfg.population {
                pop.pop_front(); // regularization: age-based removal
            }
            outcome.record(rec);
            self.check_fault_budget(&outcome, degraded_before, 0, &rng, None)?;
            self.check_canceled(&outcome, 0, &rng, None)?;
            self.maybe_checkpoint(iteration + 1, &mut last_ckpt, 0, &outcome, &rng, None)?;
        }
        Ok(outcome)
    }

    /// Uniform random search over the joint space.
    fn run_random(&self, degraded_before: u64) -> Result<SearchOutcome, Error> {
        let cfg = &self.config;
        let mut outcome = SearchOutcome::default();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1234);
        let mut last_ckpt = 0usize;
        if let Some(res) = &self.resume {
            outcome = SearchOutcome::from_parts(res.history.clone(), res.quarantine.clone());
            last_ckpt = res.history.len();
            rng = StdRng::from_state(res.rng_state);
        }
        for iteration in outcome.history.len()..cfg.iterations {
            let (rec, fault) = self.record(iteration, DesignPoint::random(&mut rng))?;
            self.emit_iter(&rec, None, fault.map(|(m, _)| m));
            if let Some((reason, raw)) = fault {
                self.push_quarantine(&mut outcome, &rec, raw, reason, None);
            }
            outcome.record(rec);
            self.check_fault_budget(&outcome, degraded_before, 0, &rng, None)?;
            self.check_canceled(&outcome, 0, &rng, None)?;
            self.maybe_checkpoint(iteration + 1, &mut last_ckpt, 0, &outcome, &rng, None)?;
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{calibrate_constraints, SurrogateEvaluator};
    use yoso_arch::NetworkSkeleton;

    fn setup() -> (SurrogateEvaluator, RewardConfig) {
        let sk = NetworkSkeleton::tiny();
        let ev = SurrogateEvaluator::new(sk.clone());
        let cons = calibrate_constraints(&sk, 60, 0, 50.0);
        (ev, RewardConfig::balanced(cons))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "yoso-session-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sessions_are_deterministic_per_strategy() {
        let (ev, rc) = setup();
        let cfg = SearchConfig::builder()
            .iterations(40)
            .rollouts_per_update(4)
            .seed(6)
            .population(16)
            .tournament(4)
            .build();
        for strategy in [Strategy::Rl, Strategy::Evolution, Strategy::Random] {
            let run = || {
                SearchSession::builder()
                    .evaluator(&ev)
                    .reward(rc)
                    .config(cfg.clone())
                    .strategy(strategy)
                    .run()
                    .unwrap()
            };
            let first = run();
            assert_eq!(first, run(), "{strategy} diverged between identical runs");
            assert_eq!(first.history.len(), 40);
        }
    }

    #[test]
    fn cancel_flag_suspends_and_resume_completes_identically() {
        let (ev, rc) = setup();
        let cfg = SearchConfig::builder()
            .iterations(30)
            .rollouts_per_update(5)
            .seed(11)
            .build();
        let full_trace = Trace::memory();
        let full = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(cfg.clone())
            .strategy(Strategy::Rl)
            .trace(full_trace.clone())
            .run()
            .unwrap();

        // Raise the flag from a watcher thread once a few events exist;
        // the session stops at the next update boundary with a suspend
        // checkpoint.
        let dir = temp_dir("cancel");
        let flag = Arc::new(AtomicBool::new(true)); // pre-raised: stops ASAP
        let suspended_trace = Trace::memory();
        let err = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(cfg.clone())
            .strategy(Strategy::Rl)
            .checkpoint_dir(&dir)
            .cancel_flag(Arc::clone(&flag))
            .trace(suspended_trace.clone())
            .run()
            .unwrap_err();
        let Error::Canceled {
            iterations,
            checkpoint: Some(ckpt),
        } = err
        else {
            panic!("expected Canceled with checkpoint, got {err:?}");
        };
        assert_eq!(iterations, 5, "stops at the first update boundary");
        assert!(suspended_trace
            .lines()
            .iter()
            .any(|l| l.contains("\"session_canceled\"")));

        // Resume with the flag lowered: the combined search_iter stream
        // is byte-identical to the uninterrupted run.
        let resumed_trace = Trace::memory();
        let resumed = SearchSession::resume_from(&ckpt)
            .unwrap()
            .evaluator(&ev)
            .trace(resumed_trace.clone())
            .run()
            .unwrap();
        assert_eq!(resumed, full, "resumed outcome diverged");
        let iter_lines = |t: &Trace| {
            t.lines()
                .into_iter()
                .filter(|l| l.contains("\"search_iter\""))
                .collect::<Vec<_>>()
        };
        let mut stitched = iter_lines(&suspended_trace);
        stitched.extend(iter_lines(&resumed_trace));
        assert_eq!(stitched, iter_lines(&full_trace));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cancel_without_checkpoint_dir_reports_no_checkpoint() {
        let (ev, rc) = setup();
        let err = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(SearchConfig::builder().iterations(10).build())
            .strategy(Strategy::Random)
            .cancel_flag(Arc::new(AtomicBool::new(true)))
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::Canceled {
                    iterations: 1,
                    checkpoint: None
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn builder_getters_report_configuration() {
        let (ev, rc) = setup();
        let cfg = SearchConfig::builder().iterations(7).seed(3).build();
        let b = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(cfg.clone())
            .strategy(Strategy::Evolution)
            .checkpoint_every(4)
            .fault_budget(9)
            .scoring_precision(ScoringPrecision::F32);
        assert_eq!(b.configured_strategy(), Strategy::Evolution);
        assert_eq!(b.configured_config(), &cfg);
        assert_eq!(b.configured_reward(), Some(&rc));
        assert_eq!(b.configured_checkpoint_every(), Some(4));
        assert_eq!(b.configured_fault_budget(), Some(9));
        assert_eq!(
            b.configured_scoring_precision(),
            Some(ScoringPrecision::F32)
        );
        let empty = SearchSession::builder();
        assert_eq!(empty.configured_strategy(), Strategy::Rl);
        assert!(empty.configured_reward().is_none());
    }

    #[test]
    fn strategy_from_name_round_trips() {
        for s in [Strategy::Rl, Strategy::Evolution, Strategy::Random] {
            assert_eq!(Strategy::from_name(s.name()), Some(s));
        }
        assert_eq!(Strategy::from_name("bogus"), None);
    }

    #[test]
    fn traced_session_emits_one_event_per_iteration() {
        let (ev, rc) = setup();
        let trace = Trace::memory();
        let out = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(
                SearchConfig::builder()
                    .iterations(25)
                    .rollouts_per_update(5)
                    .build(),
            )
            .strategy(Strategy::Rl)
            .trace(trace.clone())
            .run()
            .unwrap();
        let lines = trace.lines();
        let iters: Vec<SearchEvent> = lines.iter().filter_map(|l| SearchEvent::parse(l)).collect();
        assert_eq!(iters.len(), 25);
        for (i, (e, rec)) in iters.iter().zip(&out.history).enumerate() {
            assert_eq!(e.iteration, i as u64);
            assert_eq!(e.reward, rec.reward);
            assert_eq!(e.accuracy, rec.eval.accuracy);
            assert!(e.entropy.is_some(), "RL events carry entropy");
        }
        // Bracketing + subsystem summaries all present and parseable.
        for kind in [
            "search_start",
            "search_summary",
            "cache_summary",
            "gp_summary",
            "pool_summary",
            "controller_summary",
            "controller_update",
        ] {
            assert!(
                lines
                    .iter()
                    .filter_map(|l| Event::parse(l).ok())
                    .any(|e| e.kind == kind),
                "missing {kind}"
            );
        }
    }

    #[test]
    fn search_iter_stream_is_thread_count_invariant() {
        let (ev, rc) = setup();
        let run_with = |threads: usize| {
            yoso_pool::set_num_threads(threads);
            let trace = Trace::memory();
            SearchSession::builder()
                .evaluator(&ev)
                .reward(rc)
                .config(
                    SearchConfig::builder()
                        .iterations(30)
                        .rollouts_per_update(6)
                        .seed(3)
                        .build(),
                )
                .strategy(Strategy::Rl)
                .trace(trace.clone())
                .run()
                .unwrap();
            yoso_pool::set_num_threads(0);
            trace
                .lines()
                .into_iter()
                .filter(|l| l.contains("\"search_iter\""))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_with(1), run_with(8));
    }

    #[test]
    fn untraced_session_emits_nothing() {
        let (ev, rc) = setup();
        let out = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(SearchConfig::builder().iterations(10).build())
            .strategy(Strategy::Random)
            .run()
            .unwrap();
        assert_eq!(out.history.len(), 10);
    }

    #[test]
    fn builder_rejects_missing_evaluator() {
        let err = SearchSession::builder().reward(setup().1).build().err();
        assert!(
            matches!(err, Some(Error::InvalidConfig(ref m)) if m.contains(".evaluator")),
            "{err:?}"
        );
    }

    #[test]
    fn builder_rejects_checkpointing_without_dir() {
        let (ev, rc) = setup();
        let err = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .checkpoint_every(5)
            .build()
            .err();
        assert!(
            matches!(err, Some(Error::InvalidConfig(ref m)) if m.contains("checkpoint_dir")),
            "{err:?}"
        );
        let err = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .checkpoint_every(0)
            .checkpoint_dir("/tmp/nowhere")
            .build()
            .err();
        assert!(matches!(err, Some(Error::InvalidConfig(_))), "{err:?}");
    }

    #[test]
    fn resumed_runs_match_uninterrupted_runs() {
        let (ev, rc) = setup();
        for (strategy, tag) in [
            (Strategy::Rl, "rl"),
            (Strategy::Evolution, "evo"),
            (Strategy::Random, "rand"),
        ] {
            let dir = temp_dir(tag);
            let cfg = SearchConfig::builder()
                .iterations(24)
                .rollouts_per_update(4)
                .seed(17)
                .population(8)
                .tournament(3)
                .build();
            let full = SearchSession::builder()
                .evaluator(&ev)
                .reward(rc)
                .config(cfg.clone())
                .strategy(strategy)
                .checkpoint_every(12)
                .checkpoint_dir(&dir)
                .run()
                .unwrap();
            let ckpt = dir.join(checkpoint_file_name(12));
            assert!(ckpt.exists(), "{strategy}: checkpoint at 12 missing");
            // Simulated SIGKILL: the session object is gone; rebuild
            // everything from the on-disk snapshot.
            let resumed = SearchSession::resume_from(&ckpt)
                .unwrap()
                .evaluator(&ev)
                .run()
                .unwrap();
            assert_eq!(resumed, full, "{strategy}: resumed run diverged");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn resume_rejects_mismatched_evaluator_and_strategy() {
        let (ev, rc) = setup();
        let dir = temp_dir("mismatch");
        SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(SearchConfig::builder().iterations(10).seed(1).build())
            .strategy(Strategy::Random)
            .checkpoint_every(5)
            .checkpoint_dir(&dir)
            .run()
            .unwrap();
        let ckpt = dir.join(checkpoint_file_name(5));
        // Wrong strategy: override after resume_from.
        let err = SearchSession::resume_from(&ckpt)
            .unwrap()
            .evaluator(&ev)
            .strategy(Strategy::Evolution)
            .run()
            .err();
        assert!(matches!(err, Some(Error::ResumeMismatch { .. })), "{err:?}");
        // Wrong evaluator: a different name.
        struct Renamed(SurrogateEvaluator);
        impl Evaluator for Renamed {
            fn evaluate(&self, p: &DesignPoint) -> Result<crate::evaluation::Evaluation, Error> {
                self.0.evaluate(p)
            }
            fn name(&self) -> &'static str {
                "renamed"
            }
        }
        let renamed = Renamed(SurrogateEvaluator::new(NetworkSkeleton::tiny()));
        let err = SearchSession::resume_from(&ckpt)
            .unwrap()
            .evaluator(&renamed)
            .run()
            .err();
        assert!(matches!(err, Some(Error::ResumeMismatch { .. })), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checkpoint_resume_is_a_typed_error() {
        let (ev, rc) = setup();
        let dir = temp_dir("corrupt");
        SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(SearchConfig::builder().iterations(8).seed(2).build())
            .strategy(Strategy::Random)
            .checkpoint_every(4)
            .checkpoint_dir(&dir)
            .run()
            .unwrap();
        let ckpt = dir.join(checkpoint_file_name(4));
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&ckpt, &bytes).unwrap();
        let err = SearchSession::resume_from(&ckpt).err();
        assert!(
            matches!(
                err,
                Some(Error::Persist(
                    yoso_persist::PersistError::ChecksumMismatch { .. }
                ))
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_event_roundtrips_via_json() {
        let e = SearchEvent {
            iteration: 12,
            reward: 0.7312,
            accuracy: 0.915,
            latency_ms: 0.4431,
            energy_mj: 3.02,
            entropy: Some(11.92),
        };
        assert_eq!(SearchEvent::parse(&e.to_json()), Some(e));
        let no_entropy = SearchEvent { entropy: None, ..e };
        assert_eq!(SearchEvent::parse(&no_entropy.to_json()), Some(no_entropy));
        // Wrong kind is rejected.
        assert_eq!(SearchEvent::from_event(&Event::new("other")), None);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Rl.to_string(), "rl");
        assert_eq!(Strategy::Evolution.to_string(), "evolution");
        assert_eq!(Strategy::Random.to_string(), "random");
        assert_eq!(Strategy::default(), Strategy::Rl);
    }
}
