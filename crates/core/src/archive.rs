//! Non-dominated Pareto archive over typed multi-objective outcomes.
//!
//! A single co-design search explores thousands of `(accuracy, latency,
//! energy)` trade-offs; tracking only the scalar-reward champion throws
//! the rest away. The [`ParetoArchive`] keeps every candidate that is not
//! dominated in the typed [`Objectives`] space, so one run can answer
//! many deployment targets ("highest accuracy under 1 ms", "lowest
//! energy above 90% accuracy", …) after the fact, filtered through
//! RHNAS-style [`FeasibilityCaps`] (latency/energy thresholds plus
//! area and power proxies).
//!
//! ## Determinism contract
//!
//! The archive is a **pure function of the search history as a set**:
//! inserting the same records in any order produces the same entry list,
//! because entries are kept in a canonical objective-sorted order and
//! exact-duplicate objectives resolve to the earliest iteration. Since
//! the per-iteration history is itself bit-identical across worker-pool
//! thread counts and across checkpoint/resume, so is the archive — the
//! property tests in this module and in `search`/`session` pin all three
//! invariances.

use crate::evaluation::Evaluation;
use crate::search::{SearchRecord, QUARANTINE_REWARD};
use yoso_arch::HwConfig;

/// The three search objectives as a typed point: accuracy is maximized,
/// latency and energy are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Predicted validation accuracy in `[0, 1]` (maximize).
    pub accuracy: f64,
    /// Predicted end-to-end latency in ms (minimize).
    pub latency_ms: f64,
    /// Predicted end-to-end energy in mJ (minimize).
    pub energy_mj: f64,
}

impl Objectives {
    /// The objective point of an evaluation.
    pub fn of(eval: &Evaluation) -> Objectives {
        Objectives {
            accuracy: eval.accuracy,
            latency_ms: eval.latency_ms,
            energy_mj: eval.energy_mj,
        }
    }

    /// Strict Pareto dominance: no objective worse, at least one strictly
    /// better.
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.accuracy >= other.accuracy
            && self.latency_ms <= other.latency_ms
            && self.energy_mj <= other.energy_mj
            && (self.accuracy > other.accuracy
                || self.latency_ms < other.latency_ms
                || self.energy_mj < other.energy_mj)
    }

    /// All three metrics are finite.
    pub fn is_finite(&self) -> bool {
        self.accuracy.is_finite() && self.latency_ms.is_finite() && self.energy_mj.is_finite()
    }
}

/// One objective axis, for rank queries like
/// [`SearchOutcome::top_k_by`](crate::search::SearchOutcome::top_k_by).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Validation accuracy — higher is better.
    Accuracy,
    /// Latency in ms — lower is better.
    LatencyMs,
    /// Energy in mJ — lower is better.
    EnergyMj,
    /// The composite scalar reward — higher is better.
    Reward,
}

impl Objective {
    /// Compares two records so that the *better* one under this objective
    /// orders first.
    pub fn better_first(&self, a: &SearchRecord, b: &SearchRecord) -> std::cmp::Ordering {
        match self {
            Objective::Accuracy => b.eval.accuracy.total_cmp(&a.eval.accuracy),
            Objective::LatencyMs => a.eval.latency_ms.total_cmp(&b.eval.latency_ms),
            Objective::EnergyMj => a.eval.energy_mj.total_cmp(&b.eval.energy_mj),
            Objective::Reward => b.reward.total_cmp(&a.reward),
        }
    }
}

/// Deployment-target feasibility caps in the style of RHNAS: hard upper
/// bounds a served design must satisfy. All caps are optional; an unset
/// cap admits everything on that axis.
///
/// Latency and energy caps test the evaluation directly. The power cap
/// tests average power `energy_mj / latency_ms` (mJ/ms = W). The area
/// cap tests [`area_units`], a fixed structural proxy of the accelerator
/// configuration — this repo's cost model has no silicon-area term, so
/// the proxy stands in for one, with the same monotonicity (more PEs /
/// larger buffers cost more area).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeasibilityCaps {
    /// Maximum latency in ms.
    pub max_latency_ms: Option<f64>,
    /// Maximum energy in mJ.
    pub max_energy_mj: Option<f64>,
    /// Maximum average power in W (`energy_mj / latency_ms`).
    pub max_power_w: Option<f64>,
    /// Maximum accelerator area in [`area_units`].
    pub max_area_units: Option<f64>,
}

impl FeasibilityCaps {
    /// No caps: admits every record.
    pub fn none() -> FeasibilityCaps {
        FeasibilityCaps::default()
    }

    /// Whether a record satisfies every configured cap.
    pub fn admits(&self, rec: &SearchRecord) -> bool {
        if let Some(cap) = self.max_latency_ms {
            if rec.eval.latency_ms > cap {
                return false;
            }
        }
        if let Some(cap) = self.max_energy_mj {
            if rec.eval.energy_mj > cap {
                return false;
            }
        }
        if let Some(cap) = self.max_power_w {
            if power_w(&rec.eval) > cap {
                return false;
            }
        }
        if let Some(cap) = self.max_area_units {
            if area_units(&rec.point.hw) > cap {
                return false;
            }
        }
        true
    }
}

/// Structural area proxy of an accelerator configuration, in arbitrary
/// but fixed units: one unit per PE, half a unit per KB of global
/// buffer, and the aggregate register-buffer capacity scaled to the same
/// ballpark. Monotone in every hardware parameter, so an area cap prunes
/// the way a real floorplan constraint would.
pub fn area_units(hw: &HwConfig) -> f64 {
    let pes = hw.pe.count() as f64;
    pes + 0.5 * hw.gbuf_kb as f64 + pes * hw.rbuf_bytes as f64 / 2048.0
}

/// Average power draw in watts implied by an evaluation
/// (`energy_mj / latency_ms`; mJ per ms is exactly W). Zero latency maps
/// to infinite power, which no finite cap admits.
pub fn power_w(eval: &Evaluation) -> f64 {
    if eval.latency_ms > 0.0 {
        eval.energy_mj / eval.latency_ms
    } else {
        f64::INFINITY
    }
}

/// The set of mutually non-dominated records seen so far, in a canonical
/// order (latency, then energy ascending, then accuracy descending, then
/// iteration).
///
/// Quarantined records (the [`QUARANTINE_REWARD`] sentinel) and records
/// with any non-finite objective are rejected on insert: their sanitized
/// zeroed metrics would otherwise falsely dominate every real candidate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoArchive {
    entries: Vec<SearchRecord>,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> ParetoArchive {
        ParetoArchive::default()
    }

    /// Builds the archive of a full history by replaying every insert.
    pub fn from_history(history: &[SearchRecord]) -> ParetoArchive {
        let mut archive = ParetoArchive::new();
        for rec in history {
            archive.insert(*rec);
        }
        archive
    }

    /// Offers a record to the archive. Returns `true` when it was
    /// admitted (it now sits on the front), `false` when it was rejected
    /// (quarantined, non-finite, dominated, or a later duplicate of an
    /// entry with identical objectives).
    pub fn insert(&mut self, rec: SearchRecord) -> bool {
        if rec.reward == QUARANTINE_REWARD {
            return false;
        }
        let obj = Objectives::of(&rec.eval);
        if !obj.is_finite() || !rec.reward.is_finite() {
            return false;
        }
        let same = |e: &SearchRecord| Objectives::of(&e.eval) == obj;
        if self.entries.iter().any(|e| {
            Objectives::of(&e.eval).dominates(&obj) || (same(e) && e.iteration <= rec.iteration)
        }) {
            return false;
        }
        self.entries
            .retain(|e| !obj.dominates(&Objectives::of(&e.eval)) && !same(e));
        let key = |r: &SearchRecord| {
            (
                r.eval.latency_ms,
                r.eval.energy_mj,
                -r.eval.accuracy,
                r.iteration,
            )
        };
        let k = key(&rec);
        let pos = self.entries.partition_point(|e| {
            let ek = key(e);
            (
                ek.0.total_cmp(&k.0),
                ek.1.total_cmp(&k.1),
                ek.2.total_cmp(&k.2),
                ek.3.cmp(&k.3),
            ) < (
                std::cmp::Ordering::Equal,
                std::cmp::Ordering::Equal,
                std::cmp::Ordering::Equal,
                std::cmp::Ordering::Equal,
            )
        });
        self.entries.insert(pos, rec);
        true
    }

    /// The non-dominated records, in canonical order.
    pub fn entries(&self) -> &[SearchRecord] {
        &self.entries
    }

    /// Number of entries on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` best entries under one objective axis (ties broken by
    /// canonical archive order, so the result is deterministic).
    pub fn top_k_by(&self, objective: Objective, k: usize) -> Vec<SearchRecord> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| objective.better_first(a, b));
        sorted.truncate(k);
        sorted
    }

    /// The highest-reward entry admitted by the caps, if any.
    pub fn best_feasible(&self, caps: &FeasibilityCaps) -> Option<&SearchRecord> {
        self.entries
            .iter()
            .filter(|r| caps.admits(r))
            .max_by(|a, b| a.reward.total_cmp(&b.reward))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use yoso_arch::DesignPoint;

    fn rec(iteration: usize, acc: f64, lat: f64, eer: f64) -> SearchRecord {
        SearchRecord {
            iteration,
            point: DesignPoint::random(&mut StdRng::seed_from_u64(iteration as u64)),
            eval: Evaluation {
                accuracy: acc,
                latency_ms: lat,
                energy_mj: eer,
            },
            reward: acc - 0.1 * lat - 0.01 * eer,
        }
    }

    fn random_history(n: usize, seed: u64) -> Vec<SearchRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                rec(
                    i,
                    rng.random_range(0.5..1.0),
                    rng.random_range(0.1..4.0),
                    rng.random_range(1.0..20.0),
                )
            })
            .collect()
    }

    #[test]
    fn dominated_records_never_enter() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(rec(0, 0.9, 1.0, 5.0)));
        // Worse on every axis.
        assert!(!a.insert(rec(1, 0.8, 2.0, 6.0)));
        assert_eq!(a.len(), 1);
        // Better on one axis, worse on another: incomparable, admitted.
        assert!(a.insert(rec(2, 0.95, 2.0, 6.0)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn dominating_record_evicts_the_dominated() {
        let mut a = ParetoArchive::new();
        a.insert(rec(0, 0.8, 2.0, 6.0));
        a.insert(rec(1, 0.7, 1.0, 9.0));
        // Dominates the first entry but not the second.
        assert!(a.insert(rec(2, 0.85, 1.5, 5.0)));
        assert_eq!(a.len(), 2);
        assert!(a.entries().iter().all(|e| e.iteration != 0));
    }

    #[test]
    fn archive_is_always_mutually_nondominated() {
        let a = ParetoArchive::from_history(&random_history(300, 9));
        assert!(!a.is_empty());
        for x in a.entries() {
            for y in a.entries() {
                assert!(
                    !Objectives::of(&x.eval).dominates(&Objectives::of(&y.eval)),
                    "archive entry dominates another"
                );
            }
        }
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let hist = random_history(200, 4);
        let forward = ParetoArchive::from_history(&hist);
        let mut reversed = hist.clone();
        reversed.reverse();
        assert_eq!(forward, ParetoArchive::from_history(&reversed));
        // A deterministic shuffle.
        let mut shuffled = hist.clone();
        let mut rng = StdRng::seed_from_u64(7);
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..i + 1);
            shuffled.swap(i, j);
        }
        assert_eq!(forward, ParetoArchive::from_history(&shuffled));
    }

    #[test]
    fn quarantined_and_nonfinite_records_are_rejected() {
        let mut a = ParetoArchive::new();
        let mut q = rec(0, 0.0, 0.0, 0.0);
        q.reward = QUARANTINE_REWARD;
        assert!(!a.insert(q), "quarantine sentinel must not enter");
        let mut nan = rec(1, f64::NAN, 1.0, 1.0);
        nan.reward = 0.5;
        assert!(!a.insert(nan));
        assert!(a.is_empty());
    }

    #[test]
    fn duplicate_objectives_keep_the_earliest_iteration() {
        let mut a = ParetoArchive::new();
        a.insert(rec(5, 0.9, 1.0, 5.0));
        assert!(!a.insert(rec(9, 0.9, 1.0, 5.0)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].iteration, 5);
        // Inserted in the other order, the earlier iteration still wins.
        let mut b = ParetoArchive::new();
        b.insert(rec(9, 0.9, 1.0, 5.0));
        assert!(b.insert(rec(5, 0.9, 1.0, 5.0)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.entries()[0].iteration, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn top_k_by_each_objective() {
        let a = ParetoArchive::from_history(&random_history(100, 12));
        for obj in [
            Objective::Accuracy,
            Objective::LatencyMs,
            Objective::EnergyMj,
            Objective::Reward,
        ] {
            let top = a.top_k_by(obj, 3);
            assert!(top.len() <= 3 && !top.is_empty());
            for w in top.windows(2) {
                assert_ne!(
                    obj.better_first(&w[0], &w[1]),
                    std::cmp::Ordering::Greater,
                    "top_k_by({obj:?}) out of order"
                );
            }
        }
    }

    #[test]
    fn feasibility_caps_filter_and_best_feasible_maximizes_reward() {
        let a = ParetoArchive::from_history(&random_history(200, 3));
        let unconstrained = a.best_feasible(&FeasibilityCaps::none()).unwrap();
        let best_reward = a
            .entries()
            .iter()
            .map(|r| r.reward)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(unconstrained.reward, best_reward);
        let caps = FeasibilityCaps {
            max_latency_ms: Some(1.0),
            ..FeasibilityCaps::none()
        };
        if let Some(best) = a.best_feasible(&caps) {
            assert!(best.eval.latency_ms <= 1.0);
            for r in a.entries().iter().filter(|r| caps.admits(r)) {
                assert!(best.reward >= r.reward);
            }
        }
        let impossible = FeasibilityCaps {
            max_latency_ms: Some(-1.0),
            ..FeasibilityCaps::none()
        };
        assert!(a.best_feasible(&impossible).is_none());
    }

    #[test]
    fn area_and_power_proxies_are_monotone() {
        use yoso_arch::{Dataflow, PeArray};
        let small = HwConfig {
            pe: PeArray { rows: 8, cols: 8 },
            gbuf_kb: 108,
            rbuf_bytes: 64,
            dataflow: Dataflow::Ws,
        };
        let big = HwConfig {
            pe: PeArray { rows: 16, cols: 32 },
            gbuf_kb: 1024,
            rbuf_bytes: 1024,
            dataflow: Dataflow::Ws,
        };
        assert!(area_units(&big) > area_units(&small));
        let e = Evaluation {
            accuracy: 0.9,
            latency_ms: 2.0,
            energy_mj: 8.0,
        };
        assert_eq!(power_w(&e), 4.0);
        assert_eq!(
            power_w(&Evaluation {
                latency_ms: 0.0,
                ..e
            }),
            f64::INFINITY
        );
    }
}
