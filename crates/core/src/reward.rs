//! The multi-objective reward signal (Eq. 2 of the paper).
//!
//! `R(λ)` combines validation accuracy `A(λ)` with latency and energy
//! measured against user thresholds `t_lat`, `t_eer`, using
//! application-specific constants `α1, ω1, α2, ω2`. The paper's equation
//! is typeset ambiguously; both plausible readings are implemented (see
//! [`RewardForm`]) and compared by an ablation bench.

use serde::{Deserialize, Serialize};

/// Which input (or the computed reward itself) was non-finite — the
/// quarantine signal returned by [`RewardConfig::checked_reward`].
///
/// A NaN/Inf metric must never reach the REINFORCE baseline's moving
/// average (one poisoned sample makes every later baseline NaN) or the GP
/// training set; callers quarantine the candidate instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonFiniteMetric {
    /// `A(λ)` was NaN or infinite.
    Accuracy,
    /// `l(λ)` (latency in ms) was NaN or infinite.
    LatencyMs,
    /// `e(λ)` (energy in mJ) was NaN or infinite.
    EnergyMj,
    /// The inputs were finite but `R(λ)` itself came out non-finite
    /// (e.g. an overflowing power term, or an injected fault).
    Reward,
}

impl NonFiniteMetric {
    /// Stable snake_case name (used in trace events and checkpoints).
    pub fn name(self) -> &'static str {
        match self {
            NonFiniteMetric::Accuracy => "accuracy",
            NonFiniteMetric::LatencyMs => "latency_ms",
            NonFiniteMetric::EnergyMj => "energy_mj",
            NonFiniteMetric::Reward => "reward",
        }
    }
}

impl std::fmt::Display for NonFiniteMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "non-finite {}", self.name())
    }
}

/// Which algebraic form of Eq. 2 to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardForm {
    /// MnasNet-style weighted product (default):
    /// `R = A * [α1 (l/t_lat)^ω1 + α2 (e/t_eer)^ω2]`.
    WeightedProduct,
    /// Pure additive reading:
    /// `R = A + α1 (l/t_lat)^ω1 + α2 (e/t_eer)^ω2`.
    Additive,
}

/// User thresholds on the hardware metrics (paper §IV-A: energy within
/// 9 mJ and latency within 1.2 ms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Latency threshold `t_lat` in ms.
    pub t_lat_ms: f64,
    /// Energy threshold `t_eer` in mJ.
    pub t_eer_mj: f64,
}

impl Constraints {
    /// The paper's thresholds (meaningful at the paper's workload scale).
    pub fn paper() -> Self {
        Constraints {
            t_lat_ms: 1.2,
            t_eer_mj: 9.0,
        }
    }

    /// Whether a measurement satisfies both thresholds.
    pub fn satisfied(&self, latency_ms: f64, energy_mj: f64) -> bool {
        latency_ms <= self.t_lat_ms && energy_mj <= self.t_eer_mj
    }
}

/// Reward configuration: the four constants of Eq. 2 plus thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Latency weight `α1`.
    pub alpha1: f64,
    /// Latency exponent `ω1` (negative: slower ⇒ lower reward).
    pub omega1: f64,
    /// Energy weight `α2`.
    pub alpha2: f64,
    /// Energy exponent `ω2`.
    pub omega2: f64,
    /// Thresholds `t_lat`, `t_eer`.
    pub constraints: Constraints,
    /// Algebraic form.
    pub form: RewardForm,
    /// Screen out threshold violators (paper §IV-A: "designs that fail
    /// these goals will be screened out"): violating candidates receive a
    /// strongly down-scaled reward so the controller learns to avoid them
    /// while final selection ignores them entirely.
    pub hard_constraints: bool,
    /// Saturate the hardware bonus below the thresholds (the MnasNet
    /// "hard" variant): once a design meets `t_lat`/`t_eer`, further
    /// reductions earn no extra reward, so the search spends the budget
    /// on accuracy instead of over-optimizing hardware. Used by the
    /// Fig. 6(b)/(c) trade-off runs.
    pub saturate_below_threshold: bool,
}

impl RewardConfig {
    /// Fig. 6(a) constants: `α1 0.5, ω1 −0.4, α2 0.5, ω2 −0.4`.
    pub fn balanced(constraints: Constraints) -> Self {
        RewardConfig {
            alpha1: 0.5,
            omega1: -0.4,
            alpha2: 0.5,
            omega2: -0.4,
            constraints,
            form: RewardForm::WeightedProduct,
            hard_constraints: false,
            saturate_below_threshold: false,
        }
    }

    /// Fig. 6(b) constants, energy-leaning. The paper lists
    /// `(0.6, −0.4)` and `(0.3, −0.2)` for the accuracy–energy search; we
    /// assign the stronger pair to the *energy* term the figure targets.
    pub fn energy_focused(constraints: Constraints) -> Self {
        RewardConfig {
            alpha1: 0.3,
            omega1: -0.2,
            alpha2: 0.6,
            omega2: -0.4,
            constraints,
            form: RewardForm::WeightedProduct,
            hard_constraints: false,
            saturate_below_threshold: false,
        }
    }

    /// Fig. 6(c) constants, latency-leaning: the stronger pair
    /// `(0.6, −0.4)` goes to the latency term.
    pub fn latency_focused(constraints: Constraints) -> Self {
        RewardConfig {
            alpha1: 0.6,
            omega1: -0.4,
            alpha2: 0.3,
            omega2: -0.3,
            constraints,
            form: RewardForm::WeightedProduct,
            hard_constraints: false,
            saturate_below_threshold: false,
        }
    }

    /// Accuracy-only reward (used by the two-stage baseline's first
    /// stage): hardware terms vanish.
    pub fn accuracy_only(constraints: Constraints) -> Self {
        RewardConfig {
            alpha1: 0.5,
            omega1: 0.0,
            alpha2: 0.5,
            omega2: 0.0,
            constraints,
            form: RewardForm::WeightedProduct,
            hard_constraints: false,
            saturate_below_threshold: false,
        }
    }

    /// Computes `R(λ)` from accuracy (0..1), latency (ms) and energy (mJ).
    pub fn reward(&self, accuracy: f64, latency_ms: f64, energy_mj: f64) -> f64 {
        let mut l = (latency_ms / self.constraints.t_lat_ms).max(1e-9);
        let mut e = (energy_mj / self.constraints.t_eer_mj).max(1e-9);
        if self.saturate_below_threshold {
            l = l.max(1.0);
            e = e.max(1.0);
        }
        let hw = self.alpha1 * l.powf(self.omega1) + self.alpha2 * e.powf(self.omega2);
        let base = match self.form {
            RewardForm::WeightedProduct => accuracy * hw,
            RewardForm::Additive => accuracy + hw - (self.alpha1 + self.alpha2),
        };
        if self.hard_constraints && !self.constraints.satisfied(latency_ms, energy_mj) {
            // Preserve ordering among violators (so the policy gradient
            // still points toward the feasible region) but keep them far
            // below every feasible candidate.
            if base >= 0.0 {
                0.1 * base
            } else {
                base
            }
        } else {
            base
        }
    }

    /// [`RewardConfig::reward`] with runtime non-finite guards: each input
    /// and the computed reward are checked, and the first non-finite value
    /// is reported as a [`NonFiniteMetric`] quarantine signal instead of
    /// letting NaN/Inf flow into the REINFORCE baseline or best-so-far
    /// bookkeeping.
    ///
    /// # Errors
    ///
    /// The offending metric, in input order (`accuracy`, `latency_ms`,
    /// `energy_mj`), or [`NonFiniteMetric::Reward`] when the inputs were
    /// fine but the combination was not.
    pub fn checked_reward(
        &self,
        accuracy: f64,
        latency_ms: f64,
        energy_mj: f64,
    ) -> Result<f64, NonFiniteMetric> {
        if !accuracy.is_finite() {
            return Err(NonFiniteMetric::Accuracy);
        }
        if !latency_ms.is_finite() {
            return Err(NonFiniteMetric::LatencyMs);
        }
        if !energy_mj.is_finite() {
            return Err(NonFiniteMetric::EnergyMj);
        }
        let r = self.reward(accuracy, latency_ms, energy_mj);
        if !r.is_finite() {
            return Err(NonFiniteMetric::Reward);
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RewardConfig {
        RewardConfig::balanced(Constraints::paper())
    }

    #[test]
    fn at_thresholds_reward_equals_accuracy() {
        let r = cfg().reward(0.9, 1.2, 9.0);
        // l = e = 1 => hw term = α1 + α2 = 1 => R = A.
        assert!((r - 0.9).abs() < 1e-12);
        // Additive form: hw - (α1+α2) = 0 => R = A.
        let mut add = cfg();
        add.form = RewardForm::Additive;
        assert!((add.reward(0.9, 1.2, 9.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn slower_designs_score_lower() {
        let c = cfg();
        let fast = c.reward(0.9, 0.6, 9.0);
        let slow = c.reward(0.9, 2.4, 9.0);
        assert!(fast > slow);
    }

    #[test]
    fn hungrier_designs_score_lower() {
        let c = cfg();
        assert!(c.reward(0.9, 1.2, 4.5) > c.reward(0.9, 1.2, 18.0));
    }

    #[test]
    fn higher_accuracy_scores_higher() {
        let c = cfg();
        assert!(c.reward(0.95, 1.0, 8.0) > c.reward(0.90, 1.0, 8.0));
    }

    #[test]
    fn energy_focus_penalizes_energy_more_than_latency_focus() {
        let cons = Constraints::paper();
        let eer = RewardConfig::energy_focused(cons);
        let lat = RewardConfig::latency_focused(cons);
        // Doubling energy hurts the energy-focused reward more; doubling
        // latency hurts the latency-focused reward more.
        let d_eer_eer = eer.reward(0.9, 1.2, 9.0) - eer.reward(0.9, 1.2, 18.0);
        let d_eer_lat = lat.reward(0.9, 1.2, 9.0) - lat.reward(0.9, 1.2, 18.0);
        assert!(d_eer_eer > d_eer_lat);
        let d_lat_eer = eer.reward(0.9, 1.2, 9.0) - eer.reward(0.9, 2.4, 9.0);
        let d_lat_lat = lat.reward(0.9, 1.2, 9.0) - lat.reward(0.9, 2.4, 9.0);
        assert!(d_lat_lat > d_lat_eer);
    }

    #[test]
    fn accuracy_only_ignores_hardware() {
        let c = RewardConfig::accuracy_only(Constraints::paper());
        assert_eq!(c.reward(0.8, 0.1, 0.1), c.reward(0.8, 99.0, 99.0));
    }

    #[test]
    fn hard_constraints_screen_violators() {
        let mut c = cfg();
        c.hard_constraints = true;
        // Feasible design: unchanged.
        let soft = cfg().reward(0.9, 1.0, 8.0);
        assert_eq!(c.reward(0.9, 1.0, 8.0), soft);
        // Violator: scaled down by 10x but still ordered.
        let v1 = c.reward(0.9, 2.0, 8.0);
        let v2 = c.reward(0.9, 4.0, 8.0);
        assert!(v1 < soft * 0.2);
        assert!(v1 > v2, "ordering among violators preserved");
        // Any feasible candidate outranks any violator of similar accuracy.
        assert!(c.reward(0.5, 1.0, 8.0) > v1);
    }

    #[test]
    fn saturation_caps_hardware_bonus() {
        let mut c = cfg();
        c.saturate_below_threshold = true;
        // Below threshold: no extra reward for going lower.
        assert_eq!(c.reward(0.9, 0.6, 4.0), c.reward(0.9, 0.1, 1.0));
        assert_eq!(c.reward(0.9, 0.6, 4.0), 0.9);
        // Above threshold: penalty still applies.
        assert!(c.reward(0.9, 2.4, 4.0) < 0.9);
        // Accuracy remains the tiebreaker among feasible designs.
        assert!(c.reward(0.95, 0.6, 4.0) > c.reward(0.9, 0.2, 1.0));
    }

    #[test]
    fn checked_reward_quarantines_each_non_finite_input() {
        let c = cfg();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                c.checked_reward(bad, 1.0, 8.0),
                Err(NonFiniteMetric::Accuracy)
            );
            assert_eq!(
                c.checked_reward(0.9, bad, 8.0),
                Err(NonFiniteMetric::LatencyMs)
            );
            assert_eq!(
                c.checked_reward(0.9, 1.0, bad),
                Err(NonFiniteMetric::EnergyMj)
            );
        }
        // Input order decides which metric is reported when several are bad.
        assert_eq!(
            c.checked_reward(f64::NAN, f64::NAN, f64::NAN),
            Err(NonFiniteMetric::Accuracy)
        );
    }

    #[test]
    fn checked_reward_catches_non_finite_combinations() {
        // Finite inputs can still overflow the power terms: a huge ω with
        // a tiny ratio drives l^ω to +inf.
        let mut c = cfg();
        c.omega1 = -1e9;
        assert_eq!(
            c.checked_reward(0.9, 1e-30, 9.0),
            Err(NonFiniteMetric::Reward)
        );
    }

    #[test]
    fn checked_reward_matches_reward_on_finite_inputs() {
        let c = cfg();
        assert_eq!(c.checked_reward(0.9, 1.0, 8.0), Ok(c.reward(0.9, 1.0, 8.0)));
        assert_eq!(c.checked_reward(0.0, 0.0, 0.0), Ok(c.reward(0.0, 0.0, 0.0)));
    }

    #[test]
    fn non_finite_metric_names_are_stable() {
        assert_eq!(NonFiniteMetric::Accuracy.name(), "accuracy");
        assert_eq!(NonFiniteMetric::LatencyMs.name(), "latency_ms");
        assert_eq!(NonFiniteMetric::EnergyMj.name(), "energy_mj");
        assert_eq!(NonFiniteMetric::Reward.name(), "reward");
        assert_eq!(NonFiniteMetric::Reward.to_string(), "non-finite reward");
    }

    #[test]
    fn constraints_satisfied() {
        let c = Constraints::paper();
        assert!(c.satisfied(1.2, 9.0));
        assert!(!c.satisfied(1.3, 9.0));
        assert!(!c.satisfied(1.0, 9.5));
    }
}
