//! The unified error type for the co-design engine.
//!
//! Every fallible path in the core crate — evaluator construction,
//! search-session configuration, checkpointing and resume — funnels into
//! [`Error`], with `From` conversions from the substrate-crate error
//! types so `?` composes across layers.

use std::fmt;
use yoso_arch::DecodeActionError;
use yoso_persist::PersistError;
use yoso_predictor::FitError;

/// Unified error for search, evaluation and persistence.
#[derive(Debug)]
pub enum Error {
    /// A checkpoint could not be written, read or decoded.
    Persist(PersistError),
    /// A regressor fit failed while building the fast evaluator.
    Fit(FitError),
    /// An action sequence failed to decode into a design point.
    Decode(DecodeActionError),
    /// A session was configured inconsistently (missing evaluator,
    /// zero-sized population, checkpointing without a directory, …).
    InvalidConfig(String),
    /// A checkpoint does not match the session trying to resume from it
    /// (different evaluator, strategy or configuration).
    ResumeMismatch {
        /// What the checkpoint recorded.
        expected: String,
        /// What the resuming session supplied.
        found: String,
    },
    /// The session's fault budget was exhausted: more candidates were
    /// quarantined or served in degraded mode than
    /// `SearchSessionBuilder::fault_budget` allows. If a checkpoint
    /// directory was configured an emergency checkpoint was written
    /// first, so the run can be resumed (typically with the fault source
    /// fixed or chaos disarmed).
    FaultBudgetExhausted {
        /// Faults observed when the budget tripped.
        faults: u64,
        /// The configured budget.
        budget: u64,
        /// Emergency checkpoint path, when one could be written.
        checkpoint: Option<std::path::PathBuf>,
    },
    /// The session's cancel flag (see
    /// [`SearchSessionBuilder::cancel_flag`]) was raised mid-run. The
    /// session stopped at the next iteration boundary; when a checkpoint
    /// directory was configured a suspend checkpoint was written first,
    /// so the run can later continue via `SearchSession::resume_from`.
    ///
    /// [`SearchSessionBuilder::cancel_flag`]: crate::session::SearchSessionBuilder::cancel_flag
    Canceled {
        /// Iterations completed before the stop.
        iterations: usize,
        /// Suspend checkpoint path, when one could be written.
        checkpoint: Option<std::path::PathBuf>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Persist(_) => f.write_str("checkpoint persistence failed"),
            Error::Fit(_) => f.write_str("performance-predictor fit failed"),
            Error::Decode(_) => f.write_str("action sequence failed to decode"),
            Error::InvalidConfig(msg) => write!(f, "invalid session configuration: {msg}"),
            Error::ResumeMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint mismatch: snapshot was taken with {expected}, \
                     but the resuming session has {found}"
                )
            }
            Error::FaultBudgetExhausted {
                faults,
                budget,
                checkpoint,
            } => {
                write!(
                    f,
                    "fault budget exhausted: {faults} faults > budget {budget}"
                )?;
                match checkpoint {
                    Some(path) => write!(f, " (emergency checkpoint at {})", path.display()),
                    None => f.write_str(" (no checkpoint directory configured)"),
                }
            }
            Error::Canceled {
                iterations,
                checkpoint,
            } => {
                write!(f, "search canceled after {iterations} iterations")?;
                match checkpoint {
                    Some(path) => write!(f, " (suspend checkpoint at {})", path.display()),
                    None => f.write_str(" (no checkpoint directory configured)"),
                }
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Persist(e) => Some(e),
            Error::Fit(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::InvalidConfig(_)
            | Error::ResumeMismatch { .. }
            | Error::FaultBudgetExhausted { .. }
            | Error::Canceled { .. } => None,
        }
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Self {
        Error::Persist(e)
    }
}

impl From<FitError> for Error {
    fn from(e: FitError) -> Self {
        Error::Fit(e)
    }
}

impl From<DecodeActionError> for Error {
    fn from(e: DecodeActionError) -> Self {
        Error::Decode(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Persist(PersistError::Io(e))
    }
}

/// Formats an error with its full `source()` chain, one cause per line —
/// what the bench binaries print on failure.
pub fn error_chain(e: &dyn std::error::Error) -> String {
    let mut out = e.to_string();
    let mut cur = e.source();
    while let Some(cause) = cur {
        out.push_str("\n  caused by: ");
        out.push_str(&cause.to_string());
        cur = cause.source();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: Error = PersistError::BadMagic.into();
        assert!(matches!(e, Error::Persist(PersistError::BadMagic)));
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = FitError::EmptyTrainingSet.into();
        assert!(matches!(e, Error::Fit(FitError::EmptyTrainingSet)));

        let e: Error = DecodeActionError::WrongLength { got: 3 }.into();
        assert!(matches!(e, Error::Decode(_)));

        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Persist(PersistError::Io(_))));
    }

    #[test]
    fn chain_includes_causes() {
        let e: Error = PersistError::ChecksumMismatch {
            expected: 1,
            found: 2,
        }
        .into();
        let chain = error_chain(&e);
        assert!(chain.contains("persistence failed"), "{chain}");
        assert!(chain.contains("caused by"), "{chain}");
        assert!(chain.contains("checksum"), "{chain}");
    }

    #[test]
    fn invalid_config_has_no_source() {
        let e = Error::InvalidConfig("missing evaluator".into());
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("missing evaluator"));
    }

    #[test]
    fn fault_budget_message_names_counts_and_checkpoint() {
        let e = Error::FaultBudgetExhausted {
            faults: 12,
            budget: 10,
            checkpoint: Some(std::path::PathBuf::from("/tmp/ckpt_00000007.snap")),
        };
        assert!(std::error::Error::source(&e).is_none());
        let msg = e.to_string();
        assert!(msg.contains("12"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
        assert!(msg.contains("ckpt_00000007.snap"), "{msg}");
        let no_ckpt = Error::FaultBudgetExhausted {
            faults: 3,
            budget: 2,
            checkpoint: None,
        };
        assert!(no_ckpt.to_string().contains("no checkpoint"), "{no_ckpt}");
    }

    #[test]
    fn resume_mismatch_names_both_sides() {
        let e = Error::ResumeMismatch {
            expected: "evaluator `surrogate`".into(),
            found: "evaluator `fast(hypernet+gp)`".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("surrogate"));
        assert!(msg.contains("fast(hypernet+gp)"));
    }
}
