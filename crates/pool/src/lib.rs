//! Work-sharing thread pool underpinning every parallel stage of the
//! pipeline: exhaustive hardware sweeps, predictor sample collection,
//! top-N reranking and the blocked GEMM kernels.
//!
//! # Design
//!
//! Workers self-schedule off a shared atomic index counter — the
//! single-queue equivalent of work stealing: an idle worker always grabs
//! the next unclaimed item, so imbalanced items (e.g. exact tiling
//! searches whose cost varies with layer shape) never leave threads idle
//! the way the previous fixed-chunk splitting did. Threads are scoped
//! (`std::thread::scope`), which is what lets closures borrow from the
//! caller under `#![forbid(unsafe_code)]`; spawning an OS thread costs
//! ~10 µs, noise next to the millisecond-scale items these maps carry.
//!
//! # Determinism
//!
//! [`parallel_map`] returns results in index order regardless of which
//! worker computed what. [`parallel_map_seeded`] additionally hands each
//! item an RNG derived from `(seed, index)` alone, so results are
//! invariant to the thread count: 1 thread and 64 threads produce
//! byte-identical output. [`for_each_chunk_mut`] statically partitions a
//! contiguous buffer, leaving per-element operation order untouched —
//! the parallel GEMM built on it is bit-exact at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Saturating nanoseconds since `t0`.
fn nanos_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Global default worker count: 0 means "auto" (one worker per
/// available hardware thread).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the global default worker count used when a map is called
/// with `threads == 0`. Passing 0 restores the auto default.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::SeqCst);
}

/// The global default worker count: the [`set_num_threads`] override if
/// set, otherwise `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

fn resolve(threads: usize, n: usize) -> usize {
    let threads = if threads == 0 { num_threads() } else { threads };
    threads.clamp(1, n.max(1))
}

/// Applies `f` to `0..n` across worker threads and returns results in
/// index order. `threads == 0` uses the global default
/// ([`num_threads`]); otherwise exactly the requested count (clamped to
/// `n`) is used.
///
/// When global telemetry is on ([`yoso_trace::enabled`]) each map
/// records `pool.maps` / `pool.items` counters, a `pool.map_wall` span,
/// and `pool.busy_ns` / `pool.thread_ns` — total worker-loop time vs.
/// total thread-time allocated, whose ratio is the pool utilization
/// (below 1.0 when the tail of the join leaves finished workers idle).
/// With telemetry off (the default) the only cost is one relaxed atomic
/// load.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve(threads, n);
    let traced = yoso_trace::enabled();
    let _map_span = traced.then(|| yoso_trace::span("pool.map_wall"));
    if traced {
        yoso_trace::counter_add("pool.maps", 1);
        yoso_trace::counter_add("pool.items", n as u64);
    }
    if threads == 1 || n <= 1 {
        let t0 = traced.then(Instant::now);
        let out = (0..n).map(f).collect();
        if let Some(t0) = t0 {
            let elapsed = nanos_since(t0);
            yoso_trace::counter_add("pool.busy_ns", elapsed);
            yoso_trace::counter_add("pool.thread_ns", elapsed);
        }
        return out;
    }
    let t_map = traced.then(Instant::now);
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let t0 = traced.then(Instant::now);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    if let Some(t0) = t0 {
                        yoso_trace::counter_add("pool.busy_ns", nanos_since(t0));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, v) in handle.join().expect("worker thread panicked") {
                out[i] = Some(v);
            }
        }
    });
    if let Some(t_map) = t_map {
        yoso_trace::counter_add(
            "pool.thread_ns",
            nanos_since(t_map).saturating_mul(threads as u64),
        );
    }
    out.into_iter().map(|v| v.expect("filled")).collect()
}

/// Derives the per-item RNG seed used by [`parallel_map_seeded`]:
/// a SplitMix64 hash of `(seed, index)`, so streams for different items
/// are independent and depend only on the pair.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rand::split_mix_64(&mut state)
}

/// Like [`parallel_map`], but hands `f` a deterministic per-item RNG
/// seeded from `(seed, index)` only — the output is identical for any
/// thread count, including 1.
pub fn parallel_map_seeded<T, F>(n: usize, threads: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    parallel_map(n, threads, |i| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
        f(i, &mut rng)
    })
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and
/// applies `f(chunk_index, chunk)` to each, distributing chunks across
/// workers in contiguous runs (static partitioning: uniform-cost chunks
/// like GEMM row blocks need no stealing). Element order within a chunk
/// is untouched, so element-wise computations are bit-exact regardless
/// of `threads`.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates panics from `f`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = resolve(threads, n_chunks);
    if threads == 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|scope| {
        for group in chunks.chunks_mut(per_worker) {
            let f = &f;
            scope.spawn(move || {
                for (i, chunk) in group.iter_mut() {
                    f(*i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn preserves_order() {
        let v = parallel_map(100, 8, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn single_thread_and_empty() {
        assert_eq!(parallel_map(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn zero_threads_means_default() {
        assert_eq!(parallel_map(4, 0, |i| i * 2), vec![0, 2, 4, 6]);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let draw = |_i: usize, rng: &mut StdRng| rng.random_range(0u64..1_000_000);
        let one = parallel_map_seeded(64, 1, 42, draw);
        let two = parallel_map_seeded(64, 2, 42, draw);
        let eight = parallel_map_seeded(64, 8, 42, draw);
        assert_eq!(one, two);
        assert_eq!(one, eight);
        let other_seed = parallel_map_seeded(64, 8, 43, draw);
        assert_ne!(one, other_seed);
    }

    #[test]
    fn chunked_mutation_covers_all() {
        let mut data: Vec<u64> = vec![0; 103];
        for_each_chunk_mut(&mut data, 10, 4, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + j) as u64 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    // One test owns the global telemetry flag: concurrent tests in this
    // binary run maps too, so enabled-phase deltas are lower bounds and
    // the disabled phase runs while the flag is known off.
    #[test]
    fn telemetry_gating_on_maps() {
        yoso_trace::set_enabled(false);
        let before = yoso_trace::snapshot();
        parallel_map(16, 4, |i| i);
        let mid = yoso_trace::snapshot();
        assert_eq!(mid.counter("pool.maps"), before.counter("pool.maps"));

        yoso_trace::set_enabled(true);
        parallel_map(32, 4, |i| i * 3);
        parallel_map(8, 1, |i| i + 1);
        let after = yoso_trace::snapshot();
        yoso_trace::set_enabled(false);
        let d = |name: &str| after.counter(name) - mid.counter(name);
        assert!(d("pool.maps") >= 2);
        assert!(d("pool.items") >= 40);
        assert!(d("pool.busy_ns") > 0);
        assert!(d("pool.thread_ns") >= d("pool.busy_ns"));
        let walls = |s: &yoso_trace::RegistrySnapshot| {
            s.histogram("pool.map_wall").map_or(0, |h| h.count())
        };
        assert!(walls(&after) - walls(&mid) >= 2);
    }

    #[test]
    fn chunked_mutation_matches_serial() {
        let mut serial: Vec<f64> = (0..97).map(|i| i as f64).collect();
        let mut parallel: Vec<f64> = serial.clone();
        let body = |ci: usize, chunk: &mut [f64]| {
            for v in chunk.iter_mut() {
                *v = v.sin() * (ci as f64 + 1.0);
            }
        };
        for_each_chunk_mut(&mut serial, 8, 1, body);
        for_each_chunk_mut(&mut parallel, 8, 5, body);
        assert_eq!(serial, parallel);
    }
}
