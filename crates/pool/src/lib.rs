//! Work-sharing thread pool underpinning every parallel stage of the
//! pipeline: exhaustive hardware sweeps, predictor sample collection,
//! top-N reranking and the blocked GEMM kernels.
//!
//! # Design
//!
//! Workers self-schedule off a shared atomic index counter — the
//! single-queue equivalent of work stealing: an idle worker always grabs
//! the next unclaimed item, so imbalanced items (e.g. exact tiling
//! searches whose cost varies with layer shape) never leave threads idle
//! the way the previous fixed-chunk splitting did. Threads are scoped
//! (`std::thread::scope`), which is what lets closures borrow from the
//! caller under `#![forbid(unsafe_code)]`; spawning an OS thread costs
//! ~10 µs, noise next to the millisecond-scale items these maps carry.
//!
//! # Supervision
//!
//! Every map runs each item under `std::panic::catch_unwind`, so one
//! panicking closure no longer kills the whole pool. Failed items are
//! retried with exponential backoff up to a [`SupervisorConfig`] budget;
//! items claimed by a worker that nevertheless died are re-run in a
//! serial recovery pass after the join, so no slot is ever left
//! unfilled. [`supervised_map`] exposes the per-item verdicts as typed
//! [`ItemOutcome`]s, [`try_parallel_map`] converts the first failure
//! into a typed [`PoolError`], and [`parallel_map`] keeps its historical
//! contract of propagating the panic — but only after the retry budget
//! is exhausted, and with the original payload message preserved.
//! Health counters (`pool.panics_caught`, `pool.retries`,
//! `pool.timeouts`, `pool.workers_lost`, `pool.items_recovered`) are
//! emitted through `yoso-trace` when telemetry is enabled.
//!
//! Deterministic worker-panic faults can be injected via `yoso-chaos`
//! ([`yoso_chaos::FaultKind::WorkerPanic`]): decisions are keyed on the
//! stable `(map sequence, item index, attempt)` triple, never on thread
//! interleaving, so a chaos run injects the same set of panics at any
//! thread count and retried items converge to their fault-free values.
//!
//! # Determinism
//!
//! [`parallel_map`] returns results in index order regardless of which
//! worker computed what. [`parallel_map_seeded`] additionally hands each
//! item an RNG derived from `(seed, index)` alone, so results are
//! invariant to the thread count: 1 thread and 64 threads produce
//! byte-identical output. [`for_each_chunk_mut`] statically partitions a
//! contiguous buffer, leaving per-element operation order untouched —
//! the parallel GEMM built on it is bit-exact at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Saturating nanoseconds since `t0`.
fn nanos_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Global default worker count: 0 means "auto" (one worker per
/// available hardware thread).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Monotone map sequence number: salts chaos draws so distinct maps
/// inject at distinct items. Maps are issued serially from the search
/// thread, so the sequence itself is deterministic run-to-run.
static MAP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Overrides the global default worker count used when a map is called
/// with `threads == 0`. Passing 0 restores the auto default.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::SeqCst);
}

/// The global default worker count: the [`set_num_threads`] override if
/// set, otherwise `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

fn resolve(threads: usize, n: usize) -> usize {
    let threads = if threads == 0 { num_threads() } else { threads };
    threads.clamp(1, n.max(1))
}

/// Retry/deadline policy for supervised maps.
///
/// An item "fails" when its closure panics or (if `deadline` is set)
/// overruns the deadline. Failed items are retried after an exponential
/// backoff (`backoff`, doubling per attempt, capped at `backoff_max`)
/// until `max_retries` retries are spent; the final verdict is a typed
/// [`ItemOutcome`]. Deadlines are detected post-hoc — safe Rust cannot
/// preempt a running closure — so a deadline bounds *detection*, not the
/// item's own runtime, and a deterministically slow item will time out
/// on every attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Failed attempts to retry before giving up (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff slept before the first retry.
    pub backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub backoff_max: Duration,
    /// Per-item soft deadline (`None` = unlimited).
    pub deadline: Option<Duration>,
}

impl Default for SupervisorConfig {
    /// Two retries, 1 ms base backoff capped at 100 ms, no deadline.
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            backoff_max: Duration::from_millis(100),
            deadline: None,
        }
    }
}

impl SupervisorConfig {
    /// Policy that never retries and never times out: failures surface
    /// on the first attempt.
    pub fn fail_fast() -> Self {
        SupervisorConfig {
            max_retries: 0,
            backoff: Duration::ZERO,
            backoff_max: Duration::ZERO,
            deadline: None,
        }
    }
}

/// Typed per-item verdict from [`supervised_map`].
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome<T> {
    /// Succeeded on the first attempt.
    Ok(T),
    /// Succeeded after `attempts` failed attempts.
    Retried {
        /// The successful result.
        value: T,
        /// Failed attempts before the success.
        attempts: u32,
    },
    /// Panicked on every attempt; `message` is the last panic payload.
    Panicked {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// Stringified payload of the last panic.
        message: String,
    },
    /// Overran the deadline on every attempt.
    TimedOut {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// Wall time of the last attempt.
        elapsed: Duration,
    },
}

impl<T> ItemOutcome<T> {
    /// True for [`ItemOutcome::Ok`] and [`ItemOutcome::Retried`].
    pub fn is_success(&self) -> bool {
        matches!(self, ItemOutcome::Ok(_) | ItemOutcome::Retried { .. })
    }

    /// The computed value, if any attempt succeeded.
    pub fn into_value(self) -> Option<T> {
        match self {
            ItemOutcome::Ok(v) | ItemOutcome::Retried { value: v, .. } => Some(v),
            _ => None,
        }
    }

    /// Failed attempts consumed before the final verdict.
    pub fn failed_attempts(&self) -> u32 {
        match self {
            ItemOutcome::Ok(_) => 0,
            ItemOutcome::Retried { attempts, .. }
            | ItemOutcome::Panicked { attempts, .. }
            | ItemOutcome::TimedOut { attempts, .. } => *attempts,
        }
    }
}

/// Typed failure from [`try_parallel_map`]: the first item (lowest
/// index) whose retry budget was exhausted.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// The item panicked on every attempt.
    ItemPanicked {
        /// Item index within the map.
        index: usize,
        /// Attempts made.
        attempts: u32,
        /// Stringified payload of the last panic.
        message: String,
    },
    /// The item overran its deadline on every attempt.
    ItemTimedOut {
        /// Item index within the map.
        index: usize,
        /// Attempts made.
        attempts: u32,
        /// Wall time of the last attempt.
        elapsed: Duration,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::ItemPanicked {
                index,
                attempts,
                message,
            } => write!(
                f,
                "pool item {index} panicked after {attempts} attempt(s): {message}"
            ),
            PoolError::ItemTimedOut {
                index,
                attempts,
                elapsed,
            } => write!(
                f,
                "pool item {index} exceeded its deadline after {attempts} attempt(s) (last took {elapsed:?})"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn backoff_sleep(cfg: &SupervisorConfig, failed_attempts: u32) {
    if cfg.backoff.is_zero() {
        return;
    }
    let factor = 1u32 << failed_attempts.saturating_sub(1).min(16);
    let wait = cfg.backoff.saturating_mul(factor).min(cfg.backoff_max);
    if !wait.is_zero() {
        std::thread::sleep(wait);
    }
}

/// Runs one item to its final verdict: attempt, catch panics, check the
/// deadline, back off and retry within budget.
fn run_one<T, F>(
    i: usize,
    map_salt: u64,
    cfg: &SupervisorConfig,
    traced: bool,
    f: &F,
) -> ItemOutcome<T>
where
    F: Fn(usize) -> T + Sync,
{
    let mut failed: u32 = 0;
    loop {
        let start = cfg.deadline.map(|_| Instant::now());
        let result = catch_unwind(AssertUnwindSafe(|| {
            if yoso_chaos::armed()
                && yoso_chaos::should_fault_indexed(
                    yoso_chaos::FaultKind::WorkerPanic,
                    i as u64,
                    failed,
                    map_salt,
                )
            {
                panic!("chaos: injected worker panic (item {i}, attempt {failed})");
            }
            f(i)
        }));
        match result {
            Ok(value) => {
                if let (Some(deadline), Some(start)) = (cfg.deadline, start) {
                    let elapsed = start.elapsed();
                    if elapsed > deadline {
                        if traced {
                            yoso_trace::counter_add("pool.timeouts", 1);
                        }
                        failed += 1;
                        if failed > cfg.max_retries {
                            return ItemOutcome::TimedOut {
                                attempts: failed,
                                elapsed,
                            };
                        }
                        if traced {
                            yoso_trace::counter_add("pool.retries", 1);
                        }
                        backoff_sleep(cfg, failed);
                        continue;
                    }
                }
                return if failed == 0 {
                    ItemOutcome::Ok(value)
                } else {
                    ItemOutcome::Retried {
                        value,
                        attempts: failed,
                    }
                };
            }
            Err(payload) => {
                if traced {
                    yoso_trace::counter_add("pool.panics_caught", 1);
                }
                failed += 1;
                if failed > cfg.max_retries {
                    return ItemOutcome::Panicked {
                        attempts: failed,
                        message: panic_message(payload.as_ref()),
                    };
                }
                if traced {
                    yoso_trace::counter_add("pool.retries", 1);
                }
                backoff_sleep(cfg, failed);
            }
        }
    }
}

/// Applies `f` to `0..n` under the supervision policy `cfg` and returns
/// one typed [`ItemOutcome`] per item, in index order. Never panics on
/// behalf of `f`: worker panics are caught per attempt, retried within
/// budget, and reported in the outcome. Items claimed by a worker that
/// died anyway are recovered by a serial re-run after the join.
pub fn supervised_map<T, F>(
    n: usize,
    threads: usize,
    cfg: &SupervisorConfig,
    f: F,
) -> Vec<ItemOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve(threads, n);
    let map_salt = MAP_SEQ.fetch_add(1, Ordering::Relaxed);
    let traced = yoso_trace::enabled();
    let _map_span = traced.then(|| yoso_trace::span("pool.map_wall"));
    if traced {
        yoso_trace::counter_add("pool.maps", 1);
        yoso_trace::counter_add("pool.items", n as u64);
    }
    if threads == 1 || n <= 1 {
        let t0 = traced.then(Instant::now);
        let out = (0..n)
            .map(|i| run_one(i, map_salt, cfg, traced, &f))
            .collect();
        if let Some(t0) = t0 {
            let elapsed = nanos_since(t0);
            yoso_trace::counter_add("pool.busy_ns", elapsed);
            yoso_trace::counter_add("pool.thread_ns", elapsed);
        }
        return out;
    }
    let t_map = traced.then(Instant::now);
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<ItemOutcome<T>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                let cfg = &*cfg;
                scope.spawn(move || {
                    let t0 = traced.then(Instant::now);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_one(i, map_salt, cfg, traced, f)));
                    }
                    if let Some(t0) = t0 {
                        yoso_trace::counter_add("pool.busy_ns", nanos_since(t0));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // Per-item panics are caught inside `run_one`, so a worker
            // thread dying is a should-not-happen (e.g. an unwind from the
            // telemetry layer). It is still survivable: its claimed items
            // stay `None` and the recovery pass below re-runs them.
            match handle.join() {
                Ok(local) => {
                    for (i, v) in local {
                        out[i] = Some(v);
                    }
                }
                Err(_) => {
                    if traced {
                        yoso_trace::counter_add("pool.workers_lost", 1);
                    }
                }
            }
        }
    });
    if let Some(t_map) = t_map {
        yoso_trace::counter_add(
            "pool.thread_ns",
            nanos_since(t_map).saturating_mul(threads as u64),
        );
    }
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(v) => v,
            // Respawn path: the item's worker died before reporting.
            None => {
                if traced {
                    yoso_trace::counter_add("pool.items_recovered", 1);
                }
                run_one(i, map_salt, cfg, traced, &f)
            }
        })
        .collect()
}

/// Like [`parallel_map`], but returns a typed [`PoolError`] for the
/// first failed item (lowest index) instead of panicking. Uses the
/// default [`SupervisorConfig`] retry budget.
///
/// # Errors
///
/// [`PoolError::ItemPanicked`] / [`PoolError::ItemTimedOut`] when an
/// item exhausts its retry budget.
pub fn try_parallel_map<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(n);
    for (index, outcome) in supervised_map(n, threads, &SupervisorConfig::default(), f)
        .into_iter()
        .enumerate()
    {
        match outcome {
            ItemOutcome::Ok(v) | ItemOutcome::Retried { value: v, .. } => out.push(v),
            ItemOutcome::Panicked { attempts, message } => {
                return Err(PoolError::ItemPanicked {
                    index,
                    attempts,
                    message,
                });
            }
            ItemOutcome::TimedOut { attempts, elapsed } => {
                return Err(PoolError::ItemTimedOut {
                    index,
                    attempts,
                    elapsed,
                });
            }
        }
    }
    Ok(out)
}

/// Applies `f` to `0..n` across worker threads and returns results in
/// index order. `threads == 0` uses the global default
/// ([`num_threads`]); otherwise exactly the requested count (clamped to
/// `n`) is used.
///
/// Runs on the supervised path: a panicking item is retried (default
/// [`SupervisorConfig`] budget) before the panic is re-raised, so
/// transient faults — e.g. chaos-injected worker panics — are absorbed
/// and deterministic items converge to their fault-free values. `f`
/// should therefore be idempotent, which every pipeline map (pure
/// function of the item index) already is.
///
/// When global telemetry is on ([`yoso_trace::enabled`]) each map
/// records `pool.maps` / `pool.items` counters, a `pool.map_wall` span,
/// and `pool.busy_ns` / `pool.thread_ns` — total worker-loop time vs.
/// total thread-time allocated, whose ratio is the pool utilization
/// (below 1.0 when the tail of the join leaves finished workers idle).
/// With telemetry off (the default) the only cost is one relaxed atomic
/// load.
///
/// # Panics
///
/// Propagates panics from `f` once the retry budget is exhausted (the
/// panic message of the last attempt is preserved).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_parallel_map(n, threads, f) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Derives the per-item RNG seed used by [`parallel_map_seeded`]:
/// a SplitMix64 hash of `(seed, index)`, so streams for different items
/// are independent and depend only on the pair.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rand::split_mix_64(&mut state)
}

/// Like [`parallel_map`], but hands `f` a deterministic per-item RNG
/// seeded from `(seed, index)` only — the output is identical for any
/// thread count, including 1. Retried items re-derive the same RNG, so
/// transient faults cannot perturb the result stream.
pub fn parallel_map_seeded<T, F>(n: usize, threads: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    parallel_map(n, threads, |i| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
        f(i, &mut rng)
    })
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and
/// applies `f(chunk_index, chunk)` to each, distributing chunks across
/// workers in contiguous runs (static partitioning: uniform-cost chunks
/// like GEMM row blocks need no stealing). Element order within a chunk
/// is untouched, so element-wise computations are bit-exact regardless
/// of `threads`. This is the one unsupervised primitive: it backs the
/// inner GEMM kernels where a panic is a programming error, not a
/// recoverable fault, and per-chunk catch/retry overhead is unwelcome.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates panics from `f`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = resolve(threads, n_chunks);
    if threads == 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|scope| {
        for group in chunks.chunks_mut(per_worker) {
            let f = &f;
            scope.spawn(move || {
                for (i, chunk) in group.iter_mut() {
                    f(*i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_order() {
        let v = parallel_map(100, 8, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn single_thread_and_empty() {
        assert_eq!(parallel_map(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn zero_threads_means_default() {
        assert_eq!(parallel_map(4, 0, |i| i * 2), vec![0, 2, 4, 6]);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let draw = |_i: usize, rng: &mut StdRng| rng.random_range(0u64..1_000_000);
        let one = parallel_map_seeded(64, 1, 42, draw);
        let two = parallel_map_seeded(64, 2, 42, draw);
        let eight = parallel_map_seeded(64, 8, 42, draw);
        assert_eq!(one, two);
        assert_eq!(one, eight);
        let other_seed = parallel_map_seeded(64, 8, 43, draw);
        assert_ne!(one, other_seed);
    }

    #[test]
    fn chunked_mutation_covers_all() {
        let mut data: Vec<u64> = vec![0; 103];
        for_each_chunk_mut(&mut data, 10, 4, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + j) as u64 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    // One test owns the global telemetry flag: concurrent tests in this
    // binary run maps too, so enabled-phase deltas are lower bounds and
    // the disabled phase runs while the flag is known off.
    #[test]
    fn telemetry_gating_on_maps() {
        yoso_trace::set_enabled(false);
        let before = yoso_trace::snapshot();
        parallel_map(16, 4, |i| i);
        let mid = yoso_trace::snapshot();
        assert_eq!(mid.counter("pool.maps"), before.counter("pool.maps"));

        yoso_trace::set_enabled(true);
        parallel_map(32, 4, |i| i * 3);
        parallel_map(8, 1, |i| i + 1);
        let after = yoso_trace::snapshot();
        yoso_trace::set_enabled(false);
        let d = |name: &str| after.counter(name) - mid.counter(name);
        assert!(d("pool.maps") >= 2);
        assert!(d("pool.items") >= 40);
        assert!(d("pool.busy_ns") > 0);
        assert!(d("pool.thread_ns") >= d("pool.busy_ns"));
        let walls = |s: &yoso_trace::RegistrySnapshot| {
            s.histogram("pool.map_wall").map_or(0, |h| h.count())
        };
        assert!(walls(&after) - walls(&mid) >= 2);
    }

    #[test]
    fn chunked_mutation_matches_serial() {
        let mut serial: Vec<f64> = (0..97).map(|i| i as f64).collect();
        let mut parallel: Vec<f64> = serial.clone();
        let body = |ci: usize, chunk: &mut [f64]| {
            for v in chunk.iter_mut() {
                *v = v.sin() * (ci as f64 + 1.0);
            }
        };
        for_each_chunk_mut(&mut serial, 8, 1, body);
        for_each_chunk_mut(&mut parallel, 8, 5, body);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn supervised_map_reports_ok_outcomes() {
        let out = supervised_map(10, 4, &SupervisorConfig::default(), |i| i * 3);
        assert_eq!(out.len(), 10);
        for (i, o) in out.into_iter().enumerate() {
            assert_eq!(o, ItemOutcome::Ok(i * 3));
        }
    }

    #[test]
    fn deterministic_panic_exhausts_budget() {
        let cfg = SupervisorConfig {
            max_retries: 2,
            backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        };
        let out = supervised_map(4, 2, &cfg, |i| {
            if i == 2 {
                panic!("boom at {i}");
            }
            i
        });
        assert!(out[0].is_success() && out[1].is_success() && out[3].is_success());
        match &out[2] {
            ItemOutcome::Panicked { attempts, message } => {
                assert_eq!(*attempts, 3); // initial try + 2 retries
                assert!(message.contains("boom at 2"), "message: {message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        let tries: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
        let cfg = SupervisorConfig {
            max_retries: 3,
            backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        };
        let out = supervised_map(6, 3, &cfg, |i| {
            let attempt = tries[i].fetch_add(1, Ordering::SeqCst);
            if i % 2 == 0 && attempt < 2 {
                panic!("transient failure");
            }
            i * 10
        });
        for (i, o) in out.into_iter().enumerate() {
            assert_eq!(o.clone().into_value(), Some(i * 10));
            if i % 2 == 0 {
                assert_eq!(
                    o,
                    ItemOutcome::Retried {
                        value: i * 10,
                        attempts: 2
                    }
                );
            } else {
                assert_eq!(o, ItemOutcome::Ok(i * 10));
            }
        }
    }

    #[test]
    fn deadline_overrun_times_out() {
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff: Duration::ZERO,
            backoff_max: Duration::ZERO,
            deadline: Some(Duration::from_millis(1)),
        };
        let out = supervised_map(2, 2, &cfg, |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out[0], ItemOutcome::Ok(0));
        match &out[1] {
            ItemOutcome::TimedOut { attempts, elapsed } => {
                assert_eq!(*attempts, 2);
                assert!(*elapsed >= Duration::from_millis(1));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn try_parallel_map_returns_typed_error() {
        let err = try_parallel_map(5, 2, |i| {
            if i >= 3 {
                panic!("bad item");
            }
            i
        })
        .unwrap_err();
        match err {
            PoolError::ItemPanicked { index, message, .. } => {
                assert_eq!(index, 3); // lowest failing index wins
                assert!(message.contains("bad item"));
            }
            other => panic!("expected ItemPanicked, got {other:?}"),
        }
        assert_eq!(try_parallel_map(3, 2, |i| i).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "always broken")]
    fn parallel_map_still_propagates_exhausted_panics() {
        parallel_map(4, 2, |i| {
            if i == 1 {
                panic!("always broken");
            }
            i
        });
    }

    #[test]
    fn chaos_injected_panics_converge_to_fault_free_values() {
        let _guard = yoso_chaos::test_lock();
        let plan = yoso_chaos::FaultPlan::new(2024).rule(yoso_chaos::FaultRule::rate(
            yoso_chaos::FaultKind::WorkerPanic,
            0.4,
        ));
        yoso_chaos::install(&plan);
        // Rate 0.4 with the default 2-retry budget would let ~0.4^3 of the
        // items exhaust it; give the supervisor enough headroom that every
        // item deterministically converges under this seed.
        let cfg = SupervisorConfig {
            max_retries: 10,
            backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        };
        let faulted = supervised_map(64, 4, &cfg, |i| i * i);
        let injected = yoso_chaos::injected(yoso_chaos::FaultKind::WorkerPanic);
        yoso_chaos::disarm();
        assert!(injected > 0, "rate 0.4 over 64 items should inject");
        let retried = faulted
            .iter()
            .filter(|o| matches!(o, ItemOutcome::Retried { .. }))
            .count();
        assert!(retried > 0, "some items should have been retried");
        for (i, o) in faulted.into_iter().enumerate() {
            assert_eq!(o.into_value(), Some(i * i), "item {i} must converge");
        }
    }

    #[test]
    fn chaos_explicit_index_hits_that_item() {
        let _guard = yoso_chaos::test_lock();
        let plan = yoso_chaos::FaultPlan::new(1).rule(yoso_chaos::FaultRule::at(
            yoso_chaos::FaultKind::WorkerPanic,
            &[5],
        ));
        yoso_chaos::install(&plan);
        let out = supervised_map(8, 2, &SupervisorConfig::default(), |i| i + 100);
        yoso_chaos::disarm();
        assert_eq!(
            out[5],
            ItemOutcome::Retried {
                value: 105,
                attempts: 1
            }
        );
        for (i, o) in out.into_iter().enumerate() {
            if i != 5 {
                assert_eq!(o, ItemOutcome::Ok(i + 100));
            }
        }
    }
}
