//! A reusable buffer arena for convolution workspaces.
//!
//! `conv2d` lowers each sample to an im2col matrix whose size depends on
//! the layer, so a HyperNet training step used to allocate (and free) one
//! large buffer per conv layer per step. A [`Scratch`] arena keeps those
//! buffers alive across steps: the tape takes buffers during the forward
//! pass, returns them as the backward pass consumes each conv record, and
//! the training loop threads the arena from one step's
//! [`Graph::backward_scratch`](crate::Graph::backward_scratch) into the
//! next step's [`Graph::with_scratch`](crate::Graph::with_scratch).
//! Steady-state steps allocate nothing.

/// A pool of reusable `Vec<f32>` workspaces.
///
/// Buffers handed out by [`Scratch::take`] have **unspecified contents**
/// beyond their length; callers that need zeroed memory must use
/// [`Scratch::take_zeroed`] or overwrite every element (im2col does the
/// latter, writing explicit zeros for padding).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a buffer of length `len` with unspecified contents,
    /// preferring the pooled buffer whose capacity fits most tightly.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len {
                match best {
                    Some(b) if self.free[b].capacity() <= buf.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        if yoso_trace::enabled() {
            yoso_trace::counter_add(
                if best.is_some() {
                    "scratch.hits"
                } else {
                    "scratch.misses"
                },
                1,
            );
        }
        let mut buf = match best {
            Some(i) => self.free.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a buffer of length `len` with every element set to `0.0`.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the arena for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (in elements) currently pooled.
    pub fn pooled_elems(&self) -> usize {
        self.free.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_capacity() {
        let mut s = Scratch::new();
        let b = s.take(100);
        assert_eq!(b.len(), 100);
        let ptr = b.as_ptr();
        s.give(b);
        assert_eq!(s.pooled(), 1);
        // A smaller request reuses the same allocation.
        let b2 = s.take(50);
        assert_eq!(b2.len(), 50);
        assert_eq!(b2.as_ptr(), ptr);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn best_fit_prefers_tightest_buffer() {
        let mut s = Scratch::new();
        s.give(Vec::with_capacity(1000));
        s.give(Vec::with_capacity(64));
        let b = s.take(60);
        assert!(b.capacity() < 1000, "took the oversized buffer");
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut s = Scratch::new();
        s.give(vec![7.0; 32]);
        let b = s.take_zeroed(32);
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
