//! Explicit x86-64 SIMD microkernels behind runtime feature detection.
//!
//! Everything here is selected at runtime (`is_x86_feature_detected!`,
//! cached by the dispatchers in [`crate::matmul`] / [`crate::quant`]),
//! never at compile time, so a generic build still runs the fast path on
//! capable hardware. The whole module is compiled out on non-x86-64
//! targets and under `--cfg yoso_force_scalar` (the portable CI leg);
//! callers fall back to the scalar kernels, which produce identical
//! results for every workload the tests pin down (exact-representable
//! f32 inputs, and always for the integer int8 path).
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! crate root carries `#![deny(unsafe_code)]` and each function states
//! the contract its callers uphold.
#![allow(unsafe_code)]

use crate::matmul::{MR, NR};
use core::arch::x86_64::*;

/// `MR x NR` f32 microkernel on 512-bit AVX-512F: `acc += A_tile * B`,
/// where `a` is packed `p`-major (`MR` floats per depth step) and `b`
/// holds `kc` depth steps of at least `NR` columns at stride `b_stride`.
/// With `NR = 16` each accumulator row is exactly one zmm register, so
/// the tile is `MR = 8` independent FMA chains — enough to keep both
/// FMA ports busy past their latency.
///
/// Rounding matches the scalar kernel built with hardware FMA exactly
/// (one rounding per multiply-add, identical accumulation order).
///
/// # Safety
///
/// The caller must ensure:
/// - the CPU supports AVX-512F (runtime-detected);
/// - `a.len() >= kc * MR`;
/// - `kc == 0` or `b.len() >= (kc - 1) * b_stride + NR`.
#[target_feature(enable = "avx512f")]
pub unsafe fn microkernel_f32_avx512(
    kc: usize,
    a: &[f32],
    b: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(a.len() >= kc * MR);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * b_stride + NR);
    unsafe {
        let mut c: [__m512; MR] = [_mm512_setzero_ps(); MR];
        for (r, row) in acc.iter().enumerate() {
            c[r] = _mm512_loadu_ps(row.as_ptr());
        }
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for p in 0..kc {
            let bv = _mm512_loadu_ps(bp.add(p * b_stride));
            let arow = ap.add(p * MR);
            for (r, cr) in c.iter_mut().enumerate() {
                *cr = _mm512_fmadd_ps(_mm512_set1_ps(*arow.add(r)), bv, *cr);
            }
        }
        for (r, row) in acc.iter_mut().enumerate() {
            _mm512_storeu_ps(row.as_mut_ptr(), c[r]);
        }
    }
}

/// `MR x NR` f32 microkernel on 256-bit AVX2 + FMA. The 8 x 16 tile
/// needs 16 ymm accumulators — the whole register file — so it is
/// processed as two 4-row half-tiles (8 accumulators + 2 B loads + 1
/// broadcast each), re-streaming the `KC x NR` B panel once per half
/// from L1.
///
/// Rounding matches the scalar kernel built with hardware FMA exactly.
///
/// # Safety
///
/// The caller must ensure:
/// - the CPU supports AVX2 and FMA (runtime-detected);
/// - `a.len() >= kc * MR`;
/// - `kc == 0` or `b.len() >= (kc - 1) * b_stride + NR`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn microkernel_f32_avx2fma(
    kc: usize,
    a: &[f32],
    b: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(a.len() >= kc * MR);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * b_stride + NR);
    unsafe {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for half in 0..2 {
            let r0 = half * (MR / 2);
            let mut c: [[__m256; 2]; MR / 2] = [[_mm256_setzero_ps(); 2]; MR / 2];
            for (r, cr) in c.iter_mut().enumerate() {
                cr[0] = _mm256_loadu_ps(acc[r0 + r].as_ptr());
                cr[1] = _mm256_loadu_ps(acc[r0 + r].as_ptr().add(8));
            }
            for p in 0..kc {
                let brow = bp.add(p * b_stride);
                let b0 = _mm256_loadu_ps(brow);
                let b1 = _mm256_loadu_ps(brow.add(8));
                let arow = ap.add(p * MR + r0);
                for (r, cr) in c.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*arow.add(r));
                    cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
                    cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
                }
            }
            for (r, cr) in c.iter().enumerate() {
                _mm256_storeu_ps(acc[r0 + r].as_mut_ptr(), cr[0]);
                _mm256_storeu_ps(acc[r0 + r].as_mut_ptr().add(8), cr[1]);
            }
        }
    }
}

/// Raw u8 x i8 GEMM rows on AVX-VNNI: `c[i][j] = sum_k aq[i][k] * bp[k][j]`
/// over `kq * 4` depth (zero-padded), where `aq` holds signed weights
/// packed `rows x kq*4` and `bp` holds unsigned activations packed
/// 4-deep: byte `bp[q * n * 4 + j * 4 + t]` is activation `(4q + t, j)`.
/// One `dpbusd` per 8 columns per depth quad accumulates 32 exact
/// integer MACs; `c` is overwritten with the *uncorrected* dot (the
/// `-128 * row_sum` zero-point correction is applied by the caller).
///
/// # Safety
///
/// The caller must ensure:
/// - the CPU supports AVX-VNNI (runtime-detected);
/// - `aq.len() >= m * kq * 4`;
/// - `bp.len() >= kq * n * 4`;
/// - `c.len() >= m * n`.
#[target_feature(enable = "avxvnni")]
pub unsafe fn gemm_u8i8_avxvnni(
    m: usize,
    kq: usize,
    n: usize,
    aq: &[i8],
    bp: &[u8],
    c: &mut [i32],
) {
    debug_assert!(aq.len() >= m * kq * 4);
    debug_assert!(bp.len() >= kq * n * 4);
    debug_assert!(c.len() >= m * n);
    // 4 accumulators x 8 i32 lanes = 32 output columns per block. The
    // column blocks are the OUTER loop: the `kq * 128`-byte activation
    // block then stays in L1 across all `m` weight rows, instead of the
    // whole packed matrix being re-streamed once per row (the im2col
    // GEMMs here have small `m` and very large `n`, so B reuse across
    // rows is the entire game).
    const JB: usize = 32;
    unsafe {
        let bpp = bp.as_ptr();
        let app = aq.as_ptr();
        let mut jb = 0;
        while jb + JB <= n {
            let bblock = bpp.add(jb * 4);
            // Weight rows in pairs: the four B loads per depth quad are
            // shared by both rows' dpbusd chains, doubling arithmetic
            // per byte loaded (8 accumulators + 2 broadcasts + 4 loads
            // = 14 live ymm registers).
            let mut i = 0;
            while i + 2 <= m {
                let arow0 = app.add(i * kq * 4) as *const i32;
                let arow1 = app.add((i + 1) * kq * 4) as *const i32;
                let mut a00 = _mm256_setzero_si256();
                let mut a01 = _mm256_setzero_si256();
                let mut a02 = _mm256_setzero_si256();
                let mut a03 = _mm256_setzero_si256();
                let mut a10 = _mm256_setzero_si256();
                let mut a11 = _mm256_setzero_si256();
                let mut a12 = _mm256_setzero_si256();
                let mut a13 = _mm256_setzero_si256();
                for q in 0..kq {
                    let w0 = _mm256_set1_epi32(arow0.add(q).read_unaligned());
                    let w1 = _mm256_set1_epi32(arow1.add(q).read_unaligned());
                    let bq = bblock.add(q * n * 4);
                    let b0 = _mm256_loadu_si256(bq as *const __m256i);
                    let b1 = _mm256_loadu_si256(bq.add(32) as *const __m256i);
                    let b2 = _mm256_loadu_si256(bq.add(64) as *const __m256i);
                    let b3 = _mm256_loadu_si256(bq.add(96) as *const __m256i);
                    a00 = _mm256_dpbusd_avx_epi32(a00, b0, w0);
                    a01 = _mm256_dpbusd_avx_epi32(a01, b1, w0);
                    a02 = _mm256_dpbusd_avx_epi32(a02, b2, w0);
                    a03 = _mm256_dpbusd_avx_epi32(a03, b3, w0);
                    a10 = _mm256_dpbusd_avx_epi32(a10, b0, w1);
                    a11 = _mm256_dpbusd_avx_epi32(a11, b1, w1);
                    a12 = _mm256_dpbusd_avx_epi32(a12, b2, w1);
                    a13 = _mm256_dpbusd_avx_epi32(a13, b3, w1);
                }
                let c0 = c.as_mut_ptr().add(i * n + jb);
                let c1 = c.as_mut_ptr().add((i + 1) * n + jb);
                _mm256_storeu_si256(c0 as *mut __m256i, a00);
                _mm256_storeu_si256(c0.add(8) as *mut __m256i, a01);
                _mm256_storeu_si256(c0.add(16) as *mut __m256i, a02);
                _mm256_storeu_si256(c0.add(24) as *mut __m256i, a03);
                _mm256_storeu_si256(c1 as *mut __m256i, a10);
                _mm256_storeu_si256(c1.add(8) as *mut __m256i, a11);
                _mm256_storeu_si256(c1.add(16) as *mut __m256i, a12);
                _mm256_storeu_si256(c1.add(24) as *mut __m256i, a13);
                i += 2;
            }
            if i < m {
                let arow = app.add(i * kq * 4) as *const i32;
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for q in 0..kq {
                    let wv = _mm256_set1_epi32(arow.add(q).read_unaligned());
                    let bq = bblock.add(q * n * 4);
                    acc0 =
                        _mm256_dpbusd_avx_epi32(acc0, _mm256_loadu_si256(bq as *const __m256i), wv);
                    acc1 = _mm256_dpbusd_avx_epi32(
                        acc1,
                        _mm256_loadu_si256(bq.add(32) as *const __m256i),
                        wv,
                    );
                    acc2 = _mm256_dpbusd_avx_epi32(
                        acc2,
                        _mm256_loadu_si256(bq.add(64) as *const __m256i),
                        wv,
                    );
                    acc3 = _mm256_dpbusd_avx_epi32(
                        acc3,
                        _mm256_loadu_si256(bq.add(96) as *const __m256i),
                        wv,
                    );
                }
                let crow = c.as_mut_ptr().add(i * n + jb);
                _mm256_storeu_si256(crow as *mut __m256i, acc0);
                _mm256_storeu_si256(crow.add(8) as *mut __m256i, acc1);
                _mm256_storeu_si256(crow.add(16) as *mut __m256i, acc2);
                _mm256_storeu_si256(crow.add(24) as *mut __m256i, acc3);
            }
            jb += JB;
        }
        // 8-column vector tail, then a scalar tail for the last < 8.
        while jb + 8 <= n {
            let bblock = bpp.add(jb * 4);
            for i in 0..m {
                let arow = app.add(i * kq * 4) as *const i32;
                let mut acc = _mm256_setzero_si256();
                for q in 0..kq {
                    let wv = _mm256_set1_epi32(arow.add(q).read_unaligned());
                    acc = _mm256_dpbusd_avx_epi32(
                        acc,
                        _mm256_loadu_si256(bblock.add(q * n * 4) as *const __m256i),
                        wv,
                    );
                }
                _mm256_storeu_si256(c.as_mut_ptr().add(i * n + jb) as *mut __m256i, acc);
            }
            jb += 8;
        }
        for j in jb..n {
            for i in 0..m {
                let wrow = app.add(i * kq * 4);
                let mut acc = 0i32;
                for q in 0..kq {
                    let bq = bpp.add(q * n * 4 + j * 4);
                    for t in 0..4 {
                        acc += *wrow.add(q * 4 + t) as i32 * *bq.add(t) as i32;
                    }
                }
                *c.as_mut_ptr().add(i * n + j) = acc;
            }
        }
    }
}
