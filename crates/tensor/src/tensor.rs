//! Dense row-major `f32` tensor used throughout the YOSO stack.

use rand::{Rng, RngExt};
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is deliberately simple: shapes are dynamic (`Vec<usize>`), data
/// is always contiguous, and all operations are eager. It is the storage
/// type underneath the autograd [`Graph`](crate::graph::Graph).
///
/// # Examples
///
/// ```
/// use yoso_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero-sized dimension product overflow.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Samples a tensor with i.i.d. entries from `N(0, std^2)`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        // Box-Muller transform; avoids a rand_distr dependency.
        let mut cached: Option<f32> = None;
        for _ in 0..n {
            let z = if let Some(v) = cached.take() {
                v
            } else {
                let u1: f32 = rng.random::<f32>().max(1e-12);
                let u2: f32 = rng.random::<f32>();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f32::consts::PI * u2;
                cached = Some(r * theta.sin());
                r * theta.cos()
            };
            data.push(z * std);
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Samples a tensor with i.i.d. entries uniform in `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// He (Kaiming) normal initialization for a weight tensor with the given
    /// fan-in, appropriate for ReLU networks.
    pub fn he_normal<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::randn(shape, std, rng)
    }

    /// Returns the shape slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// In-place scaling by a constant.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// In-place elementwise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_in_place(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_in_place shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place fused multiply-add `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy_in_place(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy_in_place shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Returns `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .., {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.sum(), 0.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10000], 2.0, &mut rng);
        let m = t.mean();
        let var = t.data().iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 10000.0;
        assert!(m.abs() < 0.1, "mean {m}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[1000], -1.0, 1.0, &mut rng);
        assert!(t.max() < 1.0);
        assert!(t.min() >= -1.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        a.axpy_in_place(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
        a.scale_in_place(2.0);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.fill_zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = t.reshaped(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.at2(2, 1), 5.0);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::he_normal(&[10000], 50, &mut rng);
        let var = t.sq_norm() / 10000.0;
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn min_max_finite() {
        let t = Tensor::from_vec(&[4], vec![-2.0, 7.0, 0.5, 3.0]);
        assert_eq!(t.max(), 7.0);
        assert_eq!(t.min(), -2.0);
        assert!(t.all_finite());
        let bad = Tensor::from_vec(&[2], vec![f32::NAN, 1.0]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn debug_never_empty() {
        let t = Tensor::zeros(&[0]);
        assert!(!format!("{t:?}").is_empty());
        let d = Tensor::default();
        assert!(!format!("{d:?}").is_empty());
    }
}
