//! Parameter storage shared between forward graphs and optimizers.

use crate::tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index of the parameter in its store.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct ParamEntry {
    value: Tensor,
    grad: Tensor,
}

/// Owns trainable parameters and their gradient accumulators.
///
/// A [`Graph`](crate::graph::Graph) references parameters by [`ParamId`];
/// calling [`Graph::backward`](crate::graph::Graph::backward) accumulates
/// gradients here, and an optimizer ([`Sgd`](crate::optim::Sgd) /
/// [`Adam`](crate::optim::Adam)) consumes them.
///
/// # Examples
///
/// ```
/// use yoso_tensor::{ParamStore, Tensor};
/// let mut store = ParamStore::new();
/// let id = store.add(Tensor::zeros(&[4, 4]));
/// assert_eq!(store.value(id).len(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter tensor, returning its id. The gradient is
    /// initialized to zeros of the same shape.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.entries.push(ParamEntry { value, grad });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn param_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of scalar weights across all parameters.
    pub fn total_elems(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Immutable access to a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Immutable access to a parameter gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Accumulates `g` into the gradient of `id`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.entries[id.0].grad.add_in_place(g);
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Sum of squared parameter values (for L2 diagnostics).
    pub fn l2_sq(&self) -> f32 {
        self.entries.iter().map(|e| e.value.sq_norm()).sum()
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.scale_in_place(s);
            }
        }
        norm
    }

    /// Iterates over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (ParamId(i), &e.value))
    }

    /// Applies `f(value, grad)` to every parameter; used by optimizers.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            f(i, &mut e.value, &e.grad);
        }
    }

    /// Returns true if all parameter values are finite.
    pub fn all_finite(&self) -> bool {
        self.entries.iter().all(|e| e.value.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let a = s.add(Tensor::ones(&[2, 2]));
        let b = s.add(Tensor::zeros(&[3]));
        assert_eq!(s.param_count(), 2);
        assert_eq!(s.total_elems(), 7);
        assert_eq!(s.value(a).sum(), 4.0);
        assert_eq!(s.value(b).len(), 3);
        assert_eq!(s.l2_sq(), 4.0);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![1.0, 2.0]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![1.0, 2.0]));
        assert_eq!(s.grad(id).data(), &[2.0, 4.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).sum(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![3.0, 4.0]));
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_no_op_below_threshold() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![0.3, 0.4]));
        s.clip_grad_norm(10.0);
        assert_eq!(s.grad(id).data(), &[0.3, 0.4]);
    }
}
