//! # yoso-tensor
//!
//! A small, dependency-light CPU tensor library with reverse-mode automatic
//! differentiation, built for the YOSO DNN/accelerator co-design
//! reproduction. It provides exactly the operator set the paper's search
//! space needs (convolutions, depthwise convolutions, pooling, batch
//! normalization, linear classifier heads, softmax cross-entropy) plus the
//! optimizers used by the HyperNet (SGD with momentum + cosine decay) and
//! the RL controller (Adam).
//!
//! The design is a per-step tape: build a [`Graph`] each forward pass, call
//! [`Graph::backward`] once, and let an optimizer consume the gradients
//! accumulated in a [`ParamStore`].
//!
//! ## Example
//!
//! ```
//! use yoso_tensor::{Graph, ParamStore, Sgd, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let w = store.add(Tensor::he_normal(&[2, 4], 4, &mut rng));
//! let b = store.add(Tensor::zeros(&[2]));
//! let mut opt = Sgd::new(0.1, 0.9, 0.0);
//!
//! for _ in 0..10 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::rand_uniform(&[8, 4], -1.0, 1.0, &mut rng));
//!     let (wv, bv) = (g.param(&store, w), g.param(&store, b));
//!     let y = g.linear(x, wv, bv);
//!     let loss = g.softmax_cross_entropy(y, &[0, 1, 0, 1, 0, 1, 0, 1]);
//!     store.zero_grads();
//!     g.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! assert!(store.all_finite());
//! ```

// `deny` rather than `forbid`: the `simd` module (and only it) opts back
// in with `#![allow(unsafe_code)]` for the runtime-dispatched intrinsics.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod graph;
pub mod matmul;
pub mod optim;
pub mod param;
pub mod quant;
pub mod scratch;
#[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
pub(crate) mod simd;
pub mod snapshot;
pub mod tensor;

pub use conv::ConvGeom;
pub use graph::{accuracy, batch_norm_forward, Graph, Var};
pub use matmul::{
    kernel_kind, num_threads as matmul_threads, set_kernel, set_num_threads as set_matmul_threads,
    set_simd_tier, simd_tier, KernelKind, SimdTier,
};
pub use optim::{Adam, CosineLr, Sgd};
pub use param::{ParamId, ParamStore};
pub use quant::{quant_tier, set_quant_tier, QuantTier, QuantWeights};
pub use scratch::Scratch;
pub use tensor::Tensor;
