//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is built per forward pass: every operation appends a node
//! holding its output value plus whatever cache its backward pass needs.
//! [`Graph::backward`] consumes the graph, walking the tape in reverse and
//! accumulating parameter gradients into a [`ParamStore`].

#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_memcpy)]

use crate::conv::{
    avgpool_backward, avgpool_forward, conv2d_backward_scratch, conv2d_forward_scratch,
    dwconv2d_backward, dwconv2d_forward, maxpool_backward, maxpool_forward, shape4, ConvGeom,
};
use crate::matmul::{sgemm_a_bt_acc, sgemm_acc, sgemm_at_b_acc};
use crate::param::{ParamId, ParamStore};
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum OpRecord {
    Leaf,
    Param(ParamId),
    Add(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    MatMul(Var, Var),
    Linear {
        x: Var,
        w: Var,
        b: Var,
    },
    Conv2d {
        x: Var,
        w: Var,
        geom: ConvGeom,
        cols: Vec<f32>,
    },
    DwConv2d {
        x: Var,
        w: Var,
        geom: ConvGeom,
    },
    MaxPool {
        x: Var,
        geom: ConvGeom,
        arg: Vec<u32>,
    },
    AvgPool {
        x: Var,
        geom: ConvGeom,
    },
    GlobalAvgPool {
        x: Var,
    },
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        mean: Vec<f32>,
        inv_std: Vec<f32>,
    },
    FusedConvBn {
        x: Var,
        w: Var,
        gamma: Var,
        beta: Var,
        geom: ConvGeom,
        cols: Vec<f32>,
        /// Pre-normalization conv output (the BN backward input).
        conv_out: Tensor,
        mean: Vec<f32>,
        inv_std: Vec<f32>,
        pre_relu: bool,
    },
    ConcatChan(Vec<Var>),
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Vec<usize>,
        probs: Tensor,
    },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: OpRecord,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            value: Tensor::default(),
            grad: None,
            op: OpRecord::Leaf,
        }
    }
}

/// A single-use forward/backward tape.
///
/// # Examples
///
/// ```
/// use yoso_tensor::{Graph, ParamStore, Tensor};
/// let mut store = ParamStore::new();
/// let w = store.add(Tensor::ones(&[2, 1]));
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]));
/// let wv = g.param(&store, w);
/// let y = g.matmul(x, wv);
/// assert_eq!(g.value(y).data(), &[3.0, 7.0]);
/// ```
pub struct Graph {
    nodes: Vec<Node>,
    scratch: Scratch,
    /// Epsilon used by batch normalization.
    pub bn_eps: f32,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::with_scratch(Scratch::new())
    }

    /// Creates an empty graph that draws conv workspaces from `scratch`.
    ///
    /// Thread the arena from step to step —
    /// `Graph::with_scratch(prev)` … [`Graph::backward_scratch`] — and
    /// im2col buffers are allocated once, then recycled for the rest of
    /// training.
    pub fn with_scratch(scratch: Scratch) -> Self {
        Graph {
            nodes: Vec::new(),
            scratch,
            bn_eps: 1e-5,
        }
    }

    fn push(&mut self, value: Tensor, op: OpRecord) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Number of nodes currently on the tape.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Registers an input (constant) tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, OpRecord::Leaf)
    }

    /// References a parameter from `store`; gradients flow back to it.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), OpRecord::Param(id))
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Elementwise sum; shapes must match.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.nodes[a.0].value.clone();
        out.add_in_place(&self.nodes[b.0].value);
        self.push(out, OpRecord::Add(a, b))
    }

    /// Multiplication by a constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let mut out = self.nodes[a.0].value.clone();
        out.scale_in_place(s);
        self.push(out, OpRecord::Scale(a, s))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut out = self.nodes[a.0].value.clone();
        for v in out.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.push(out, OpRecord::Relu(a))
    }

    /// Matrix product of 2-D tensors `a [m,k] * b [k,n]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        assert_eq!(sa.len(), 2);
        assert_eq!(sb.len(), 2);
        assert_eq!(sa[1], sb[0], "matmul {:?} x {:?}", sa, sb);
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let mut out = Tensor::zeros(&[m, n]);
        sgemm_acc(
            m,
            k,
            n,
            self.nodes[a.0].value.data(),
            self.nodes[b.0].value.data(),
            out.data_mut(),
        );
        self.push(out, OpRecord::MatMul(a, b))
    }

    /// Fully connected layer `y = x w^T + b` with `x [n, din]`,
    /// `w [dout, din]`, `b [dout]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let sx = self.nodes[x.0].value.shape().to_vec();
        let sw = self.nodes[w.0].value.shape().to_vec();
        assert_eq!(sx.len(), 2, "linear input must be 2-D");
        assert_eq!(sw.len(), 2, "linear weight must be 2-D");
        assert_eq!(sx[1], sw[1], "linear: x {:?} w {:?}", sx, sw);
        let (n, din, dout) = (sx[0], sx[1], sw[0]);
        assert_eq!(self.nodes[b.0].value.len(), dout);
        let mut out = Tensor::zeros(&[n, dout]);
        sgemm_a_bt_acc(
            n,
            din,
            dout,
            self.nodes[x.0].value.data(),
            self.nodes[w.0].value.data(),
            out.data_mut(),
        );
        let bias = self.nodes[b.0].value.data().to_vec();
        for row in 0..n {
            for (o, bv) in out.data_mut()[row * dout..(row + 1) * dout]
                .iter_mut()
                .zip(&bias)
            {
                *o += bv;
            }
        }
        self.push(out, OpRecord::Linear { x, w, b })
    }

    /// 2-D convolution (no bias); `x [n,cin,h,w]`, `w [cout,cin,k,k]`.
    pub fn conv2d(&mut self, x: Var, w: Var, geom: ConvGeom) -> Var {
        let (out, cols) = conv2d_forward_scratch(
            &self.nodes[x.0].value,
            &self.nodes[w.0].value,
            geom,
            false,
            &mut self.scratch,
        );
        self.push(out, OpRecord::Conv2d { x, w, geom, cols })
    }

    /// Fused `[ReLU →] conv2d → batch-norm` in a single tape node.
    ///
    /// Produces bit-identical values to the unfused
    /// `relu` + [`Graph::conv2d`] + [`Graph::batch_norm`] sequence (the
    /// same kernels and the same BN statistics loops run under the hood)
    /// while materializing neither the ReLU output nor a separate conv
    /// node: with `pre_relu = true` the ReLU is applied on the fly during
    /// im2col lowering, and the normalization statistics are computed
    /// directly on the conv output.
    pub fn fused_conv_bn(
        &mut self,
        x: Var,
        w: Var,
        gamma: Var,
        beta: Var,
        geom: ConvGeom,
        pre_relu: bool,
    ) -> Var {
        let (conv_out, cols) = conv2d_forward_scratch(
            &self.nodes[x.0].value,
            &self.nodes[w.0].value,
            geom,
            pre_relu,
            &mut self.scratch,
        );
        let (n, c, h, w4) = shape4(&conv_out);
        assert_eq!(self.nodes[gamma.0].value.len(), c);
        assert_eq!(self.nodes[beta.0].value.len(), c);
        let (out, mean, inv_std) = batch_norm_forward(
            conv_out.data(),
            n,
            c,
            h,
            w4,
            self.bn_eps,
            self.nodes[gamma.0].value.data(),
            self.nodes[beta.0].value.data(),
        );
        self.push(
            out,
            OpRecord::FusedConvBn {
                x,
                w,
                gamma,
                beta,
                geom,
                cols,
                conv_out,
                mean,
                inv_std,
                pre_relu,
            },
        )
    }

    /// Depthwise 2-D convolution; `x [n,c,h,w]`, `w [c,k,k]`.
    pub fn dwconv2d(&mut self, x: Var, w: Var, geom: ConvGeom) -> Var {
        let out = dwconv2d_forward(&self.nodes[x.0].value, &self.nodes[w.0].value, geom);
        self.push(out, OpRecord::DwConv2d { x, w, geom })
    }

    /// Max pooling.
    pub fn maxpool(&mut self, x: Var, geom: ConvGeom) -> Var {
        let (out, arg) = maxpool_forward(&self.nodes[x.0].value, geom);
        self.push(out, OpRecord::MaxPool { x, geom, arg })
    }

    /// Average pooling (padding excluded from divisor).
    pub fn avgpool(&mut self, x: Var, geom: ConvGeom) -> Var {
        let out = avgpool_forward(&self.nodes[x.0].value, geom);
        self.push(out, OpRecord::AvgPool { x, geom })
    }

    /// Global average pooling `[n,c,h,w] -> [n,c]`.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let (n, c, h, w) = shape4(&self.nodes[x.0].value);
        let mut out = Tensor::zeros(&[n, c]);
        let inv = 1.0 / (h * w) as f32;
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * h * w;
                let s: f32 = self.nodes[x.0].value.data()[base..base + h * w]
                    .iter()
                    .sum();
                out.data_mut()[i * c + ch] = s * inv;
            }
        }
        self.push(out, OpRecord::GlobalAvgPool { x })
    }

    /// Batch normalization over `(N, H, W)` per channel using *batch*
    /// statistics (the one-shot-NAS convention: batch stats are used at
    /// evaluation time as well). `gamma`/`beta` are `[c]` parameters.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn batch_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        let (n, c, h, w) = shape4(&self.nodes[x.0].value);
        assert_eq!(self.nodes[gamma.0].value.len(), c);
        assert_eq!(self.nodes[beta.0].value.len(), c);
        let (out, mean, inv_std) = batch_norm_forward(
            self.nodes[x.0].value.data(),
            n,
            c,
            h,
            w,
            self.bn_eps,
            self.nodes[gamma.0].value.data(),
            self.nodes[beta.0].value.data(),
        );
        self.push(
            out,
            OpRecord::BatchNorm {
                x,
                gamma,
                beta,
                mean,
                inv_std,
            },
        )
    }

    /// Concatenation along the channel dimension of NCHW tensors.
    ///
    /// # Panics
    ///
    /// Panics if batch or spatial dims differ, or `parts` is empty.
    pub fn concat_channels(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let (n, _, h, w) = shape4(&self.nodes[parts[0].0].value);
        let mut c_total = 0;
        for p in parts {
            let (pn, pc, ph, pw) = shape4(&self.nodes[p.0].value);
            assert_eq!((pn, ph, pw), (n, h, w), "concat mismatched dims");
            c_total += pc;
        }
        let mut out = Tensor::zeros(&[n, c_total, h, w]);
        {
            let od = out.data_mut();
            for i in 0..n {
                let mut c_off = 0;
                for p in parts {
                    let (_, pc, _, _) = shape4(&self.nodes[p.0].value);
                    let src = &self.nodes[p.0].value.data()[i * pc * h * w..(i + 1) * pc * h * w];
                    let dst_base = (i * c_total + c_off) * h * w;
                    od[dst_base..dst_base + pc * h * w].copy_from_slice(src);
                    c_off += pc;
                }
            }
        }
        self.push(out, OpRecord::ConcatChan(parts.to_vec()))
    }

    /// Fused softmax + mean cross-entropy loss over a batch.
    /// `logits [n, k]`, `labels` of length `n`. Returns a scalar node.
    ///
    /// # Panics
    ///
    /// Panics if a label is out of range or lengths mismatch.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let s = self.nodes[logits.0].value.shape();
        assert_eq!(s.len(), 2);
        let (n, k) = (s[0], s[1]);
        assert_eq!(labels.len(), n, "labels/batch mismatch");
        let ld = self.nodes[logits.0].value.data();
        let mut probs = Tensor::zeros(&[n, k]);
        let mut loss = 0.0f32;
        for i in 0..n {
            assert!(labels[i] < k, "label {} out of range {}", labels[i], k);
            let row = &ld[i * k..(i + 1) * k];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            let prow = &mut probs.data_mut()[i * k..(i + 1) * k];
            for (p, v) in prow.iter_mut().zip(row) {
                *p = (v - mx).exp();
                denom += *p;
            }
            for p in prow.iter_mut() {
                *p /= denom;
            }
            loss -= prow[labels[i]].max(1e-12).ln();
        }
        loss /= n as f32;
        self.push(
            Tensor::from_vec(&[1], vec![loss]),
            OpRecord::SoftmaxCrossEntropy {
                logits,
                labels: labels.to_vec(),
                probs,
            },
        )
    }

    /// Runs reverse-mode differentiation from `loss`, consuming the graph
    /// and accumulating parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) node.
    pub fn backward(self, loss: Var, store: &mut ParamStore) {
        let _ = self.backward_scratch(loss, store);
    }

    /// Like [`Graph::backward`], but returns the workspace arena (with
    /// every conv buffer reclaimed from the tape) so the caller can feed
    /// it to the next step's [`Graph::with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) node.
    pub fn backward_scratch(mut self, loss: Var, store: &mut ParamStore) -> Scratch {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward must start from a scalar"
        );
        let seed = Tensor::ones(self.nodes[loss.0].value.shape());
        self.nodes[loss.0].grad = Some(seed);
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].grad.is_none() {
                continue;
            }
            let node = std::mem::take(&mut self.nodes[i]);
            let g = node.grad.expect("checked above");
            match node.op {
                OpRecord::Leaf => {}
                OpRecord::Param(id) => store.accumulate_grad(id, &g),
                OpRecord::Add(a, b) => {
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                OpRecord::Scale(a, s) => {
                    let mut ga = g;
                    ga.scale_in_place(s);
                    self.accumulate(a, ga);
                }
                OpRecord::Relu(a) => {
                    let mut ga = g;
                    for (gv, ov) in ga.data_mut().iter_mut().zip(node.value.data()) {
                        if *ov <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    self.accumulate(a, ga);
                }
                OpRecord::MatMul(a, b) => {
                    let (m, k) = {
                        let sa = self.nodes[a.0].value.shape();
                        (sa[0], sa[1])
                    };
                    let n = self.nodes[b.0].value.shape()[1];
                    let mut da = Tensor::zeros(&[m, k]);
                    // da = g * b^T ; b is [k, n]
                    sgemm_a_bt_acc(
                        m,
                        n,
                        k,
                        g.data(),
                        self.nodes[b.0].value.data(),
                        da.data_mut(),
                    );
                    let mut db = Tensor::zeros(&[k, n]);
                    // db = a^T * g ; a is [m, k]
                    sgemm_at_b_acc(
                        k,
                        m,
                        n,
                        self.nodes[a.0].value.data(),
                        g.data(),
                        db.data_mut(),
                    );
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                OpRecord::Linear { x, w, b } => {
                    let (n, dout) = {
                        let s = g.shape();
                        (s[0], s[1])
                    };
                    let din = self.nodes[x.0].value.shape()[1];
                    let mut dx = Tensor::zeros(&[n, din]);
                    // dx = g [n,dout] * w [dout,din]
                    sgemm_acc(
                        n,
                        dout,
                        din,
                        g.data(),
                        self.nodes[w.0].value.data(),
                        dx.data_mut(),
                    );
                    let mut dw = Tensor::zeros(&[dout, din]);
                    // dw = g^T [dout,n] * x [n,din]
                    sgemm_at_b_acc(
                        dout,
                        n,
                        din,
                        g.data(),
                        self.nodes[x.0].value.data(),
                        dw.data_mut(),
                    );
                    let mut db = Tensor::zeros(&[dout]);
                    for row in 0..n {
                        for (dv, gv) in db
                            .data_mut()
                            .iter_mut()
                            .zip(&g.data()[row * dout..(row + 1) * dout])
                        {
                            *dv += gv;
                        }
                    }
                    self.accumulate(x, dx);
                    self.accumulate(w, dw);
                    self.accumulate(b, db);
                }
                OpRecord::Conv2d { x, w, geom, cols } => {
                    let (dx, dw) = conv2d_backward_scratch(
                        &self.nodes[x.0].value,
                        &self.nodes[w.0].value,
                        geom,
                        &cols,
                        &g,
                        &mut self.scratch,
                    );
                    self.scratch.give(cols);
                    self.accumulate(x, dx);
                    self.accumulate(w, dw);
                }
                OpRecord::FusedConvBn {
                    x,
                    w,
                    gamma,
                    beta,
                    geom,
                    cols,
                    conv_out,
                    mean,
                    inv_std,
                    pre_relu,
                } => {
                    let (nn, c, hh, ww) = shape4(&conv_out);
                    let (dconv, dgamma, dbeta) = batch_norm_backward(
                        conv_out.data(),
                        g.data(),
                        self.nodes[gamma.0].value.data(),
                        &mean,
                        &inv_std,
                        nn,
                        c,
                        hh,
                        ww,
                    );
                    // The conv consumed relu(x) (or x); the backward only
                    // needs that input's *shape* plus the cached cols, so
                    // passing x directly is exact.
                    let (mut dx, dw) = conv2d_backward_scratch(
                        &self.nodes[x.0].value,
                        &self.nodes[w.0].value,
                        geom,
                        &cols,
                        &dconv,
                        &mut self.scratch,
                    );
                    self.scratch.give(cols);
                    if pre_relu {
                        // relu(x) <= 0 exactly where x <= 0, matching the
                        // unfused Relu node's mask.
                        for (gv, xv) in dx.data_mut().iter_mut().zip(self.nodes[x.0].value.data()) {
                            if *xv <= 0.0 {
                                *gv = 0.0;
                            }
                        }
                    }
                    self.accumulate(x, dx);
                    self.accumulate(w, dw);
                    self.accumulate(gamma, dgamma);
                    self.accumulate(beta, dbeta);
                }
                OpRecord::DwConv2d { x, w, geom } => {
                    let (dx, dw) =
                        dwconv2d_backward(&self.nodes[x.0].value, &self.nodes[w.0].value, geom, &g);
                    self.accumulate(x, dx);
                    self.accumulate(w, dw);
                }
                OpRecord::MaxPool { x, geom, arg } => {
                    let dx = maxpool_backward(self.nodes[x.0].value.shape(), geom, &arg, &g);
                    self.accumulate(x, dx);
                }
                OpRecord::AvgPool { x, geom } => {
                    let dx = avgpool_backward(self.nodes[x.0].value.shape(), geom, &g);
                    self.accumulate(x, dx);
                }
                OpRecord::GlobalAvgPool { x } => {
                    let (n, c, h, w) = shape4(&self.nodes[x.0].value);
                    let inv = 1.0 / (h * w) as f32;
                    let mut dx = Tensor::zeros(&[n, c, h, w]);
                    for i in 0..n {
                        for ch in 0..c {
                            let gv = g.data()[i * c + ch] * inv;
                            let base = (i * c + ch) * h * w;
                            for v in &mut dx.data_mut()[base..base + h * w] {
                                *v = gv;
                            }
                        }
                    }
                    self.accumulate(x, dx);
                }
                OpRecord::BatchNorm {
                    x,
                    gamma,
                    beta,
                    mean,
                    inv_std,
                } => {
                    let (n, c, h, w) = shape4(&self.nodes[x.0].value);
                    let (dx, dgamma, dbeta) = batch_norm_backward(
                        self.nodes[x.0].value.data(),
                        g.data(),
                        self.nodes[gamma.0].value.data(),
                        &mean,
                        &inv_std,
                        n,
                        c,
                        h,
                        w,
                    );
                    self.accumulate(x, dx);
                    self.accumulate(gamma, dgamma);
                    self.accumulate(beta, dbeta);
                }
                OpRecord::ConcatChan(parts) => {
                    let (n, c_total, h, w) = {
                        let s = g.shape();
                        (s[0], s[1], s[2], s[3])
                    };
                    let mut c_off = 0;
                    for p in parts {
                        let (_, pc, _, _) = shape4(&self.nodes[p.0].value);
                        let mut dp = Tensor::zeros(&[n, pc, h, w]);
                        for i in 0..n {
                            let src_base = (i * c_total + c_off) * h * w;
                            let dst_base = i * pc * h * w;
                            dp.data_mut()[dst_base..dst_base + pc * h * w]
                                .copy_from_slice(&g.data()[src_base..src_base + pc * h * w]);
                        }
                        self.accumulate(p, dp);
                        c_off += pc;
                    }
                }
                OpRecord::SoftmaxCrossEntropy {
                    logits,
                    labels,
                    probs,
                } => {
                    let (n, k) = (probs.shape()[0], probs.shape()[1]);
                    let scale = g.data()[0] / n as f32;
                    let mut dl = probs;
                    for i in 0..n {
                        dl.data_mut()[i * k + labels[i]] -= 1.0;
                    }
                    dl.scale_in_place(scale);
                    self.accumulate(logits, dl);
                }
            }
        }
        self.scratch
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_in_place(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

/// Batch-norm forward over NCHW data with batch statistics. Returns
/// `(normalized output, per-channel mean, per-channel 1/std)`.
///
/// Shared by [`Graph::batch_norm`] and [`Graph::fused_conv_bn`] so the
/// fused op is bit-identical to the unfused sequence; public so the
/// tape-free int8 scoring path (`yoso-nn`'s quantized forward) applies
/// the exact same normalization to its dequantized conv outputs.
#[allow(clippy::too_many_arguments)]
pub fn batch_norm_forward(
    xs: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    eps: f32,
    gamma: &[f32],
    beta: &[f32],
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let m = (n * h * w) as f32;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for v in &xs[base..base + h * w] {
                mean[ch] += v;
            }
        }
    }
    for mv in &mut mean {
        *mv /= m;
    }
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for v in &xs[base..base + h * w] {
                let d = v - mean[ch];
                var[ch] += d * d;
            }
        }
    }
    let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v / m + eps).sqrt()).collect();
    let mut out = Tensor::zeros(&[n, c, h, w]);
    {
        let od = out.data_mut();
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * h * w;
                let (mu, is, ga, be) = (mean[ch], inv_std[ch], gamma[ch], beta[ch]);
                for (o, v) in od[base..base + h * w]
                    .iter_mut()
                    .zip(&xs[base..base + h * w])
                {
                    *o = ga * (v - mu) * is + be;
                }
            }
        }
    }
    (out, mean, inv_std)
}

/// Batch-norm backward over NCHW data. `xs` is the forward *input*;
/// returns `(dx, dgamma, dbeta)`. Shared by the `BatchNorm` and
/// `FusedConvBn` tape records.
#[allow(clippy::too_many_arguments)]
fn batch_norm_backward(
    xs: &[f32],
    gs: &[f32],
    gamma: &[f32],
    mean: &[f32],
    inv_std: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> (Tensor, Tensor, Tensor) {
    let m = (n * h * w) as f32;
    let mut dgamma = Tensor::zeros(&[c]);
    let mut dbeta = Tensor::zeros(&[c]);
    let mut sum_dy = vec![0.0f32; c];
    let mut sum_dy_xhat = vec![0.0f32; c];
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let (mu, is) = (mean[ch], inv_std[ch]);
            for j in 0..h * w {
                let xhat = (xs[base + j] - mu) * is;
                let dy = gs[base + j];
                sum_dy[ch] += dy;
                sum_dy_xhat[ch] += dy * xhat;
            }
        }
    }
    for ch in 0..c {
        dgamma.data_mut()[ch] = sum_dy_xhat[ch];
        dbeta.data_mut()[ch] = sum_dy[ch];
    }
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    {
        let dxd = dx.data_mut();
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * h * w;
                let (mu, is, ga) = (mean[ch], inv_std[ch], gamma[ch]);
                let coef = ga * is / m;
                for j in 0..h * w {
                    let xhat = (xs[base + j] - mu) * is;
                    dxd[base + j] = coef * (m * gs[base + j] - sum_dy[ch] - xhat * sum_dy_xhat[ch]);
                }
            }
        }
    }
    (dx, dgamma, dbeta)
}

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or lengths mismatch.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let s = logits.shape();
    assert_eq!(s.len(), 2);
    let (n, k) = (s[0], s[1]);
    assert_eq!(labels.len(), n);
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best = 0usize;
        for j in 1..k {
            if row[j] > row[best] {
                best = j;
            }
        }
        if best == labels[i] {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_param(
        build: &dyn Fn(&mut Graph, &ParamStore) -> Var,
        store: &mut ParamStore,
        id: ParamId,
        indices: &[usize],
    ) {
        // Analytic gradient.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss, store);
        let analytic = store.grad(id).clone();
        // Numeric gradient.
        let eps = 1e-2f32;
        for &idx in indices {
            let orig = store.value(id).data()[idx];
            store.value_mut(id).data_mut()[idx] = orig + eps;
            let mut g1 = Graph::new();
            let l1 = build(&mut g1, store);
            let f1 = g1.value(l1).data()[0];
            store.value_mut(id).data_mut()[idx] = orig - eps;
            let mut g2 = Graph::new();
            let l2 = build(&mut g2, store);
            let f2 = g2.value(l2).data()[0];
            store.value_mut(id).data_mut()[idx] = orig;
            let num = (f1 - f2) / (2.0 * eps);
            let ana = analytic.data()[idx];
            assert!(
                (num - ana).abs() < 0.03 * (1.0 + num.abs().max(ana.abs())),
                "param grad[{idx}]: fd {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn add_scale_relu_backward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let w = store.add(Tensor::randn(&[1, 8], 1.0, &mut rng));
        let build = |g: &mut Graph, s: &ParamStore| {
            let x = g.input(Tensor::from_vec(
                &[1, 8],
                vec![1.0, -2.0, 0.5, 3.0, -0.1, 0.0, 2.0, -4.0],
            ));
            let wv = g.param(s, w);
            let a = g.add(x, wv);
            let r = g.relu(a);
            let sum_w = g.input(Tensor::ones(&[8, 1]));
            let out = g.matmul(r, sum_w);
            g.scale(out, 0.5)
        };
        finite_diff_param(&build, &mut store, w, &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn linear_backward_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let w = store.add(Tensor::randn(&[3, 4], 0.7, &mut rng));
        let b = store.add(Tensor::randn(&[3], 0.3, &mut rng));
        let x_data = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let labels = vec![0usize, 2];
        let build = move |g: &mut Graph, s: &ParamStore| {
            let x = g.input(x_data.clone());
            let wv = g.param(s, w);
            let bv = g.param(s, b);
            let y = g.linear(x, wv, bv);
            g.softmax_cross_entropy(y, &labels)
        };
        finite_diff_param(&build, &mut store, w, &[0, 3, 7, 11]);
        finite_diff_param(&build, &mut store, b, &[0, 1, 2]);
    }

    #[test]
    fn batchnorm_backward_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let gamma = store.add(Tensor::ones(&[3]));
        let beta = store.add(Tensor::zeros(&[3]));
        let w = store.add(Tensor::randn(&[2, 3, 1, 1], 0.5, &mut rng));
        let x_data = Tensor::randn(&[4, 3, 4, 4], 1.5, &mut rng);
        let labels = vec![0usize, 1, 0, 1];
        let build = move |g: &mut Graph, s: &ParamStore| {
            let x = g.input(x_data.clone());
            let ga = g.param(s, gamma);
            let be = g.param(s, beta);
            let y = g.batch_norm(x, ga, be);
            let wv = g.param(s, w);
            let z = g.conv2d(y, wv, ConvGeom::new(1, 1, 0));
            let p = g.global_avg_pool(z);
            g.softmax_cross_entropy(p, &labels)
        };
        finite_diff_param(&build, &mut store, gamma, &[0, 1, 2]);
        finite_diff_param(&build, &mut store, beta, &[0, 1, 2]);
        finite_diff_param(&build, &mut store, w, &[0, 2, 5]);
    }

    #[test]
    fn conv_pool_concat_pipeline_backward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let w1 = store.add(Tensor::randn(&[4, 3, 3, 3], 0.4, &mut rng));
        let wd = store.add(Tensor::randn(&[4, 3, 3], 0.4, &mut rng));
        let wl = store.add(Tensor::randn(&[2, 8], 0.4, &mut rng));
        let bl = store.add(Tensor::zeros(&[2]));
        let x_data = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let labels = vec![0usize, 1];
        let build = move |g: &mut Graph, s: &ParamStore| {
            let x = g.input(x_data.clone());
            let w1v = g.param(s, w1);
            let c = g.conv2d(x, w1v, ConvGeom::same(3, 2));
            let r = g.relu(c);
            let wdv = g.param(s, wd);
            let d = g.dwconv2d(r, wdv, ConvGeom::same(3, 1));
            let mp = g.maxpool(r, ConvGeom::same(3, 1));
            let ap = g.avgpool(d, ConvGeom::same(3, 1));
            let cat = g.concat_channels(&[mp, ap]);
            let p = g.global_avg_pool(cat);
            let wlv = g.param(s, wl);
            let blv = g.param(s, bl);
            let y = g.linear(p, wlv, blv);
            g.softmax_cross_entropy(y, &labels)
        };
        finite_diff_param(&build, &mut store, w1, &[0, 10, 50, 107]);
        finite_diff_param(&build, &mut store, wd, &[0, 17, 35]);
        finite_diff_param(&build, &mut store, wl, &[0, 7, 15]);
    }

    /// The fused ReLU→conv→BN node must be *bit-identical* to the unfused
    /// three-node sequence: same forward values, same parameter gradients.
    #[test]
    fn fused_conv_bn_matches_unfused_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let x_data = Tensor::randn(&[3, 2, 5, 5], 1.0, &mut rng);
        let w_data = Tensor::randn(&[4, 2, 3, 3], 0.5, &mut rng);
        let labels = vec![0usize, 1, 0];
        for pre_relu in [true, false] {
            let mut store_a = ParamStore::new();
            let wa = store_a.add(w_data.clone());
            let ga_a = store_a.add(Tensor::from_vec(&[4], vec![1.0, 0.7, 1.3, 0.9]));
            let be_a = store_a.add(Tensor::from_vec(&[4], vec![0.0, 0.2, -0.1, 0.05]));
            let mut store_b = store_a.clone();
            // Unfused.
            let mut g1 = Graph::new();
            let x1 = g1.input(x_data.clone());
            let pre = if pre_relu { g1.relu(x1) } else { x1 };
            let wv = g1.param(&store_a, wa);
            let c1 = g1.conv2d(pre, wv, ConvGeom::same(3, 2));
            let gav = g1.param(&store_a, ga_a);
            let bev = g1.param(&store_a, be_a);
            let y1 = g1.batch_norm(c1, gav, bev);
            let p1 = g1.global_avg_pool(y1);
            let l1 = g1.softmax_cross_entropy(p1, &labels);
            let y1_val = g1.value(y1).clone();
            store_a.zero_grads();
            g1.backward(l1, &mut store_a);
            // Fused.
            let mut g2 = Graph::new();
            let x2 = g2.input(x_data.clone());
            let wv2 = g2.param(&store_b, wa);
            let gav2 = g2.param(&store_b, ga_a);
            let bev2 = g2.param(&store_b, be_a);
            let y2 = g2.fused_conv_bn(x2, wv2, gav2, bev2, ConvGeom::same(3, 2), pre_relu);
            let p2 = g2.global_avg_pool(y2);
            let l2 = g2.softmax_cross_entropy(p2, &labels);
            let y2_val = g2.value(y2).clone();
            store_b.zero_grads();
            g2.backward(l2, &mut store_b);
            assert_eq!(
                y1_val.data(),
                y2_val.data(),
                "forward (pre_relu={pre_relu})"
            );
            for id in [wa, ga_a, be_a] {
                assert_eq!(
                    store_a.grad(id).data(),
                    store_b.grad(id).data(),
                    "grad (pre_relu={pre_relu})"
                );
            }
        }
    }

    /// Scratch threading: conv workspaces survive a forward/backward round
    /// trip and get recycled by the next step instead of reallocated.
    #[test]
    fn scratch_recycles_conv_buffers_across_steps() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let w = store.add(Tensor::randn(&[4, 3, 3, 3], 0.4, &mut rng));
        let x_data = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let labels = vec![0usize, 1];
        let mut scratch = crate::scratch::Scratch::new();
        let mut first_pooled = 0;
        for step in 0..3 {
            let mut g = Graph::with_scratch(std::mem::take(&mut scratch));
            let x = g.input(x_data.clone());
            let wv = g.param(&store, w);
            let c = g.conv2d(x, wv, ConvGeom::same(3, 1));
            let p = g.global_avg_pool(c);
            let loss = g.softmax_cross_entropy(p, &labels);
            store.zero_grads();
            scratch = g.backward_scratch(loss, &mut store);
            if step == 0 {
                first_pooled = scratch.pooled();
                assert!(first_pooled >= 2, "cols + dcol should be pooled");
            } else {
                // Steady state: same buffers cycle, the pool doesn't grow.
                assert_eq!(scratch.pooled(), first_pooled);
            }
        }
    }

    #[test]
    fn softmax_ce_known_value() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::from_vec(&[1, 2], vec![0.0, 0.0]));
        let loss = g.softmax_cross_entropy(logits, &[0]);
        let expected = (2.0f32).ln();
        assert!((g.value(loss).data()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn accuracy_helper() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 5.0, 2.0, 9.0, 0.0, 1.0]);
        assert_eq!(accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }

    /// End-to-end sanity: a tiny conv net learns a separable toy problem.
    #[test]
    fn tiny_network_learns() {
        use crate::optim::Sgd;
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let wc = store.add(Tensor::he_normal(&[4, 1, 3, 3], 9, &mut rng));
        let wl = store.add(Tensor::he_normal(&[2, 4], 4, &mut rng));
        let bl = store.add(Tensor::zeros(&[2]));
        // Class 0: bright left half; class 1: bright right half.
        let make_batch = |rng: &mut StdRng| {
            let n = 16;
            let mut xs = Tensor::zeros(&[n, 1, 6, 6]);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                let cls = i % 2;
                labels.push(cls);
                for y in 0..6 {
                    for x in 0..6 {
                        let lit = if cls == 0 { x < 3 } else { x >= 3 };
                        let base = i * 36 + y * 6 + x;
                        xs.data_mut()[base] = if lit { 1.0 } else { 0.0 }
                            + 0.1
                                * ({
                                    use rand::RngExt;
                                    rng.random::<f32>()
                                } - 0.5);
                    }
                }
            }
            (xs, labels)
        };
        let mut opt = Sgd::new(0.1, 0.9, 1e-4);
        let mut last_acc = 0.0;
        for _ in 0..60 {
            let (xs, labels) = make_batch(&mut rng);
            let mut g = Graph::new();
            let x = g.input(xs);
            let wcv = g.param(&store, wc);
            let c = g.conv2d(x, wcv, ConvGeom::same(3, 1));
            let r = g.relu(c);
            let p = g.global_avg_pool(r);
            let wlv = g.param(&store, wl);
            let blv = g.param(&store, bl);
            let y = g.linear(p, wlv, blv);
            let loss = g.softmax_cross_entropy(y, &labels);
            last_acc = accuracy(g.value(y), &labels);
            store.zero_grads();
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last_acc > 0.9, "accuracy {last_acc}");
    }
}
