//! Convolution and pooling kernels (NCHW layout).
//!
//! These are free functions on raw [`Tensor`]s; the autograd
//! [`Graph`](crate::graph::Graph) wraps them into differentiable nodes.

#![allow(clippy::too_many_arguments)]
#![allow(clippy::needless_range_loop)]

use crate::matmul::{sgemm, sgemm_a_bt_acc, sgemm_at_b_acc};
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Static geometry of a 2-D convolution / pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Square kernel size.
    pub k: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub pad: usize,
}

impl ConvGeom {
    /// Creates a geometry descriptor.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        ConvGeom { k, stride, pad }
    }

    /// Geometry preserving spatial size at stride 1 (`pad = k/2`).
    pub fn same(k: usize, stride: usize) -> Self {
        ConvGeom {
            k,
            stride,
            pad: k / 2,
        }
    }

    /// Output spatial extent for an input extent `h`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit (`h + 2*pad < k`).
    pub fn out_dim(&self, h: usize) -> usize {
        assert!(
            h + 2 * self.pad >= self.k,
            "window larger than padded input"
        );
        (h + 2 * self.pad - self.k) / self.stride + 1
    }
}

/// Lowers one sample `x[c, h, w]` into a column matrix `[c*k*k, hout*wout]`.
///
/// With `RELU = true`, applies `max(0, ·)` to each element while copying —
/// the fused forward path uses this to avoid materializing a separate
/// ReLU output tensor. The flag is a const generic so the branch
/// disappears from the generated inner loops.
fn im2col<const RELU: bool>(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    g: ConvGeom,
    hout: usize,
    wout: usize,
    col: &mut [f32],
) {
    let k = g.k;
    debug_assert_eq!(col.len(), c * k * k * hout * wout);
    let hw_out = hout * wout;
    for ch in 0..c {
        let xc = &x[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((ch * k + ky) * k + kx) * hw_out;
                for oy in 0..hout {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    let dst = &mut col[row + oy * wout..row + (oy + 1) * wout];
                    if iy < 0 || iy >= h as isize {
                        for v in dst.iter_mut() {
                            *v = 0.0;
                        }
                        continue;
                    }
                    let xrow = &xc[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, v) in dst.iter_mut().enumerate() {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        *v = if ix < 0 || ix >= w as isize {
                            0.0
                        } else if RELU {
                            xrow[ix as usize].max(0.0)
                        } else {
                            xrow[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters a column-matrix gradient back to the input gradient (adjoint of
/// [`im2col`]): `dx[c, h, w] += col2im(dcol)`.
fn col2im_acc(
    dcol: &[f32],
    c: usize,
    h: usize,
    w: usize,
    g: ConvGeom,
    hout: usize,
    wout: usize,
    dx: &mut [f32],
) {
    let k = g.k;
    let hw_out = hout * wout;
    for ch in 0..c {
        let dxc = &mut dx[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((ch * k + ky) * k + kx) * hw_out;
                for oy in 0..hout {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src = &dcol[row + oy * wout..row + (oy + 1) * wout];
                    let drow = &mut dxc[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, v) in src.iter().enumerate() {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix >= 0 && (ix as usize) < w {
                            drow[ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `x` is `[n, cin, h, w]`, `weight` is `[cout, cin, k, k]`; returns
/// `[n, cout, hout, wout]` along with the cached im2col buffers used by
/// the backward pass.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `geom`.
pub fn conv2d_forward(x: &Tensor, weight: &Tensor, geom: ConvGeom) -> (Tensor, Vec<f32>) {
    conv2d_forward_scratch(x, weight, geom, false, &mut Scratch::new())
}

/// Forward 2-D convolution with an explicit workspace arena and optional
/// fused input ReLU.
///
/// Like [`conv2d_forward`], but the im2col buffer is taken from `scratch`
/// (return it with [`Scratch::give`] after the backward pass to make the
/// next call allocation-free), and `relu_input = true` applies
/// `max(0, ·)` to the input while lowering, so `relu(x)` never needs to
/// be materialized.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `geom`.
pub fn conv2d_forward_scratch(
    x: &Tensor,
    weight: &Tensor,
    geom: ConvGeom,
    relu_input: bool,
    scratch: &mut Scratch,
) -> (Tensor, Vec<f32>) {
    let (n, cin, h, w) = shape4(x);
    let ws = weight.shape();
    assert_eq!(ws.len(), 4, "conv weight must be 4-D");
    assert_eq!(
        ws[1], cin,
        "cin mismatch: weight {:?} input cin {}",
        ws, cin
    );
    assert_eq!(ws[2], geom.k);
    assert_eq!(ws[3], geom.k);
    let cout = ws[0];
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let ckk = cin * geom.k * geom.k;
    let hw_out = hout * wout;
    // im2col overwrites every element (padding is written as an explicit
    // zero), so the recycled buffer's contents don't matter.
    let mut cols = scratch.take(n * ckk * hw_out);
    let mut out = Tensor::zeros(&[n, cout, hout, wout]);
    for i in 0..n {
        let col = &mut cols[i * ckk * hw_out..(i + 1) * ckk * hw_out];
        let xi = &x.data()[i * cin * h * w..(i + 1) * cin * h * w];
        if relu_input {
            im2col::<true>(xi, cin, h, w, geom, hout, wout, col);
        } else {
            im2col::<false>(xi, cin, h, w, geom, hout, wout, col);
        }
        sgemm(
            cout,
            ckk,
            hw_out,
            weight.data(),
            col,
            &mut out.data_mut()[i * cout * hw_out..(i + 1) * cout * hw_out],
        );
    }
    (out, cols)
}

/// Backward 2-D convolution. Returns `(dx, dweight)`.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    geom: ConvGeom,
    cols: &[f32],
    dout: &Tensor,
) -> (Tensor, Tensor) {
    conv2d_backward_scratch(x, weight, geom, cols, dout, &mut Scratch::new())
}

/// Backward 2-D convolution with an explicit workspace arena for the
/// per-sample `dcol` buffer. Returns `(dx, dweight)`.
pub fn conv2d_backward_scratch(
    x: &Tensor,
    weight: &Tensor,
    geom: ConvGeom,
    cols: &[f32],
    dout: &Tensor,
    scratch: &mut Scratch,
) -> (Tensor, Tensor) {
    let (n, cin, h, w) = shape4(x);
    let cout = weight.shape()[0];
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let ckk = cin * geom.k * geom.k;
    let hw_out = hout * wout;
    let mut dx = Tensor::zeros(x.shape());
    let mut dw = Tensor::zeros(weight.shape());
    let mut dcol = scratch.take(ckk * hw_out);
    for i in 0..n {
        let col = &cols[i * ckk * hw_out..(i + 1) * ckk * hw_out];
        let doi = &dout.data()[i * cout * hw_out..(i + 1) * cout * hw_out];
        // dW += dout_i (cout x hw) * col_i^T (hw x ckk)
        sgemm_a_bt_acc(cout, hw_out, ckk, doi, col, dw.data_mut());
        // dcol = W^T (ckk x cout) * dout_i (cout x hw)
        for v in dcol.iter_mut() {
            *v = 0.0;
        }
        sgemm_at_b_acc(ckk, cout, hw_out, weight.data(), doi, &mut dcol);
        col2im_acc(
            &dcol,
            cin,
            h,
            w,
            geom,
            hout,
            wout,
            &mut dx.data_mut()[i * cin * h * w..(i + 1) * cin * h * w],
        );
    }
    scratch.give(dcol);
    (dx, dw)
}

/// Valid output range `[lo, hi)` for window tap `kk`: the outputs `o`
/// with `0 <= o*stride + kk - pad < limit_in`, clamped to `limit_out`.
/// Hoisting this per tap removes every bounds branch from the inner
/// loops of the windowed ops below.
#[inline]
fn tap_range(
    kk: usize,
    pad: usize,
    stride: usize,
    limit_in: usize,
    limit_out: usize,
) -> (usize, usize) {
    let lo = pad.saturating_sub(kk).div_ceil(stride).min(limit_out);
    let hi = (limit_in + pad)
        .saturating_sub(kk)
        .div_ceil(stride)
        .clamp(lo, limit_out);
    (lo, hi)
}

/// Forward depthwise convolution: `x` `[n, c, h, w]`, `weight` `[c, k, k]`.
pub fn dwconv2d_forward(x: &Tensor, weight: &Tensor, geom: ConvGeom) -> Tensor {
    let (n, c, h, w) = shape4(x);
    let ws = weight.shape();
    assert_eq!(ws, &[c, geom.k, geom.k], "dwconv weight shape");
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let mut out = Tensor::zeros(&[n, c, hout, wout]);
    let k = geom.k;
    let (s, pad) = (geom.stride, geom.pad);
    // Tap-outer accumulation: for each kernel tap, the valid output
    // rectangle is precomputed and the inner `ox` loop is a branch-free
    // (contiguous when stride 1) multiply-accumulate.
    for i in 0..n {
        for ch in 0..c {
            let xc = &x.data()[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let wc = &weight.data()[ch * k * k..(ch + 1) * k * k];
            let oc =
                &mut out.data_mut()[(i * c + ch) * hout * wout..(i * c + ch + 1) * hout * wout];
            for ky in 0..k {
                let (oy_lo, oy_hi) = tap_range(ky, pad, s, h, hout);
                for kx in 0..k {
                    let (lo, hi) = tap_range(kx, pad, s, w, wout);
                    if hi == lo {
                        continue;
                    }
                    let wv = wc[ky * k + kx];
                    let x0 = lo * s + kx - pad;
                    for oy in oy_lo..oy_hi {
                        let iy = oy * s + ky - pad;
                        let xrow = &xc[iy * w..(iy + 1) * w];
                        let orow = &mut oc[oy * wout + lo..oy * wout + hi];
                        if s == 1 {
                            for (o, xv) in orow.iter_mut().zip(&xrow[x0..x0 + (hi - lo)]) {
                                *o += wv * *xv;
                            }
                        } else {
                            for (o, xv) in orow.iter_mut().zip(xrow[x0..].iter().step_by(s)) {
                                *o += wv * *xv;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Backward depthwise convolution. Returns `(dx, dweight)`.
pub fn dwconv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    geom: ConvGeom,
    dout: &Tensor,
) -> (Tensor, Tensor) {
    let (n, c, h, w) = shape4(x);
    let k = geom.k;
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let mut dx = Tensor::zeros(x.shape());
    let mut dw = Tensor::zeros(weight.shape());
    for i in 0..n {
        for ch in 0..c {
            let xc = &x.data()[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let wc = &weight.data()[ch * k * k..(ch + 1) * k * k];
            let doc = &dout.data()[(i * c + ch) * hout * wout..(i * c + ch + 1) * hout * wout];
            // Split borrows: accumulate into temporary per-channel buffers.
            let mut dxc = vec![0.0f32; h * w];
            let mut dwc = vec![0.0f32; k * k];
            for oy in 0..hout {
                for ox in 0..wout {
                    let g = doc[oy * wout + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..k {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xi = iy as usize * w + ix as usize;
                            dxc[xi] += g * wc[ky * k + kx];
                            dwc[ky * k + kx] += g * xc[xi];
                        }
                    }
                }
            }
            for (d, v) in dx.data_mut()[(i * c + ch) * h * w..(i * c + ch + 1) * h * w]
                .iter_mut()
                .zip(&dxc)
            {
                *d += v;
            }
            for (d, v) in dw.data_mut()[ch * k * k..(ch + 1) * k * k]
                .iter_mut()
                .zip(&dwc)
            {
                *d += v;
            }
        }
    }
    (dx, dw)
}

/// Forward max pooling; returns the output and the argmax index (into the
/// flattened per-sample input) for each output element, used by backward.
pub fn maxpool_forward(x: &Tensor, geom: ConvGeom) -> (Tensor, Vec<u32>) {
    let (n, c, h, w) = shape4(x);
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let mut out = Tensor::zeros(&[n, c, hout, wout]);
    let mut arg = vec![0u32; n * c * hout * wout];
    let (s, pad, k) = (geom.stride, geom.pad, geom.k);
    out.data_mut().fill(f32::NEG_INFINITY);
    // Tap-outer running max. Taps are visited in the same (ky, kx) order
    // as the per-window scan and only a *strictly* greater value replaces
    // the running best, so ties resolve to the first tap exactly as
    // before; the branch-free select compiles to cmov/blend.
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let xc = &x.data()[base..base + h * w];
            let obase = (i * c + ch) * hout * wout;
            let oc = &mut out.data_mut()[obase..obase + hout * wout];
            let ac = &mut arg[obase..obase + hout * wout];
            for ky in 0..k {
                let (oy_lo, oy_hi) = tap_range(ky, pad, s, h, hout);
                for kx in 0..k {
                    let (lo, hi) = tap_range(kx, pad, s, w, wout);
                    if hi == lo {
                        continue;
                    }
                    let x0 = lo * s + kx - pad;
                    for oy in oy_lo..oy_hi {
                        let iy = oy * s + ky - pad;
                        let xrow = &xc[iy * w..(iy + 1) * w];
                        let orow = &mut oc[oy * wout + lo..oy * wout + hi];
                        let arow = &mut ac[oy * wout + lo..oy * wout + hi];
                        let mut ix = x0;
                        for (o, a) in orow.iter_mut().zip(arow.iter_mut()) {
                            let v = xrow[ix];
                            let better = v > *o;
                            *a = if better { (iy * w + ix) as u32 } else { *a };
                            *o = if better { v } else { *o };
                            ix += s;
                        }
                    }
                }
            }
        }
    }
    (out, arg)
}

/// Backward max pooling.
pub fn maxpool_backward(x_shape: &[usize], geom: ConvGeom, arg: &[u32], dout: &Tensor) -> Tensor {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let mut dx = Tensor::zeros(x_shape);
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let obase = (i * c + ch) * hout * wout;
            for o in 0..hout * wout {
                dx.data_mut()[base + arg[obase + o] as usize] += dout.data()[obase + o];
            }
        }
    }
    dx
}

/// Forward average pooling (padding excluded from the divisor, matching
/// `count_include_pad=False`).
pub fn avgpool_forward(x: &Tensor, geom: ConvGeom) -> Tensor {
    let (n, c, h, w) = shape4(x);
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let mut out = Tensor::zeros(&[n, c, hout, wout]);
    let (s, pad, k) = (geom.stride, geom.pad, geom.k);
    // Per-position reciprocal valid-count table, shared by every (n, c)
    // plane: the count factorizes as (#valid ky) * (#valid kx).
    let mut cnt_y = vec![0u32; hout];
    let mut cnt_x = vec![0u32; wout];
    for kk in 0..k {
        let (lo, hi) = tap_range(kk, pad, s, h, hout);
        for cy in &mut cnt_y[lo..hi] {
            *cy += 1;
        }
        let (lo, hi) = tap_range(kk, pad, s, w, wout);
        for cx in &mut cnt_x[lo..hi] {
            *cx += 1;
        }
    }
    let mut inv_cnt = vec![0.0f32; hout * wout];
    for oy in 0..hout {
        for ox in 0..wout {
            inv_cnt[oy * wout + ox] = 1.0 / (cnt_y[oy] * cnt_x[ox]).max(1) as f32;
        }
    }
    // Tap-outer accumulate, then one scale pass by the count table.
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let xc = &x.data()[base..base + h * w];
            let obase = (i * c + ch) * hout * wout;
            let oc = &mut out.data_mut()[obase..obase + hout * wout];
            for ky in 0..k {
                let (oy_lo, oy_hi) = tap_range(ky, pad, s, h, hout);
                for kx in 0..k {
                    let (lo, hi) = tap_range(kx, pad, s, w, wout);
                    if hi == lo {
                        continue;
                    }
                    let x0 = lo * s + kx - pad;
                    for oy in oy_lo..oy_hi {
                        let iy = oy * s + ky - pad;
                        let xrow = &xc[iy * w..(iy + 1) * w];
                        let orow = &mut oc[oy * wout + lo..oy * wout + hi];
                        if s == 1 {
                            for (o, xv) in orow.iter_mut().zip(&xrow[x0..x0 + (hi - lo)]) {
                                *o += *xv;
                            }
                        } else {
                            for (o, xv) in orow.iter_mut().zip(xrow[x0..].iter().step_by(s)) {
                                *o += *xv;
                            }
                        }
                    }
                }
            }
            for (o, iv) in oc.iter_mut().zip(&inv_cnt) {
                *o *= *iv;
            }
        }
    }
    out
}

/// Backward average pooling.
pub fn avgpool_backward(x_shape: &[usize], geom: ConvGeom, dout: &Tensor) -> Tensor {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let hout = geom.out_dim(h);
    let wout = geom.out_dim(w);
    let mut dx = Tensor::zeros(x_shape);
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let obase = (i * c + ch) * hout * wout;
            for oy in 0..hout {
                for ox in 0..wout {
                    // Recompute the valid-count (cheap) to divide gradient.
                    let mut cnt = 0u32;
                    for ky in 0..geom.k {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..geom.k {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if ix >= 0 && (ix as usize) < w {
                                cnt += 1;
                            }
                        }
                    }
                    let g = dout.data()[obase + oy * wout + ox] / cnt.max(1) as f32;
                    for ky in 0..geom.k {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..geom.k {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if ix >= 0 && (ix as usize) < w {
                                dx.data_mut()[base + iy as usize * w + ix as usize] += g;
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Extracts `(n, c, h, w)` from a 4-D tensor.
///
/// # Panics
///
/// Panics if the tensor is not 4-D.
pub fn shape4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected NCHW tensor, got {:?}", s);
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct (non-im2col) convolution — the oracle the GEMM-lowered
    /// path is checked against.
    fn conv_naive(x: &Tensor, wt: &Tensor, g: ConvGeom) -> Tensor {
        let (n, cin, h, w) = shape4(x);
        let cout = wt.shape()[0];
        let k = g.k;
        let (hout, wout) = (g.out_dim(h), g.out_dim(w));
        let mut out = Tensor::zeros(&[n, cout, hout, wout]);
        for i in 0..n {
            for co in 0..cout {
                for oy in 0..hout {
                    for ox in 0..wout {
                        let mut s = 0.0f32;
                        for ci in 0..cin {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        s += x.data()
                                            [((i * cin + ci) * h + iy as usize) * w + ix as usize]
                                            * wt.data()[((co * cin + ci) * k + ky) * k + kx];
                                    }
                                }
                            }
                        }
                        out.data_mut()[((i * cout + co) * hout + oy) * wout + ox] = s;
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn conv_nonsquare_input_matches_naive() {
        let mut rng = StdRng::seed_from_u64(30);
        let x = Tensor::randn(&[2, 3, 5, 9], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
        for stride in [1, 2] {
            let g = ConvGeom::same(3, stride);
            let (y, _) = conv2d_forward(&x, &w, g);
            assert_eq!(
                y.shape(),
                &[2, 4, 5usize.div_ceil(stride), 9usize.div_ceil(stride)]
            );
            assert_close(&y, &conv_naive(&x, &w, g), "nonsquare");
        }
    }

    #[test]
    fn conv_padded_stride_two_matches_naive() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = Tensor::randn(&[1, 2, 7, 9], 1.0, &mut rng);
        for (k, pad) in [(3, 1), (3, 2), (5, 2)] {
            let w = Tensor::randn(&[3, 2, k, k], 0.5, &mut rng);
            let g = ConvGeom::new(k, 2, pad);
            let (y, _) = conv2d_forward(&x, &w, g);
            assert_close(&y, &conv_naive(&x, &w, g), "pad_stride2");
        }
    }

    #[test]
    fn conv_1x1_kernel_matches_naive() {
        let mut rng = StdRng::seed_from_u64(32);
        let x = Tensor::randn(&[2, 5, 4, 6], 1.0, &mut rng);
        let w = Tensor::randn(&[7, 5, 1, 1], 0.5, &mut rng);
        for stride in [1, 2] {
            let g = ConvGeom::new(1, stride, 0);
            let (y, _) = conv2d_forward(&x, &w, g);
            assert_close(&y, &conv_naive(&x, &w, g), "1x1");
        }
    }

    #[test]
    fn im2col_1x1_stride1_is_identity() {
        let mut rng = StdRng::seed_from_u64(33);
        let x = Tensor::randn(&[1, 3, 4, 5], 1.0, &mut rng);
        let g = ConvGeom::new(1, 1, 0);
        let mut col = vec![0.0f32; x.len()];
        im2col::<false>(x.data(), 3, 4, 5, g, 4, 5, &mut col);
        assert_eq!(col, x.data());
        let mut back = vec![0.0f32; x.len()];
        col2im_acc(&col, 3, 4, 5, g, 4, 5, &mut back);
        assert_eq!(back, x.data());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// col2im is the adjoint of im2col: `<im2col(x), y> == <x, col2im(y)>`
        /// for every geometry — the round-trip identity the conv backward
        /// pass relies on.
        #[test]
        fn im2col_col2im_adjoint(
            seed in 0u64..1000,
            c in 1usize..4,
            h in 2usize..8,
            w in 2usize..8,
            k in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..3,
        ) {
            prop_assume!(k <= h + 2 * pad && k <= w + 2 * pad);
            let g = ConvGeom::new(k, stride, pad);
            let (hout, wout) = (g.out_dim(h), g.out_dim(w));
            prop_assume!(hout > 0 && wout > 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::randn(&[1, c, h, w], 1.0, &mut rng);
            let y = Tensor::randn(&[1, c * k * k, hout, wout], 1.0, &mut rng);
            let mut col = vec![0.0f32; c * k * k * hout * wout];
            im2col::<false>(x.data(), c, h, w, g, hout, wout, &mut col);
            let mut back = vec![0.0f32; c * h * w];
            col2im_acc(y.data(), c, h, w, g, hout, wout, &mut back);
            let lhs: f64 = col.iter().zip(y.data()).map(|(a, b)| (a * b) as f64).sum();
            let rhs: f64 = x.data().iter().zip(&back).map(|(a, b)| (a * b) as f64).sum();
            prop_assert!(
                (lhs - rhs).abs() <= 1e-4 * (1.0 + lhs.abs()),
                "adjoint identity violated: {lhs} vs {rhs}"
            );
        }

        /// The GEMM-lowered forward matches direct convolution on random
        /// geometries (non-square, padded, strided, 1x1 kernels).
        #[test]
        fn conv_forward_matches_naive_property(
            seed in 0u64..1000,
            cin in 1usize..4,
            cout in 1usize..4,
            h in 3usize..8,
            w in 3usize..8,
            k in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
        ) {
            let g = ConvGeom::new(k, stride, pad);
            let (hout, wout) = (g.out_dim(h), g.out_dim(w));
            prop_assume!(hout > 0 && wout > 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::randn(&[2, cin, h, w], 1.0, &mut rng);
            let wt = Tensor::randn(&[cout, cin, k, k], 0.5, &mut rng);
            let (y, _) = conv2d_forward(&x, &wt, g);
            let expect = conv_naive(&x, &wt, g);
            for (i, (a, b)) in y.data().iter().zip(expect.data()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                    "conv[{i}]: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn geom_out_dims() {
        assert_eq!(ConvGeom::same(3, 1).out_dim(16), 16);
        assert_eq!(ConvGeom::same(3, 2).out_dim(16), 8);
        assert_eq!(ConvGeom::same(5, 1).out_dim(16), 16);
        assert_eq!(ConvGeom::new(2, 2, 0).out_dim(16), 8);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weight reproduces the input.
        let x = Tensor::from_vec(&[1, 2, 2, 2], (0..8).map(|v| v as f32).collect());
        let mut w = Tensor::zeros(&[2, 2, 1, 1]);
        w.data_mut()[0] = 1.0; // out0 <- in0
        w.data_mut()[3] = 1.0; // out1 <- in1
        let (y, _) = conv2d_forward(&x, &w, ConvGeom::new(1, 1, 0));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_values() {
        // 3x3 all-ones kernel over a constant image = count of valid pixels.
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let (y, _) = conv2d_forward(&x, &w, ConvGeom::same(3, 1));
        // Center sees 9 pixels; corners see 4; edges see 6.
        assert_eq!(y.data()[4], 9.0);
        assert_eq!(y.data()[0], 4.0);
        assert_eq!(y.data()[1], 6.0);
    }

    #[test]
    fn conv_stride_two_shape() {
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.1, &mut rng);
        let (y, _) = conv2d_forward(&x, &w, ConvGeom::same(3, 2));
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn dwconv_matches_grouped_conv_semantics() {
        // Depthwise with a kernel that is identity at center = input.
        let x = Tensor::from_vec(&[1, 2, 3, 3], (0..18).map(|v| v as f32).collect());
        let mut w = Tensor::zeros(&[2, 3, 3]);
        w.data_mut()[4] = 1.0;
        w.data_mut()[9 + 4] = 1.0;
        let y = dwconv2d_forward(&x, &w, ConvGeom::same(3, 1));
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn maxpool_simple() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let (y, arg) = maxpool_forward(&x, ConvGeom::new(2, 2, 0));
        assert_eq!(y.data(), &[5.0]);
        assert_eq!(arg, vec![1]);
        let dx = maxpool_backward(
            &[1, 1, 2, 2],
            ConvGeom::new(2, 2, 0),
            &arg,
            &Tensor::ones(&[1, 1, 1, 1]),
        );
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_excludes_padding() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = avgpool_forward(&x, ConvGeom::same(3, 1));
        // All outputs must be exactly 1.0 because padding is excluded.
        for v in y.data() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn avgpool_backward_distributes() {
        let shape = [1, 1, 2, 2];
        let dout = Tensor::ones(&[1, 1, 1, 1]);
        let dx = avgpool_backward(&shape, ConvGeom::new(2, 2, 0), &dout);
        for v in dx.data() {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    /// Finite-difference check of the full conv2d backward pass.
    #[test]
    fn conv_backward_finite_difference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::randn(&[2, 3, 5, 5], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
        let g = ConvGeom::same(3, 2);
        let loss = |x: &Tensor, w: &Tensor| conv2d_forward(x, w, g).0.sum();
        let (y, cols) = conv2d_forward(&x, &w, g);
        let dout = Tensor::ones(y.shape());
        let (dx, dw) = conv2d_backward(&x, &w, g, &cols, &dout);
        let eps = 1e-2;
        for idx in [0usize, 7, 33, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dx[{idx}]: fd {num} vs {}",
                dx.data()[idx]
            );
        }
        for idx in [0usize, 5, w.len() - 1] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dw[{idx}]: fd {num} vs {}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn dwconv_backward_finite_difference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 3, 3], 0.5, &mut rng);
        let g = ConvGeom::same(3, 1);
        let y = dwconv2d_forward(&x, &w, g);
        let dout = Tensor::ones(y.shape());
        let (dx, dw) = dwconv2d_backward(&x, &w, g, &dout);
        let loss = |x: &Tensor, w: &Tensor| dwconv2d_forward(x, w, g).sum();
        let eps = 1e-2;
        for idx in [0usize, 9, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()));
        }
        for idx in [0usize, 8, w.len() - 1] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.data()[idx]).abs() < 0.05 * (1.0 + num.abs()));
        }
    }
}
