//! Symmetric int8 quantization and exact integer GEMM for low-precision
//! HyperNet candidate scoring (DESIGN.md §9).
//!
//! ## Scheme
//!
//! * **Weights** — per-output-channel (per-row) symmetric int8:
//!   `scale[i] = max_abs(row_i) / 127` (`1.0` for an all-zero row),
//!   `q = round(w / scale)` in `[-127, 127]`.
//! * **Activations** — per-tensor symmetric scale with an unsigned-8
//!   zero point of 128: `q = clamp(round(x / s) + 128, 0, 255)`,
//!   `s = max_abs / 127`. The u8 domain feeds `dpbusd`-style u8 x i8
//!   vector dot instructions directly; padding writes the zero point
//!   (128), and a fused ReLU is `max(q, 128)`.
//! * **GEMM** — `c[i][j] = sum_k qw[i][k] * (qx[k][j] - 128)` with exact
//!   `i32` accumulation, computed as the raw u8 x i8 dot minus the
//!   precomputed correction `128 * sum_k qw[i][k]`. The worst case
//!   (`k = 576` here) peaks below `10^7`, far from `i32` overflow.
//! * **Dequantization** — `c_f32 = c_i32 * scale[i] * s`.
//!
//! Because every path accumulates the same integers, the AVX-VNNI
//! kernel and the scalar fallback are bit-identical — the [`QuantTier`]
//! dispatch (runtime-detected, overridable like the f32
//! [`SimdTier`](crate::matmul::SimdTier)) is purely a speed choice.

use crate::conv::ConvGeom;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Instruction tier the int8 GEMM dispatches to at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantTier {
    /// 256-bit AVX-VNNI `dpbusd` (4-deep u8 x i8 dot, 32 MACs per
    /// instruction), runtime-detected.
    Vnni,
    /// Portable scalar `i32` accumulation.
    Scalar,
}

impl std::fmt::Display for QuantTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuantTier::Vnni => "avx-vnni",
            QuantTier::Scalar => "scalar",
        })
    }
}

/// `0` = auto (detected), `1` = force scalar.
static QUANT_FORCE: AtomicUsize = AtomicUsize::new(0);
static QUANT_DETECTED: OnceLock<QuantTier> = OnceLock::new();

fn detect_quant_tier() -> QuantTier {
    #[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
    {
        if std::arch::is_x86_feature_detected!("avxvnni") {
            return QuantTier::Vnni;
        }
    }
    QuantTier::Scalar
}

/// Overrides the int8 GEMM tier (`Some(Scalar)` forces the portable
/// kernel; `None` restores detection). Requests are clamped to what the
/// CPU supports. Results are bit-identical either way; this exists for
/// benches and the dispatch tests.
pub fn set_quant_tier(tier: Option<QuantTier>) {
    QUANT_FORCE.store(
        match tier {
            Some(QuantTier::Scalar) => 1,
            _ => 0,
        },
        Ordering::Relaxed,
    );
}

/// The int8 GEMM tier the next call will use.
pub fn quant_tier() -> QuantTier {
    if QUANT_FORCE.load(Ordering::Relaxed) == 1 {
        return QuantTier::Scalar;
    }
    *QUANT_DETECTED.get_or_init(detect_quant_tier)
}

/// The u8 activation zero point.
pub const ZERO_POINT: i32 = 128;

/// A weight matrix quantized to per-row symmetric int8, with the depth
/// padded to a multiple of 4 (the `dpbusd` quad) and the per-row sums
/// the zero-point correction needs.
#[derive(Debug, Clone)]
pub struct QuantWeights {
    rows: usize,
    cols: usize,
    /// Depth quads: `cols.div_ceil(4)`.
    kq: usize,
    /// `rows x kq*4`, zero-padded past `cols`.
    q: Vec<i8>,
    /// Per-row dequantization scales.
    scales: Vec<f32>,
    /// Per-row `sum_k q[i][k]` (padding contributes nothing).
    row_sums: Vec<i32>,
}

impl QuantWeights {
    /// Quantizes a row-major `rows x cols` f32 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != rows * cols`.
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(w.len(), rows * cols, "weight length");
        let kq = cols.div_ceil(4).max(1);
        let mut q = vec![0i8; rows * kq * 4];
        let mut scales = vec![1.0f32; rows];
        let mut row_sums = vec![0i32; rows];
        for i in 0..rows {
            let row = &w[i * cols..(i + 1) * cols];
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            scales[i] = scale;
            let dst = &mut q[i * kq * 4..i * kq * 4 + cols];
            let mut sum = 0i32;
            for (d, v) in dst.iter_mut().zip(row) {
                let qi = (v / scale).round().clamp(-127.0, 127.0) as i32;
                sum += qi;
                *d = qi as i8;
            }
            row_sums[i] = sum;
        }
        QuantWeights {
            rows,
            cols,
            kq,
            q,
            scales,
            row_sums,
        }
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical depth (columns before padding).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

/// Quantizes a tensor of activations to u8 with zero point
/// [`ZERO_POINT`] and a per-tensor symmetric scale, returning the scale.
/// With `relu = true`, `max(0, x)` is fused into the rounding (the scale
/// then covers only the positive range).
///
/// Rounding is round-half-to-even (ties land on an exactly
/// representable grid point either way, so the round-trip bound is the
/// same as half-away-from-zero). This function sits on the per-batch
/// hot path of int8 scoring, so both passes (max reduction and
/// round/clamp/narrow) are written to auto-vectorize — see the inline
/// comments for the tricks that make LLVM cooperate.
pub fn quantize_activations(x: &[f32], relu: bool, out: &mut Vec<u8>) -> f32 {
    // Lane-parallel max reduction: a plain `fold` is a sequential
    // dependency chain the compiler must not reorder; 16 independent
    // lanes vectorize.
    const L: usize = 16;
    let mut lanes = [0.0f32; L];
    let chunks = x.chunks_exact(L);
    let tail = chunks.remainder();
    if relu {
        for ch in chunks {
            for (l, v) in lanes.iter_mut().zip(ch) {
                *l = l.max(*v);
            }
        }
    } else {
        for ch in chunks {
            for (l, v) in lanes.iter_mut().zip(ch) {
                *l = l.max(v.abs());
            }
        }
    }
    let mut max_abs = lanes.iter().fold(0.0f32, |m, v| m.max(*v));
    max_abs = tail
        .iter()
        .fold(max_abs, |m, v| m.max(if relu { *v } else { v.abs() }));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    out.clear();
    out.resize(x.len(), 0);
    let inv = 1.0 / scale;
    // Round + clamp + narrow via the classic bias trick: adding
    // 1.5 * 2^23 forces `v * inv + 128` onto the integer grid (ulp = 1
    // there, round-to-nearest-even), the clamp pins the biased value to
    // [MAGIC, MAGIC + 255], and the quantized byte is then exactly the
    // low mantissa byte. This avoids Rust's saturating float -> u8 cast,
    // which LLVM refuses to vectorize; `v * inv` is bounded by 127 by
    // construction of `inv`, so the grid assumption always holds.
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let bias = MAGIC + ZERO_POINT as f32;
    let (lo, hi) = if relu {
        (bias, MAGIC + 255.0)
    } else {
        (MAGIC, MAGIC + 255.0)
    };
    if relu {
        for (o, v) in out.iter_mut().zip(x) {
            let r = (v.max(0.0) * inv + bias).clamp(lo, hi);
            *o = (r.to_bits() & 0xff) as u8;
        }
    } else {
        for (o, v) in out.iter_mut().zip(x) {
            let r = (v * inv + bias).clamp(lo, hi);
            *o = (r.to_bits() & 0xff) as u8;
        }
    }
    scale
}

/// [`quantize_activations`] with a channel-major output layout: the
/// input is NCHW `[n, c, hw]` and byte `(i, ch, j)` is written to
/// `out[(ch*n + i)*hw + j]`, i.e. `out` is the `[c, n*hw]` matrix whose
/// row `ch` holds channel `ch` of every sample. That row layout *is*
/// the im2col matrix of a 1x1 stride-1 conv (so those convs skip
/// lowering entirely), and it lets the k x k lowering move whole
/// `n*hw` channel rows at a time.
///
/// Same scale, rounding and fused-ReLU semantics as
/// [`quantize_activations`]; bytes are identical up to the permutation.
pub fn quantize_activations_cm(
    x: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    relu: bool,
    out: &mut Vec<u8>,
) -> f32 {
    assert_eq!(x.len(), n * c * hw, "activation length");
    const L: usize = 16;
    let mut lanes = [0.0f32; L];
    let chunks = x.chunks_exact(L);
    let tail = chunks.remainder();
    if relu {
        for ch in chunks {
            for (l, v) in lanes.iter_mut().zip(ch) {
                *l = l.max(*v);
            }
        }
    } else {
        for ch in chunks {
            for (l, v) in lanes.iter_mut().zip(ch) {
                *l = l.max(v.abs());
            }
        }
    }
    let mut max_abs = lanes.iter().fold(0.0f32, |m, v| m.max(*v));
    max_abs = tail
        .iter()
        .fold(max_abs, |m, v| m.max(if relu { *v } else { v.abs() }));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    out.clear();
    out.resize(x.len(), 0);
    let inv = 1.0 / scale;
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let bias = MAGIC + ZERO_POINT as f32;
    let (lo, hi) = if relu {
        (bias, MAGIC + 255.0)
    } else {
        (MAGIC, MAGIC + 255.0)
    };
    for i in 0..n {
        for ch in 0..c {
            let src = &x[(i * c + ch) * hw..(i * c + ch + 1) * hw];
            let dst = &mut out[(ch * n + i) * hw..(ch * n + i + 1) * hw];
            if relu {
                for (o, v) in dst.iter_mut().zip(src) {
                    let r = (v.max(0.0) * inv + bias).clamp(lo, hi);
                    *o = (r.to_bits() & 0xff) as u8;
                }
            } else {
                for (o, v) in dst.iter_mut().zip(src) {
                    let r = (v * inv + bias).clamp(lo, hi);
                    *o = (r.to_bits() & 0xff) as u8;
                }
            }
        }
    }
    scale
}

/// Dequantizes one value produced by [`gemm_q`]:
/// `c_f32 = c_i32 * w_scale * x_scale`.
#[inline(always)]
pub fn dequantize(acc: i32, w_scale: f32, x_scale: f32) -> f32 {
    acc as f32 * (w_scale * x_scale)
}

thread_local! {
    /// Per-thread 4-deep activation packing scratch for the VNNI path.
    static QPACK_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Int8 GEMM: overwrites `c` (`rows x n`) with
/// `c[i][j] = sum_k qw[i][k] * (x[k][j] - 128)` where `x` is the
/// row-major `cols x n` u8 activation matrix. Accumulation is exact
/// `i32`, so every tier returns identical bits.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths do not match.
pub fn gemm_q(w: &QuantWeights, x: &[u8], n: usize, c: &mut [i32]) {
    debug_assert_eq!(x.len(), w.cols * n);
    debug_assert_eq!(c.len(), w.rows * n);
    if n == 0 || w.rows == 0 {
        return;
    }
    match quant_tier() {
        #[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
        QuantTier::Vnni => {
            QPACK_SCRATCH.with(|scratch| {
                let bp = &mut *scratch.borrow_mut();
                pack_activations_quads(x, w.cols, w.kq, n, bp);
                // Sound: the tier is only `Vnni` when runtime detection
                // confirmed AVX-VNNI, and the packing above sizes the
                // operands to the kernel's contract.
                #[allow(unsafe_code)]
                unsafe {
                    crate::simd::gemm_u8i8_avxvnni(w.rows, w.kq, n, &w.q, bp, c)
                };
            });
            for i in 0..w.rows {
                let corr = ZERO_POINT * w.row_sums[i];
                for v in &mut c[i * n..(i + 1) * n] {
                    *v -= corr;
                }
            }
        }
        _ => gemm_q_scalar(w, x, n, c),
    }
}

/// Packs the `cols x n` u8 matrix 4-deep for the VNNI kernel: byte
/// `out[q * n * 4 + j * 4 + t]` is `x[(4q + t) * n + j]`, zero-padded
/// past `cols` (the matching weight bytes are zero, so the pad value is
/// irrelevant — zero keeps the buffer deterministic).
#[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
fn pack_activations_quads(x: &[u8], cols: usize, kq: usize, n: usize, out: &mut Vec<u8>) {
    out.clear();
    out.resize(kq * n * 4, 0);
    // Full quads interleave four source rows in one pass
    // (`dst[4j + t] = row_t[j]`), which vectorizes to byte-unpack
    // shuffles; only the final quad can be ragged (`cols % 4 != 0`) and
    // takes the scalar path.
    let full = cols / 4;
    for q in 0..full {
        let dst = &mut out[q * n * 4..(q + 1) * n * 4];
        let base = q * 4 * n;
        let (r0, rest) = x[base..base + 4 * n].split_at(n);
        let (r1, rest) = rest.split_at(n);
        let (r2, r3) = rest.split_at(n);
        for (j, d) in dst.chunks_exact_mut(4).enumerate() {
            d[0] = r0[j];
            d[1] = r1[j];
            d[2] = r2[j];
            d[3] = r3[j];
        }
    }
    for q in full..kq {
        let dst = &mut out[q * n * 4..(q + 1) * n * 4];
        for t in 0..4 {
            let kk = q * 4 + t;
            if kk >= cols {
                break;
            }
            let src = &x[kk * n..(kk + 1) * n];
            for (j, v) in src.iter().enumerate() {
                dst[j * 4 + t] = *v;
            }
        }
    }
}

/// Portable int8 GEMM: a branchy `ikj` loop over the raw u8 operand with
/// the same zero-point correction, bit-identical to the VNNI kernel.
fn gemm_q_scalar(w: &QuantWeights, x: &[u8], n: usize, c: &mut [i32]) {
    let cols = w.cols;
    for i in 0..w.rows {
        let wrow = &w.q[i * w.kq * 4..i * w.kq * 4 + cols];
        let crow = &mut c[i * n..(i + 1) * n];
        crow.fill(0);
        for (kk, &av) in wrow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = &x[kk * n..(kk + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * *bv as i32;
            }
        }
        let corr = ZERO_POINT * w.row_sums[i];
        for v in crow.iter_mut() {
            *v -= corr;
        }
    }
}

/// Lowers one u8 sample `x[c, h, w]` into columns of a (possibly
/// batched) column matrix: element `(row, j)` of the sample's
/// `[c*k*k, hout*wout]` im2col block is written to
/// `col[row * col_stride + col_off + j]`. Padding writes the u8 zero
/// point (128), which the GEMM's correction term turns into an exact
/// zero — mirroring the f32 `im2col` bit-for-bit in the quantized
/// domain.
// Like the f32 lowering routines, the full geometry is passed as
// scalars; a params struct would only obscure the BLIS-style shape.
#[allow(unsafe_code, clippy::too_many_arguments)]
pub fn im2col_u8(
    x: &[u8],
    c: usize,
    h: usize,
    w: usize,
    g: ConvGeom,
    hout: usize,
    wout: usize,
    col: &mut [u8],
    col_stride: usize,
    col_off: usize,
) {
    let k = g.k;
    let (s, pad) = (g.stride, g.pad);
    let hw_out = hout * wout;
    debug_assert!(col.len() >= (c * k * k - 1) * col_stride + col_off + hw_out);
    let zp = ZERO_POINT as u8;
    // Stride-1 "same" convs (the bulk of cell ops) admit a much cheaper
    // lowering: with `hout == h` and `wout == w`, tap `(ky, kx)`'s whole
    // `[hout, wout]` block is the source channel flat-shifted by
    // `dy*w + dx` bytes. One block-sized memcpy replaces `hout` row
    // copies; the bytes the flat shift gets wrong are exactly the
    // invalid rows (covered by the head/tail fills) and the invalid
    // wrap-around columns (covered by the per-row edge fills below).
    let flat = s == 1 && hout == h && wout == w;
    let hw = h * w;
    for ch in 0..c {
        let xc = &x[ch * h * w..(ch + 1) * h * w];
        if flat {
            for ky in 0..k {
                let dy = ky as isize - pad as isize;
                for kx in 0..k {
                    let dx = kx as isize - pad as isize;
                    let row = ((ch * k + ky) * k + kx) * col_stride + col_off;
                    let dst = &mut col[row..row + hw];
                    let shift = dy * w as isize + dx;
                    if shift >= 0 {
                        let sh = (shift as usize).min(hw);
                        dst[..hw - sh].copy_from_slice(&xc[sh..]);
                        dst[hw - sh..].fill(zp);
                    } else {
                        let sh = ((-shift) as usize).min(hw);
                        dst[..sh].fill(zp);
                        dst[sh..].copy_from_slice(&xc[..hw - sh]);
                    }
                    if dx > 0 {
                        let d = (dx as usize).min(w);
                        for r in dst.chunks_exact_mut(w) {
                            r[w - d..].fill(zp);
                        }
                    } else if dx < 0 {
                        let d = ((-dx) as usize).min(w);
                        for r in dst.chunks_exact_mut(w) {
                            r[..d].fill(zp);
                        }
                    }
                }
            }
            continue;
        }
        for ky in 0..k {
            // Valid `oy` range for this tap row: `0 <= oy*s + ky - pad < h`.
            // Rows outside it are all padding and get one contiguous fill
            // each (the tap's output block is oy-major), so the copy loop
            // below runs branch-free over fully valid input rows.
            let oy_lo = pad.saturating_sub(ky).div_ceil(s).min(hout);
            let oy_hi = (h + pad).saturating_sub(ky).div_ceil(s).clamp(oy_lo, hout);
            for kx in 0..k {
                // Same for `ox`: `0 <= ox*s + kx - pad < w`.
                let lo = pad.saturating_sub(kx).div_ceil(s).min(wout);
                let hi = (w + pad).saturating_sub(kx).div_ceil(s).clamp(lo, wout);
                let row = ((ch * k + ky) * k + kx) * col_stride + col_off;
                col[row..row + oy_lo * wout].fill(zp);
                col[row + oy_hi * wout..row + hw_out].fill(zp);
                if oy_lo == oy_hi {
                    continue;
                }
                if hi == lo {
                    col[row + oy_lo * wout..row + oy_hi * wout].fill(zp);
                    continue;
                }
                let len = hi - lo;
                let x0 = lo * s + kx - pad;
                let iy0 = oy_lo * s + ky - pad;
                if s == 1 {
                    // Raw pointers: the interior rows are tiny (`wout`
                    // bytes), so bounds-checked sub-slicing per row costs
                    // more than the copies themselves.
                    unsafe {
                        let mut src = xc.as_ptr().add(iy0 * w + x0);
                        let mut dst = col.as_mut_ptr().add(row + oy_lo * wout);
                        for _ in oy_lo..oy_hi {
                            if lo > 0 {
                                std::ptr::write_bytes(dst, zp, lo);
                            }
                            std::ptr::copy_nonoverlapping(src, dst.add(lo), len);
                            if hi < wout {
                                std::ptr::write_bytes(dst.add(hi), zp, wout - hi);
                            }
                            src = src.add(w);
                            dst = dst.add(wout);
                        }
                    }
                } else {
                    for (oy, iy) in (oy_lo..oy_hi).zip((iy0..).step_by(s)) {
                        let dst = &mut col[row + oy * wout..row + (oy + 1) * wout];
                        dst[..lo].fill(zp);
                        dst[hi..].fill(zp);
                        let xrow = &xc[iy * w..(iy + 1) * w];
                        for (d, xv) in dst[lo..hi].iter_mut().zip(xrow[x0..].iter().step_by(s)) {
                            *d = *xv;
                        }
                    }
                }
            }
        }
    }
}

/// Batched [`im2col_u8`] over the channel-major activations produced by
/// [`quantize_activations_cm`]: `x` is the `[c, n*h*w]` matrix (row `ch`
/// = channel `ch` of all `n` samples back to back) and the output is
/// the `[c*k*k, n*hout*wout]` column matrix with sample `i` occupying
/// columns `i*hout*wout..(i+1)*hout*wout`.
///
/// The layout is what makes this fast: for a stride-1 "same" conv, tap
/// `(ky, kx)` of channel `ch` is the *entire* `n*h*w` source row
/// flat-shifted by `dy*w + dx` bytes — one big memcpy per tap — because
/// every sample shifts by the same amount and sample-boundary bleed
/// lands exactly on bytes that are padding anyway (re-filled after).
/// For 1x1 stride-1 convs the column matrix equals `x` itself, so
/// callers should skip this function entirely.
#[allow(unsafe_code, clippy::too_many_arguments)]
pub fn im2col_u8_batch(
    x: &[u8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    g: ConvGeom,
    hout: usize,
    wout: usize,
    col: &mut [u8],
) {
    let k = g.k;
    let (s, pad) = (g.stride, g.pad);
    let hw = h * w;
    let nhw = n * hw;
    let hw_out = hout * wout;
    let cols_n = n * hw_out;
    debug_assert!(x.len() >= c * nhw);
    debug_assert!(col.len() >= c * k * k * cols_n);
    let zp = ZERO_POINT as u8;
    let flat = s == 1 && hout == h && wout == w;
    for ch in 0..c {
        let xc = &x[ch * nhw..(ch + 1) * nhw];
        for ky in 0..k {
            let oy_lo = pad.saturating_sub(ky).div_ceil(s).min(hout);
            let oy_hi = (h + pad).saturating_sub(ky).div_ceil(s).clamp(oy_lo, hout);
            for kx in 0..k {
                let lo = pad.saturating_sub(kx).div_ceil(s).min(wout);
                let hi = (w + pad).saturating_sub(kx).div_ceil(s).clamp(lo, wout);
                let row = ((ch * k + ky) * k + kx) * cols_n;
                let trow = &mut col[row..row + cols_n];
                if flat {
                    let dy = ky as isize - pad as isize;
                    let dx = kx as isize - pad as isize;
                    let shift = dy * w as isize + dx;
                    let sh = (shift.unsigned_abs()).min(nhw);
                    if sh >= hw {
                        // The shift spans a whole sample: every output row
                        // of this tap is out of range (degenerate h).
                        trow.fill(zp);
                        continue;
                    }
                    // One shifted copy of the whole channel row. Bytes
                    // that bled across a sample boundary are exactly the
                    // per-sample head/tail padding re-filled just below.
                    if shift >= 0 {
                        trow[..nhw - sh].copy_from_slice(&xc[sh..]);
                        if sh > 0 {
                            for blk in trow.chunks_exact_mut(hw) {
                                blk[hw - sh..].fill(zp);
                            }
                        }
                    } else {
                        trow[sh..].copy_from_slice(&xc[..nhw - sh]);
                        if sh > 0 {
                            for blk in trow.chunks_exact_mut(hw) {
                                blk[..sh].fill(zp);
                            }
                        }
                    }
                    if dx > 0 {
                        let d = (dx as usize).min(w);
                        for r in trow.chunks_exact_mut(w) {
                            r[w - d..].fill(zp);
                        }
                    } else if dx < 0 {
                        let d = ((-dx) as usize).min(w);
                        for r in trow.chunks_exact_mut(w) {
                            r[..d].fill(zp);
                        }
                    }
                    continue;
                }
                if hi == lo {
                    // No valid columns at all: the whole tap row is padding.
                    trow.fill(zp);
                    continue;
                }
                let len = hi - lo;
                let x0 = lo * s + kx - pad;
                let iy0 = oy_lo * s + ky - pad;
                for (i, dst) in trow.chunks_exact_mut(hw_out).enumerate() {
                    let xs = &xc[i * hw..(i + 1) * hw];
                    dst[..oy_lo * wout].fill(zp);
                    dst[oy_hi * wout..].fill(zp);
                    if oy_lo == oy_hi {
                        continue;
                    }
                    if s == 1 {
                        unsafe {
                            let mut src = xs.as_ptr().add(iy0 * w + x0);
                            let mut d = dst.as_mut_ptr().add(oy_lo * wout);
                            for _ in oy_lo..oy_hi {
                                if lo > 0 {
                                    std::ptr::write_bytes(d, zp, lo);
                                }
                                std::ptr::copy_nonoverlapping(src, d.add(lo), len);
                                if hi < wout {
                                    std::ptr::write_bytes(d.add(hi), zp, wout - hi);
                                }
                                src = src.add(w);
                                d = d.add(wout);
                            }
                        }
                    } else {
                        for (oy, iy) in (oy_lo..oy_hi).zip((iy0..).step_by(s)) {
                            let drow = &mut dst[oy * wout..(oy + 1) * wout];
                            drow[..lo].fill(zp);
                            drow[hi..].fill(zp);
                            let xrow = &xs[iy * w..(iy + 1) * w];
                            for (d, xv) in drow[lo..hi].iter_mut().zip(xrow[x0..].iter().step_by(s))
                            {
                                *d = *xv;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (((i * 37 + 11) % 29) as f32 - 14.0) * scale)
            .collect()
    }

    /// Naive oracle for `gemm_q`.
    fn naive_q(w: &QuantWeights, x: &[u8], n: usize) -> Vec<i32> {
        let mut c = vec![0i32; w.rows * n];
        for i in 0..w.rows {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..w.cols {
                    let qw = w.q[i * w.kq * 4 + kk] as i32;
                    let qx = x[kk * n + j] as i32 - ZERO_POINT;
                    acc += qw * qx;
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn weight_quantization_round_trip_bound() {
        let (rows, cols) = (7, 33);
        let w = pseudo(rows * cols, 0.17);
        let qw = QuantWeights::quantize(&w, rows, cols);
        for i in 0..rows {
            let s = qw.scales()[i];
            for kk in 0..cols {
                let deq = qw.q[i * qw.kq * 4 + kk] as f32 * s;
                let err = (w[i * cols + kk] - deq).abs();
                assert!(err <= s * 0.5 + 1e-6, "w[{i},{kk}] err {err} scale {s}");
            }
        }
    }

    #[test]
    fn zero_row_gets_unit_scale() {
        let w = vec![0.0f32; 8];
        let qw = QuantWeights::quantize(&w, 2, 4);
        assert_eq!(qw.scales(), &[1.0, 1.0]);
        assert!(qw.q.iter().all(|&v| v == 0));
    }

    #[test]
    fn activation_round_trip_bound() {
        let x = pseudo(301, 0.03);
        let mut q = Vec::new();
        let s = quantize_activations(&x, false, &mut q);
        for (v, qv) in x.iter().zip(&q) {
            let deq = (*qv as i32 - ZERO_POINT) as f32 * s;
            assert!((v - deq).abs() <= s * 0.5 + 1e-6);
        }
    }

    #[test]
    fn relu_fusion_matches_relu_then_quantize() {
        let x = pseudo(97, 0.05);
        let relued: Vec<f32> = x.iter().map(|v| v.max(0.0)).collect();
        let (mut qa, mut qb) = (Vec::new(), Vec::new());
        let sa = quantize_activations(&x, true, &mut qa);
        let sb = quantize_activations(&relued, false, &mut qb);
        assert_eq!(sa, sb);
        assert_eq!(qa, qb);
    }

    #[test]
    fn gemm_q_matches_naive_all_tiers() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (6, 27, 37),
            (16, 147, 64),
            (5, 64, 100),
        ] {
            let wf = pseudo(m * k, 0.11);
            let xf = pseudo(k * n, 0.07);
            let w = QuantWeights::quantize(&wf, m, k);
            let mut x = Vec::new();
            quantize_activations(&xf, false, &mut x);
            let want = naive_q(&w, &x, n);
            let mut auto = vec![0i32; m * n];
            gemm_q(&w, &x, n, &mut auto);
            assert_eq!(auto, want, "auto tier ({m},{k},{n})");
            set_quant_tier(Some(QuantTier::Scalar));
            let mut scalar = vec![0i32; m * n];
            gemm_q(&w, &x, n, &mut scalar);
            set_quant_tier(None);
            assert_eq!(scalar, want, "scalar tier ({m},{k},{n})");
        }
    }

    #[test]
    fn im2col_u8_1x1_identity_and_padding() {
        // 1x1 stride-1: identity copy.
        let x: Vec<u8> = (0..24).map(|v| (v * 3 + 100) as u8).collect();
        let g = ConvGeom::new(1, 1, 0);
        let mut col = vec![0u8; 24];
        im2col_u8(&x, 2, 3, 4, g, 3, 4, &mut col, 12, 0);
        assert_eq!(col, x);
        // 3x3 same-pad writes the zero point into the border.
        let g = ConvGeom::same(3, 1);
        let mut col = vec![0u8; 2 * 9 * 12];
        im2col_u8(&x, 2, 3, 4, g, 3, 4, &mut col, 12, 0);
        // Top-left kernel tap at output (0,0) reads input (-1,-1): padding.
        assert_eq!(col[0], ZERO_POINT as u8);
    }
}
