//! Optimizers and learning-rate schedules.

use crate::param::ParamStore;
use crate::tensor::Tensor;
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Stochastic gradient descent with momentum and decoupled L2 weight decay,
/// matching the paper's HyperNet training recipe (momentum 0.9, L2 4e-5).
///
/// # Examples
///
/// ```
/// use yoso_tensor::{ParamStore, Sgd, Tensor};
/// let mut store = ParamStore::new();
/// let id = store.add(Tensor::ones(&[2]));
/// store.accumulate_grad(id, &Tensor::ones(&[2]));
/// let mut opt = Sgd::new(0.1, 0.9, 0.0);
/// opt.step(&mut store);
/// assert!((store.value(id).data()[0] - 0.9).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Current learning rate; may be reassigned each step by a schedule.
    pub lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update using the gradients currently in `store`, then
    /// leaves the gradients untouched (call [`ParamStore::zero_grads`]).
    pub fn step(&mut self, store: &mut ParamStore) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        store.for_each_mut(|i, value, grad| {
            if velocity.len() <= i {
                velocity.resize_with(i + 1, || Tensor::zeros(value.shape()));
            }
            if velocity[i].shape() != value.shape() {
                velocity[i] = Tensor::zeros(value.shape());
            }
            let v = &mut velocity[i];
            for ((vv, g), w) in v.data_mut().iter_mut().zip(grad.data()).zip(value.data()) {
                *vv = mu * *vv + g + wd * w;
            }
            value.axpy_in_place(-lr, v);
        });
    }
}

/// Adam optimizer, used for the RL controller (paper: lr 0.0035).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Current learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam update using the gradients currently in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        store.for_each_mut(|i, value, grad| {
            if m.len() <= i {
                m.resize_with(i + 1, || Tensor::zeros(value.shape()));
                v.resize_with(i + 1, || Tensor::zeros(value.shape()));
            }
            if m[i].shape() != value.shape() {
                m[i] = Tensor::zeros(value.shape());
                v[i] = Tensor::zeros(value.shape());
            }
            let (mi, vi) = (&mut m[i], &mut v[i]);
            for (((mm, vv), g), w) in mi
                .data_mut()
                .iter_mut()
                .zip(vi.data_mut().iter_mut())
                .zip(grad.data())
                .zip(value.data_mut())
            {
                *mm = b1 * *mm + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let mhat = *mm / bc1;
                let vhat = *vv / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

// Adam's moments and step counter live in private fields, so its
// Snapshot impl must sit in this module. All state is persisted: the
// bias-correction terms depend on `t`, and the moments on `m`/`v`, so a
// restored optimizer continues the update sequence bit-identically.
impl Snapshot for Adam {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.beta1);
        w.put_f32(self.beta2);
        w.put_f32(self.eps);
        w.put_u64(self.t);
        w.put_usize(self.m.len());
        for t in &self.m {
            t.snapshot(w);
        }
        w.put_usize(self.v.len());
        for t in &self.v {
            t.snapshot(w);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let lr = r.take_f32()?;
        let beta1 = r.take_f32()?;
        let beta2 = r.take_f32()?;
        let eps = r.take_f32()?;
        let t = r.take_u64()?;
        let nm = r.take_usize()?;
        let m = (0..nm)
            .map(|_| Tensor::restore(r))
            .collect::<Result<Vec<_>, _>>()?;
        let nv = r.take_usize()?;
        let v = (0..nv)
            .map(|_| Tensor::restore(r))
            .collect::<Result<Vec<_>, _>>()?;
        let mut opt = Adam::with_betas(lr, beta1, beta2, eps);
        opt.t = t;
        opt.m = m;
        opt.v = v;
        Ok(opt)
    }
}

/// Cosine learning-rate decay between `lr_max` and `lr_min` over
/// `total_steps` (paper: 0.05 → 0.0001).
///
/// # Examples
///
/// ```
/// use yoso_tensor::CosineLr;
/// let sched = CosineLr::new(0.05, 0.0001, 100);
/// assert!((sched.lr(0) - 0.05).abs() < 1e-6);
/// assert!((sched.lr(100) - 0.0001).abs() < 1e-6);
/// assert!(sched.lr(50) < 0.05 && sched.lr(50) > 0.0001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineLr {
    lr_max: f32,
    lr_min: f32,
    total_steps: usize,
}

impl CosineLr {
    /// Creates a schedule. `total_steps` of zero clamps to the max rate.
    pub fn new(lr_max: f32, lr_min: f32, total_steps: usize) -> Self {
        CosineLr {
            lr_max,
            lr_min,
            total_steps,
        }
    }

    /// Learning rate at `step` (clamped to `total_steps`).
    pub fn lr(&self, step: usize) -> f32 {
        if self.total_steps == 0 {
            return self.lr_max;
        }
        let t = step.min(self.total_steps) as f32 / self.total_steps as f32;
        self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_setup() -> (ParamStore, crate::param::ParamId) {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::from_vec(&[1], vec![5.0]));
        (s, id)
    }

    /// Minimizes f(w) = w^2 by hand-computed gradient 2w.
    fn grad_step(s: &mut ParamStore, id: crate::param::ParamId) {
        s.zero_grads();
        let w = s.value(id).data()[0];
        s.accumulate_grad(id, &Tensor::from_vec(&[1], vec![2.0 * w]));
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut s, id) = quad_setup();
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..300 {
            grad_step(&mut s, id);
            opt.step(&mut s);
        }
        assert!(s.value(id).data()[0].abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (mut s, id) = quad_setup();
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            grad_step(&mut s, id);
            opt.step(&mut s);
        }
        assert!(s.value(id).data()[0].abs() < 1e-2);
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let (mut s, id) = quad_setup();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        s.zero_grads(); // zero gradient: only decay acts
        opt.step(&mut s);
        let w = s.value(id).data()[0];
        assert!((w - (5.0 - 0.1 * 0.5 * 5.0)).abs() < 1e-6);
    }

    #[test]
    fn cosine_monotone_decreasing() {
        let sched = CosineLr::new(1.0, 0.0, 10);
        let mut prev = f32::INFINITY;
        for step in 0..=10 {
            let lr = sched.lr(step);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
        // Clamps beyond the horizon.
        assert_eq!(sched.lr(50), sched.lr(10));
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut s = ParamStore::new();
        let a = s.add(Tensor::from_vec(&[1], vec![1.0]));
        let b = s.add(Tensor::from_vec(&[2], vec![2.0, -3.0]));
        let mut opt = Adam::new(0.5);
        for _ in 0..500 {
            s.zero_grads();
            let wa = s.value(a).data()[0];
            let wb: Vec<f32> = s.value(b).data().iter().map(|w| 2.0 * w).collect();
            s.accumulate_grad(a, &Tensor::from_vec(&[1], vec![2.0 * wa]));
            s.accumulate_grad(b, &Tensor::from_vec(&[2], wb));
            opt.step(&mut s);
        }
        assert!(s.value(a).data()[0].abs() < 1e-2);
        assert!(s.value(b).data().iter().all(|w| w.abs() < 1e-2));
    }
}
