//! [`Snapshot`] impls for tensors and parameter stores.
//!
//! Values round-trip bit-exactly: `f32`s are written by IEEE-754 bit
//! pattern, so a restored tensor is indistinguishable from the original.
//! Gradients are *not* persisted — every training step begins with
//! [`ParamStore::zero_grads`](crate::param::ParamStore::zero_grads), so a
//! restored store starts with zeroed accumulators, matching the state at
//! any checkpoint boundary.

use crate::param::ParamStore;
use crate::tensor::Tensor;
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

impl Snapshot for Tensor {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usizes(self.shape());
        w.put_f32s(self.data());
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let shape = r.take_usizes()?;
        let data = r.take_f32s()?;
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return Err(PersistError::Malformed(format!(
                "tensor shape {shape:?} needs {expect} elems, got {}",
                data.len()
            )));
        }
        Ok(Tensor::from_vec(&shape, data))
    }
}

impl Snapshot for ParamStore {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.param_count());
        for (_, value) in self.iter() {
            value.snapshot(w);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.take_usize()?;
        let mut store = ParamStore::new();
        for _ in 0..n {
            store.add(Tensor::restore(r)?);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn roundtrip<T: Snapshot>(v: &T) -> T {
        let mut w = ByteWriter::new();
        v.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = T::restore(&mut r).expect("restore");
        assert_eq!(r.remaining(), 0, "trailing bytes after restore");
        out
    }

    #[test]
    fn tensor_roundtrip_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[3, 4, 5], 2.0, &mut rng);
        let back = roundtrip(&t);
        assert_eq!(back.shape(), t.shape());
        for (a, b) in t.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tensor_shape_mismatch_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_usizes(&[2, 2]);
        w.put_f32s(&[1.0, 2.0, 3.0]); // 3 elems for a 4-elem shape
        let bytes = w.into_bytes();
        assert!(matches!(
            Tensor::restore(&mut ByteReader::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn param_store_roundtrip_preserves_values_and_zeroes_grads() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let a = store.add(Tensor::randn(&[4, 4], 1.0, &mut rng));
        let b = store.add(Tensor::randn(&[4], 1.0, &mut rng));
        store.accumulate_grad(a, &Tensor::ones(&[4, 4]));
        let back = roundtrip(&store);
        assert_eq!(back.param_count(), 2);
        assert_eq!(back.value(a).data(), store.value(a).data());
        assert_eq!(back.value(b).data(), store.value(b).data());
        assert!(back.grad(a).data().iter().all(|&g| g == 0.0));
    }
}
