//! Blocked SGEMM kernels: a packed, register-tiled microkernel (default)
//! plus the original branchy reference kernel for tolerance tests.
//!
//! ## Packed kernel architecture (see DESIGN.md §9)
//!
//! The hot path is a BLIS-style three-level blocking scheme:
//!
//! * **B packing** — for each `KC x NC` block of `b`, columns are packed
//!   into contiguous `KC x NR` panels so the microkernel streams them
//!   linearly regardless of the original row stride (or transposition).
//! * **A packing** — each `MR x KC` tile of `a` is packed column-major
//!   (`p`-major), so one microkernel step reads `MR` consecutive floats.
//! * **Microkernel** — an `MR x NR` register block accumulates
//!   `kc` rank-1 updates. Three implementations sit behind a runtime
//!   dispatch cached in a `OnceLock` ([`simd_tier`]): explicit AVX-512F
//!   intrinsics (one zmm per tile row), explicit AVX2+FMA (the tile as
//!   two 4-row halves), and a portable scalar loop the compiler
//!   auto-vectorizes. Detection is runtime-only — no `target-cpu` build
//!   flag is required for the fast paths.
//!
//! Packing buffers live in thread-local scratch, so steady-state GEMM
//! calls are allocation-free.
//!
//! ## Threading: a fixed task grid over `c`
//!
//! The packed path fans out over `RB`-row x `NC`-column blocks of `c`
//! (the same `NC` split the packing loop uses). Each task accumulates
//! its block in a private zero-initialised buffer over the *full* depth
//! `k`, and the buffers are added into `c` afterwards. The grid never
//! depends on the worker count and every output element is owned by
//! exactly one task, with its `k` terms accumulated in increasing-`k`
//! order (blocked only by the fixed `KC` boundary) — so results are
//! **bit-exact at any thread count**, including 1. Threading is off by
//! default ([`set_num_threads`]\(1\)) because the training workloads
//! here multiply small panels where a fork/join per GEMM costs more than
//! it saves; benches and large workloads opt in explicitly. The
//! reference kernel keeps its original row-slab fan-out.

// The internal packing/slab routines take the full block geometry as
// scalars; bundling them into structs would only obscure the BLIS shape.
#![allow(clippy::too_many_arguments)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker count for the packed task-grid / reference row-slab fan-out.
/// `1` = serial (default); `0` = follow the pool-wide default
/// ([`yoso_pool::num_threads`]).
static MATMUL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Minimum `m * k * n` before threading is worth a fork/join.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// Which SGEMM implementation the public entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The packed, register-tiled microkernel (default).
    Packed,
    /// The original branchy `ikj` loop. Kept for tolerance tests and as
    /// the baseline the `kernels` bench measures speedups against.
    Reference,
}

/// `0` = Packed, `1` = Reference (atomic-friendly encoding).
static KERNEL_KIND: AtomicUsize = AtomicUsize::new(0);

/// Selects the kernel implementation used by [`sgemm_acc`] and friends.
/// Intended for benches and comparison tests; the default is
/// [`KernelKind::Packed`].
pub fn set_kernel(kind: KernelKind) {
    KERNEL_KIND.store(
        match kind {
            KernelKind::Packed => 0,
            KernelKind::Reference => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected kernel implementation.
pub fn kernel_kind() -> KernelKind {
    match KERNEL_KIND.load(Ordering::Relaxed) {
        0 => KernelKind::Packed,
        _ => KernelKind::Reference,
    }
}

/// Sets the worker count for the SGEMM kernels in this module.
///
/// `1` (the default) keeps every kernel serial; `0` defers to the
/// pool-wide default. Results are bit-exact at any setting.
pub fn set_num_threads(n: usize) {
    MATMUL_THREADS.store(n, Ordering::Relaxed);
}

/// The configured SGEMM worker count (resolving `0` to the pool default).
pub fn num_threads() -> usize {
    match MATMUL_THREADS.load(Ordering::Relaxed) {
        0 => yoso_pool::num_threads(),
        n => n,
    }
}

/// Workers actually used by the reference kernel's row-slab fan-out:
/// the knob, capped by rows and floored at 1, with small products kept
/// serial. (The packed path caps by its task-grid size instead.)
fn resolve_threads(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) < PAR_MIN_FLOPS {
        return 1;
    }
    num_threads().clamp(1, m.max(1))
}

// ---------------------------------------------------------------------------
// SIMD tier dispatch
// ---------------------------------------------------------------------------

/// Instruction tier the packed microkernel dispatches to at runtime.
///
/// Ordered from weakest to strongest; [`set_simd_tier`] treats a
/// requested tier as a *cap*, never a promotion past what the CPU
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar microkernel (the compiler may still
    /// auto-vectorize it when built with target features enabled).
    Scalar,
    /// Explicit 256-bit AVX2 + FMA intrinsics (x86-64 only, detected at
    /// runtime).
    Avx2Fma,
    /// Explicit 512-bit AVX-512F intrinsics (x86-64 only, detected at
    /// runtime).
    Avx512,
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2Fma => "avx2+fma",
            SimdTier::Avx512 => "avx512",
        })
    }
}

/// Forced tier cap: `0` = auto (detected), otherwise `1 + tier rank`.
/// A cap can only select *below* detection; forcing above it would be
/// unsound.
static SIMD_FORCE: AtomicUsize = AtomicUsize::new(0);

/// The best tier this CPU supports, probed once.
static SIMD_DETECTED: OnceLock<SimdTier> = OnceLock::new();

fn tier_rank(tier: SimdTier) -> usize {
    match tier {
        SimdTier::Scalar => 0,
        SimdTier::Avx2Fma => 1,
        SimdTier::Avx512 => 2,
    }
}

fn tier_from_rank(rank: usize) -> SimdTier {
    match rank {
        0 => SimdTier::Scalar,
        1 => SimdTier::Avx2Fma,
        _ => SimdTier::Avx512,
    }
}

fn detect_simd_tier() -> SimdTier {
    #[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdTier::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdTier::Avx2Fma;
        }
    }
    SimdTier::Scalar
}

/// Caps the microkernel tier. `Some(Scalar)` forces the portable kernel
/// (benches use this as the comparison baseline; tests use it to pin
/// SIMD/scalar agreement); `Some(Avx2Fma)` runs the 256-bit kernel even
/// on AVX-512 hardware; `None` restores runtime detection. Requests are
/// clamped to what the CPU supports, so capping at a tier the machine
/// lacks still runs the best available one below it.
pub fn set_simd_tier(tier: Option<SimdTier>) {
    SIMD_FORCE.store(
        match tier {
            None => 0,
            Some(t) => 1 + tier_rank(t),
        },
        Ordering::Relaxed,
    );
}

/// The microkernel tier the next GEMM will use: the detected best tier
/// (cached after the first probe), lowered to the [`set_simd_tier`] cap
/// when one is set.
pub fn simd_tier() -> SimdTier {
    let detected = *SIMD_DETECTED.get_or_init(detect_simd_tier);
    match SIMD_FORCE.load(Ordering::Relaxed) {
        0 => detected,
        cap => tier_from_rank((cap - 1).min(tier_rank(detected))),
    }
}

// ---------------------------------------------------------------------------
// Packed microkernel
// ---------------------------------------------------------------------------

/// Microkernel tile height (rows of `c` held in registers). Eight rows
/// give the AVX-512 tier one zmm accumulator per row — eight
/// independent FMA chains, enough to hide FMA latency on both ports.
/// The AVX2 tier can't hold 8 x 16 in ymm registers, so it runs the
/// tile as two 4-row halves (see `simd::microkernel_f32_avx2fma`).
pub const MR: usize = 8;
/// Microkernel tile width (columns of `c` held in registers).
pub const NR: usize = 16;
/// Depth blocking: `KC x NR` B panels stay cache-resident while every
/// row tile of the current task visits them.
const KC: usize = 128;
/// Column blocking: B is packed (or walked) `NC` columns at a time, and
/// the task grid splits `c` on the same boundary.
const NC: usize = 256;
/// Rows of `c` per parallel task (a few `MR` tiles). Together with the
/// `NC` column split this fixes the task grid independently of the
/// worker count.
const RB: usize = 64;

thread_local! {
    /// Per-thread packing scratch `(a_tile, b_block)`; reused across every
    /// GEMM call on this thread, so steady state allocates nothing.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
    /// Per-thread task-local accumulation buffer for the serial path
    /// (parallel tasks allocate their own, amortized by larger work).
    static C_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Fused multiply-add `a * b + c` when the build target has hardware FMA
/// (one rounding, matching the explicit SIMD kernel bit-for-bit); plain
/// multiply-add otherwise, where `mul_add` would fall back to a slow
/// libm call. Which branch is taken is a build-wide constant, so the
/// scalar path rounds identically everywhere in the process; only the
/// runtime-dispatched SIMD kernel can differ from it (by at most one
/// rounding per FMA), and the property tests pin the two together on
/// exact-representable inputs.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Portable `MR x NR` register-block microkernel: `acc += A_tile * B`
/// over a depth of `kc`, where `a` is packed `p`-major (`MR` floats per
/// step) and `b` holds one `>= NR`-wide row per depth step at stride
/// `b_stride` (`NR` for packed panels, `n` for in-place rows of a
/// row-major `b`). The fixed-size inner loops vectorize without any
/// data-dependent branches: each depth step is `MR` broadcast-FMAs
/// against one `NR`-wide vector load.
#[inline(always)]
fn microkernel_scalar(kc: usize, a: &[f32], b: &[f32], b_stride: usize, acc: &mut [[f32; NR]; MR]) {
    // Each row's accumulator is an independent local so the compiler
    // treats every `for c` loop below as its own straight-line NR-lane
    // vector op (broadcast-FMAs per row per depth step) instead of
    // merging rows into one tangle it then scalarizes.
    let [mut acc0, mut acc1, mut acc2, mut acc3, mut acc4, mut acc5, mut acc6, mut acc7] = *acc;
    for p in 0..kc {
        let arow = &a[p * MR..p * MR + MR];
        let bv: &[f32; NR] = b[p * b_stride..p * b_stride + NR]
            .try_into()
            .expect("NR-wide row");
        let a0 = arow[0];
        for c in 0..NR {
            acc0[c] = fmadd(a0, bv[c], acc0[c]);
        }
        let a1 = arow[1];
        for c in 0..NR {
            acc1[c] = fmadd(a1, bv[c], acc1[c]);
        }
        let a2 = arow[2];
        for c in 0..NR {
            acc2[c] = fmadd(a2, bv[c], acc2[c]);
        }
        let a3 = arow[3];
        for c in 0..NR {
            acc3[c] = fmadd(a3, bv[c], acc3[c]);
        }
        let a4 = arow[4];
        for c in 0..NR {
            acc4[c] = fmadd(a4, bv[c], acc4[c]);
        }
        let a5 = arow[5];
        for c in 0..NR {
            acc5[c] = fmadd(a5, bv[c], acc5[c]);
        }
        let a6 = arow[6];
        for c in 0..NR {
            acc6[c] = fmadd(a6, bv[c], acc6[c]);
        }
        let a7 = arow[7];
        for c in 0..NR {
            acc7[c] = fmadd(a7, bv[c], acc7[c]);
        }
    }
    *acc = [acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7];
}

/// Dispatches one register tile to the selected instruction tier.
#[inline(always)]
fn microkernel(
    tier: SimdTier,
    kc: usize,
    a: &[f32],
    b: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    // Sound: a SIMD `tier` only reaches here when runtime detection
    // confirmed the features (set_simd_tier can cap but never promote),
    // and the packing loops guarantee the slice-length contract.
    match tier {
        #[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
        SimdTier::Avx512 => {
            #[allow(unsafe_code)]
            unsafe {
                crate::simd::microkernel_f32_avx512(kc, a, b, b_stride, acc)
            }
        }
        #[cfg(all(target_arch = "x86_64", not(yoso_force_scalar)))]
        SimdTier::Avx2Fma => {
            #[allow(unsafe_code)]
            unsafe {
                crate::simd::microkernel_f32_avx2fma(kc, a, b, b_stride, acc)
            }
        }
        _ => microkernel_scalar(kc, a, b, b_stride, acc),
    }
}

/// How the packing routines read the source operand.
#[derive(Clone, Copy)]
enum Layout {
    /// Operand stored row-major as `rows x cols` with logical element
    /// `(r, c)` at `data[r * cols + c]`.
    Normal,
    /// Operand stored row-major as `cols x rows` (the logical matrix is
    /// its transpose); logical `(r, c)` is at `data[c * rows + r]`.
    Transposed,
}

/// Packs the `[k0..k1) x [j0..j1)` block of logical `b` (`k x n`) into
/// `KC x NR` panels laid out panel-after-panel in `buf`. Columns past
/// `j1` in the final panel are zero-filled.
fn pack_b(
    b: &[f32],
    layout: Layout,
    n: usize,
    k_dim: usize,
    k0: usize,
    k1: usize,
    j0: usize,
    j1: usize,
    buf: &mut Vec<f32>,
) -> usize {
    let kc = k1 - k0;
    let panels = (j1 - j0).div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, 0.0);
    for pj in 0..panels {
        let jb = j0 + pj * NR;
        let jw = NR.min(j1 - jb);
        let panel = &mut buf[pj * kc * NR..(pj + 1) * kc * NR];
        match layout {
            Layout::Normal => {
                for p in 0..kc {
                    let src = &b[(k0 + p) * n + jb..(k0 + p) * n + jb + jw];
                    panel[p * NR..p * NR + jw].copy_from_slice(src);
                }
            }
            Layout::Transposed => {
                // Logical (k, j) lives at b[j * k_dim + k].
                for (jj, col) in (jb..jb + jw).enumerate() {
                    let src = &b[col * k_dim + k0..col * k_dim + k1];
                    for (p, v) in src.iter().enumerate() {
                        panel[p * NR + jj] = *v;
                    }
                }
            }
        }
    }
    panels
}

/// Packs the `[i0..i1) x [k0..k1)` tile of logical `a` (`m x k`) into
/// `p`-major order (`MR` consecutive rows per depth step). Rows past `i1`
/// are zero-filled.
fn pack_a(
    a: &[f32],
    layout: Layout,
    k_dim: usize,
    m_dim: usize,
    i0: usize,
    i1: usize,
    k0: usize,
    k1: usize,
    buf: &mut Vec<f32>,
) {
    let kc = k1 - k0;
    let rows = i1 - i0;
    buf.clear();
    buf.resize(kc * MR, 0.0);
    match layout {
        Layout::Normal => {
            for r in 0..rows {
                let src = &a[(i0 + r) * k_dim + k0..(i0 + r) * k_dim + k1];
                for (p, v) in src.iter().enumerate() {
                    buf[p * MR + r] = *v;
                }
            }
        }
        Layout::Transposed => {
            // Logical (i, k) lives at a[k * m_dim + i]: one depth step is
            // a contiguous run of rows.
            for p in 0..kc {
                let src = &a[(k0 + p) * m_dim + i0..(k0 + p) * m_dim + i0 + rows];
                buf[p * MR..p * MR + rows].copy_from_slice(src);
            }
        }
    }
}

/// Adds the valid `(i1-i0) x jw` corner of a register tile into `c_slab`
/// (row stride `n`, tile origin `(i0, jb)` in slab coordinates).
#[inline(always)]
fn writeback(
    acc: &[[f32; NR]; MR],
    c_slab: &mut [f32],
    n: usize,
    i0: usize,
    i1: usize,
    jb: usize,
    jw: usize,
) {
    for (r, arow) in acc.iter().enumerate().take(i1 - i0) {
        let crow = &mut c_slab[(i0 + r) * n + jb..(i0 + r) * n + jb + jw];
        for (cv, av) in crow.iter_mut().zip(arow.iter()) {
            *cv += av;
        }
    }
}

/// One cell of the packed path's task grid: the block of `c` it owns.
#[derive(Clone, Copy)]
struct TaskBounds {
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
}

/// Computes one task's block into `out` (zero-initialised,
/// `(i1-i0) x (j1-j0)` row-major): `out += op(a)[i0..i1, :] * op(b)[:, j0..j1]`
/// over the full depth `k`. Returns `(b_panels_packed, b_panel_reuses)`
/// for the trace counters.
fn packed_task(
    tier: SimdTier,
    tb: TaskBounds,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: Layout,
    m: usize,
    b: &[f32],
    b_layout: Layout,
    out: &mut [f32],
) -> (u64, u64) {
    let TaskBounds { i0, i1, j0, j1 } = tb;
    let cols = j1 - j0;
    let (mut packed, mut reused) = (0u64, 0u64);
    PACK_SCRATCH.with(|scratch| {
        let (a_buf, b_buf) = &mut *scratch.borrow_mut();
        let mut acc = [[0.0f32; NR]; MR];
        match b_layout {
            // Row-major B already has each depth step's NR-wide group
            // contiguous: full panels are read in place (`n`-strided
            // rows), and only the ragged edge panel (`j1 % NR` columns)
            // is packed — once per depth block, reused by every row
            // tile.
            Layout::Normal => {
                let mut k0 = 0;
                while k0 < k {
                    let k1 = (k0 + KC).min(k);
                    let kc = k1 - k0;
                    let mut edge_packed = false;
                    let mut i = i0;
                    while i < i1 {
                        let i2 = (i + MR).min(i1);
                        pack_a(a, a_layout, k, m, i, i2, k0, k1, a_buf);
                        let mut jb = j0;
                        while jb < j1 {
                            let jw = NR.min(j1 - jb);
                            for row in acc.iter_mut() {
                                *row = [0.0; NR];
                            }
                            if jw == NR {
                                microkernel(tier, kc, a_buf, &b[k0 * n + jb..], n, &mut acc);
                            } else {
                                if edge_packed {
                                    reused += 1;
                                } else {
                                    pack_b(b, b_layout, n, k, k0, k1, jb, j1, b_buf);
                                    edge_packed = true;
                                    packed += 1;
                                }
                                microkernel(tier, kc, a_buf, b_buf, NR, &mut acc);
                            }
                            writeback(&acc, out, cols, i - i0, i2 - i0, jb - j0, jw);
                            jb += NR;
                        }
                        i = i2;
                    }
                    k0 = k1;
                }
            }
            // Transposed B (stored n x k): depth steps stride the
            // operand column-wise, so packing into KC x NR panels is
            // what makes the microkernel's loads contiguous at all.
            Layout::Transposed => {
                let mut k0 = 0;
                while k0 < k {
                    let k1 = (k0 + KC).min(k);
                    let kc = k1 - k0;
                    let panels = pack_b(b, b_layout, n, k, k0, k1, j0, j1, b_buf);
                    packed += panels as u64;
                    let tiles = (i1 - i0).div_ceil(MR) as u64;
                    reused += (panels as u64) * tiles.saturating_sub(1);
                    let mut i = i0;
                    while i < i1 {
                        let i2 = (i + MR).min(i1);
                        pack_a(a, a_layout, k, m, i, i2, k0, k1, a_buf);
                        for pj in 0..panels {
                            for row in acc.iter_mut() {
                                *row = [0.0; NR];
                            }
                            let panel = &b_buf[pj * kc * NR..(pj + 1) * kc * NR];
                            microkernel(tier, kc, a_buf, panel, NR, &mut acc);
                            let jb = j0 + pj * NR;
                            let jw = NR.min(j1 - jb);
                            writeback(&acc, out, cols, i - i0, i2 - i0, jb - j0, jw);
                        }
                        i = i2;
                    }
                    k0 = k1;
                }
            }
        }
    });
    (packed, reused)
}

/// Adds a task's local block back into `c` (disjoint per task, so the
/// combine order cannot affect the result).
fn add_block(c: &mut [f32], n: usize, tb: TaskBounds, block: &[f32]) {
    let cols = tb.j1 - tb.j0;
    for (r, row) in block.chunks_exact(cols).enumerate() {
        let crow = &mut c[(tb.i0 + r) * n + tb.j0..(tb.i0 + r) * n + tb.j1];
        for (cv, v) in crow.iter_mut().zip(row) {
            *cv += v;
        }
    }
}

/// The packed path: `c += op(a) * op(b)` over the fixed task grid, fanned
/// out over [`yoso_pool::parallel_map`] when threading is enabled and the
/// product is big enough. See the module docs for the bit-exactness
/// argument.
fn sgemm_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let tier = simd_tier();
    let col_blocks = n.div_ceil(NC);
    let row_blocks = m.div_ceil(RB);
    let tasks = row_blocks * col_blocks;
    let threads = if m.saturating_mul(k).saturating_mul(n) < PAR_MIN_FLOPS {
        1
    } else {
        num_threads().clamp(1, tasks)
    };
    let bounds = |t: usize| {
        let (bi, bj) = (t / col_blocks, t % col_blocks);
        TaskBounds {
            i0: bi * RB,
            i1: (bi * RB + RB).min(m),
            j0: bj * NC,
            j1: (bj * NC + NC).min(n),
        }
    };
    let (mut packed, mut reused) = (0u64, 0u64);
    if threads <= 1 {
        C_SCRATCH.with(|scratch| {
            let out = &mut *scratch.borrow_mut();
            for t in 0..tasks {
                let tb = bounds(t);
                out.clear();
                out.resize((tb.i1 - tb.i0) * (tb.j1 - tb.j0), 0.0);
                let (p, r) = packed_task(tier, tb, k, n, a, a_layout, m, b, b_layout, out);
                add_block(c, n, tb, out);
                packed += p;
                reused += r;
            }
        });
    } else {
        let results = yoso_pool::parallel_map(tasks, threads, |t| {
            let tb = bounds(t);
            let mut out = vec![0.0f32; (tb.i1 - tb.i0) * (tb.j1 - tb.j0)];
            let counters = packed_task(tier, tb, k, n, a, a_layout, m, b, b_layout, &mut out);
            (out, counters)
        });
        for (t, (out, (p, r))) in results.into_iter().enumerate() {
            add_block(c, n, bounds(t), &out);
            packed += p;
            reused += r;
        }
    }
    if yoso_trace::enabled() {
        yoso_trace::counter_add("matmul.b_panels_packed", packed);
        yoso_trace::counter_add("matmul.b_panel_reuses", reused);
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Computes `c += a * b` for row-major matrices:
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths do not match the given
/// dimensions.
pub fn sgemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if kernel_kind() == KernelKind::Packed {
        return sgemm_packed(m, k, n, a, Layout::Normal, b, Layout::Normal, c);
    }
    let threads = resolve_threads(m, k, n);
    if threads <= 1 {
        return sgemm_reference(m, k, n, a, b, c);
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        let rows = c_slab.len() / n;
        sgemm_reference(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_slab);
    });
}

/// The original serial kernel (`c += a * b`): a `KB`-blocked `ikj` loop
/// with a data-dependent zero skip. Retained as the comparison baseline
/// for tolerance tests and the `kernels` bench.
pub fn sgemm_reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // Block over k to keep the b panel in cache for consecutive rows of a.
    const KB: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aik * bv;
                }
            }
        }
        k0 = k1;
    }
}

/// Computes `c = a * b` (overwriting `c`).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for v in c.iter_mut() {
        *v = 0.0;
    }
    sgemm_acc(m, k, n, a, b, c);
}

/// Computes `c += a^T * b` where `a` is `k x m` (so `a^T` is `m x k`),
/// `b` is `k x n`, `c` is `m x n`.
pub fn sgemm_at_b_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if kernel_kind() == KernelKind::Packed {
        return sgemm_packed(m, k, n, a, Layout::Transposed, b, Layout::Normal, c);
    }
    let threads = resolve_threads(m, k, n);
    if threads <= 1 {
        return sgemm_at_b_reference_slab(0, m, k, n, a, b, c);
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        sgemm_at_b_reference_slab(ci * rows_per, m, k, n, a, b, c_slab);
    });
}

/// Reference `a^T * b` kernel for the `c_slab.len() / n` rows of `c`
/// starting at row `r0` (`a` stays the full `k x m` matrix; `c_slab`
/// holds just those rows).
fn sgemm_at_b_reference_slab(
    r0: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_slab: &mut [f32],
) {
    if n == 0 {
        return;
    }
    let rows = c_slab.len() / n;
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for i in 0..rows {
            let aik = arow[r0 + i];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c_slab[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aik * bv;
            }
        }
    }
}

/// Computes `c += a * b^T` where `a` is `m x k`, `b` is `n x k`
/// (so `b^T` is `k x n`), `c` is `m x n`.
pub fn sgemm_a_bt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if kernel_kind() == KernelKind::Packed {
        return sgemm_packed(m, k, n, a, Layout::Normal, b, Layout::Transposed, c);
    }
    let threads = resolve_threads(m, k, n);
    if threads <= 1 {
        return sgemm_a_bt_reference_slab(m, k, n, a, b, c);
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        let rows = c_slab.len() / n;
        sgemm_a_bt_reference_slab(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_slab);
    });
}

/// Reference `a * b^T` kernel over a contiguous slab of `m` rows.
fn sgemm_a_bt_reference_slab(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (av, bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            crow[j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (17, 65, 9), (8, 128, 8)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            assert_eq!(c, naive(m, k, n, &a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn sgemm_acc_accumulates() {
        let a = seq(6);
        let b = seq(6);
        let mut c = vec![1.0; 4];
        sgemm_acc(2, 3, 2, &a, &b, &mut c);
        let expected: Vec<f32> = naive(2, 3, 2, &a, &b).iter().map(|v| v + 1.0).collect();
        assert_eq!(c, expected);
    }

    #[test]
    fn at_b_matches_naive_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = seq(k * m); // k x m
        let b = seq(k * n);
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_at_b_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &at, &b));
    }

    #[test]
    fn a_bt_matches_naive_transpose() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let b = seq(n * k); // n x k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_a_bt_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &a, &bt));
    }

    /// The packed kernel agrees exactly with the reference kernel on
    /// integer-valued inputs (every partial sum is exactly representable,
    /// so any summation order yields identical bits), across shapes that
    /// exercise all the edge paths: tiny, non-multiples of `MR`/`NR`,
    /// multiple `KC`/`NC` blocks.
    #[test]
    fn packed_matches_reference_on_exact_inputs() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 5),
            (13, 200, 300),
            (2, 300, 2),
        ] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c_ref = vec![0.25; m * n];
            sgemm_reference(m, k, n, &a, &b, &mut c_ref);
            let mut c_packed = vec![0.25; m * n];
            set_kernel(KernelKind::Packed);
            sgemm_acc(m, k, n, &a, &b, &mut c_packed);
            assert_eq!(c_packed, c_ref, "({m},{k},{n})");
        }
    }

    /// Every SIMD tier this machine can run (detected best, AVX2 cap,
    /// forced scalar) produces identical bits on exact-representable
    /// inputs, across all three operand layouts. (On machines without
    /// the features, capped runs clamp to the same lower tier and the
    /// comparison is trivially true.)
    /// Serializes tests that mutate the process-wide SIMD force cap:
    /// unlike the kernel/thread knobs (where every setting yields
    /// identical bits on these inputs), `simd_tier_cap_clamps_to_detected`
    /// asserts on the cap state itself.
    static SIMD_FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn simd_and_scalar_tiers_agree_on_exact_inputs() {
        let _guard = SIMD_FORCE_LOCK.lock().unwrap();
        let (m, k, n) = (23, 150, 70);
        let a = seq(m * k);
        let b = seq(k * n);
        let a_km = seq(k * m);
        let b_nk = seq(n * k);
        let run = |tier: Option<SimdTier>| {
            set_simd_tier(tier);
            let mut c1 = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c1);
            let mut c2 = vec![0.5; m * n];
            sgemm_at_b_acc(m, k, n, &a_km, &b, &mut c2);
            let mut c3 = vec![0.5; m * n];
            sgemm_a_bt_acc(m, k, n, &a, &b_nk, &mut c3);
            set_simd_tier(None);
            (c1, c2, c3)
        };
        let auto = run(None);
        assert_eq!(run(Some(SimdTier::Scalar)), auto, "scalar vs auto");
        assert_eq!(run(Some(SimdTier::Avx2Fma)), auto, "avx2 cap vs auto");
    }

    /// A forced cap selects below detection and never above it.
    #[test]
    fn simd_tier_cap_clamps_to_detected() {
        let _guard = SIMD_FORCE_LOCK.lock().unwrap();
        let detected = {
            set_simd_tier(None);
            simd_tier()
        };
        set_simd_tier(Some(SimdTier::Scalar));
        assert_eq!(simd_tier(), SimdTier::Scalar);
        set_simd_tier(Some(SimdTier::Avx512));
        assert_eq!(simd_tier(), detected, "cap above detection clamps down");
        set_simd_tier(None);
        assert_eq!(simd_tier(), detected);
    }

    /// All kernels, at sizes past the serial cutoff, produce
    /// bit-identical output at 1, 2, 3 and 8 workers: every output
    /// element is owned by exactly one task of a thread-count-independent
    /// grid and accumulates its terms in the serial order.
    #[test]
    fn parallel_sgemm_bit_exact_across_thread_counts() {
        let (m, k, n) = (37, 48, 50); // m*k*n > PAR_MIN_FLOPS, m not divisible
        assert!(m * k * n >= PAR_MIN_FLOPS);
        let a = seq(m * k);
        let b = seq(k * n);
        let a_km = seq(k * m);
        let b_nk = seq(n * k);
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c1 = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c1);
            let mut c2 = vec![0.5; m * n];
            sgemm_at_b_acc(m, k, n, &a_km, &b, &mut c2);
            let mut c3 = vec![0.5; m * n];
            sgemm_a_bt_acc(m, k, n, &a, &b_nk, &mut c3);
            (c1, c2, c3)
        };
        let serial = run(1);
        for t in [2, 3, 8] {
            assert_eq!(run(t), serial, "threads={t}");
        }
        set_num_threads(1);
    }

    /// Thread-count invariance on a shape whose task grid really has
    /// multiple cells in both dimensions (`m > RB`, `n > NC`), so the
    /// parallel path genuinely fans out over row and column blocks.
    #[test]
    fn nc_panel_grid_bit_exact_across_thread_counts() {
        let (m, k, n) = (70, 40, 600); // 2 row blocks x 3 column blocks
        assert!(m > RB && n > 2 * NC && m * k * n >= PAR_MIN_FLOPS);
        let a = seq(m * k);
        let b = seq(k * n);
        let a_km = seq(k * m);
        let b_nk = seq(n * k);
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c1 = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c1);
            let mut c2 = vec![0.5; m * n];
            sgemm_at_b_acc(m, k, n, &a_km, &b, &mut c2);
            let mut c3 = vec![0.5; m * n];
            sgemm_a_bt_acc(m, k, n, &a, &b_nk, &mut c3);
            (c1, c2, c3)
        };
        let serial = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), serial, "threads={t}");
        }
        set_num_threads(1);
    }

    /// Kernel selection dispatches all three entry points.
    #[test]
    fn reference_kernel_selectable() {
        let (m, k, n) = (5, 9, 6);
        let a = seq(m * k);
        let b = seq(k * n);
        set_kernel(KernelKind::Reference);
        assert_eq!(kernel_kind(), KernelKind::Reference);
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        set_kernel(KernelKind::Packed);
        assert_eq!(kernel_kind(), KernelKind::Packed);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    /// Same bit-exactness property for the reference kernel dispatch.
    #[test]
    fn parallel_reference_bit_exact_across_thread_counts() {
        let (m, k, n) = (37, 48, 50);
        let a = seq(m * k);
        let b = seq(k * n);
        set_kernel(KernelKind::Reference);
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c);
            c
        };
        let serial = run(1);
        for t in [2, 4] {
            assert_eq!(run(t), serial, "threads={t}");
        }
        set_num_threads(1);
        set_kernel(KernelKind::Packed);
    }
}
