//! Small blocked SGEMM kernels.
//!
//! These are deliberately dependency-free: a register-blocked `ikj` loop
//! order that LLVM auto-vectorizes well at the sizes YOSO uses (im2col
//! panels of a few hundred rows/columns).
//!
//! The kernels can fan the M dimension (rows of `c`) out over the worker
//! pool: each worker owns a contiguous slab of `c` rows and runs the
//! unchanged serial kernel on it, so every output element accumulates its
//! terms in exactly the serial order and results are **bit-exact at any
//! thread count**. Threading is off by default ([`set_num_threads`]\(1\))
//! because the training workloads here multiply small panels where a
//! fork/join per GEMM costs more than it saves; benches and large
//! workloads opt in explicitly.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for the M-dimension fan-out. `1` = serial (default);
/// `0` = follow the pool-wide default ([`yoso_pool::num_threads`]).
static MATMUL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Minimum `m * k * n` before threading is worth a fork/join.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// Sets the worker count for the SGEMM kernels in this module.
///
/// `1` (the default) keeps every kernel serial; `0` defers to the
/// pool-wide default. Results are bit-exact at any setting.
pub fn set_num_threads(n: usize) {
    MATMUL_THREADS.store(n, Ordering::Relaxed);
}

/// The configured SGEMM worker count (resolving `0` to the pool default).
pub fn num_threads() -> usize {
    match MATMUL_THREADS.load(Ordering::Relaxed) {
        0 => yoso_pool::num_threads(),
        n => n,
    }
}

/// Workers actually used for an `m x k x n` product: the knob, capped by
/// rows and floored at 1, with small products kept serial.
fn resolve_threads(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) < PAR_MIN_FLOPS {
        return 1;
    }
    num_threads().clamp(1, m.max(1))
}

/// Computes `c += a * b` for row-major matrices:
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths do not match the given
/// dimensions.
pub fn sgemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = resolve_threads(m, k, n);
    if threads <= 1 {
        sgemm_acc_slab(m, k, n, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        let rows = c_slab.len() / n;
        sgemm_acc_slab(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_slab);
    });
}

/// Serial kernel over a contiguous slab of `m` rows.
fn sgemm_acc_slab(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // Block over k to keep the b panel in cache for consecutive rows of a.
    const KB: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aik * bv;
                }
            }
        }
        k0 = k1;
    }
}

/// Computes `c = a * b` (overwriting `c`).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for v in c.iter_mut() {
        *v = 0.0;
    }
    sgemm_acc(m, k, n, a, b, c);
}

/// Computes `c += a^T * b` where `a` is `k x m` (so `a^T` is `m x k`),
/// `b` is `k x n`, `c` is `m x n`.
pub fn sgemm_at_b_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = resolve_threads(m, k, n);
    if threads <= 1 {
        sgemm_at_b_acc_slab(0, m, k, n, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        sgemm_at_b_acc_slab(ci * rows_per, m, k, n, a, b, c_slab);
    });
}

/// Serial `a^T * b` kernel for the `c_slab.len() / n` rows of `c`
/// starting at row `r0` (`a` stays the full `k x m` matrix; `c_slab`
/// holds just those rows).
fn sgemm_at_b_acc_slab(
    r0: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_slab: &mut [f32],
) {
    if n == 0 {
        return;
    }
    let rows = c_slab.len() / n;
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for i in 0..rows {
            let aik = arow[r0 + i];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c_slab[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aik * bv;
            }
        }
    }
}

/// Computes `c += a * b^T` where `a` is `m x k`, `b` is `n x k`
/// (so `b^T` is `k x n`), `c` is `m x n`.
pub fn sgemm_a_bt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let threads = resolve_threads(m, k, n);
    if threads <= 1 {
        sgemm_a_bt_acc_slab(m, k, n, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        let rows = c_slab.len() / n;
        sgemm_a_bt_acc_slab(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_slab);
    });
}

/// Serial `a * b^T` kernel over a contiguous slab of `m` rows.
fn sgemm_a_bt_acc_slab(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (av, bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            crow[j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (17, 65, 9), (8, 128, 8)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            assert_eq!(c, naive(m, k, n, &a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn sgemm_acc_accumulates() {
        let a = seq(6);
        let b = seq(6);
        let mut c = vec![1.0; 4];
        sgemm_acc(2, 3, 2, &a, &b, &mut c);
        let expected: Vec<f32> = naive(2, 3, 2, &a, &b).iter().map(|v| v + 1.0).collect();
        assert_eq!(c, expected);
    }

    #[test]
    fn at_b_matches_naive_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = seq(k * m); // k x m
        let b = seq(k * n);
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_at_b_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &at, &b));
    }

    #[test]
    fn a_bt_matches_naive_transpose() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let b = seq(n * k); // n x k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_a_bt_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &a, &bt));
    }

    /// All three kernels, at sizes past the serial cutoff, produce
    /// bit-identical output at 1, 2, 3 and 8 workers: each worker's slab
    /// accumulates every element's terms in the serial order.
    #[test]
    fn parallel_sgemm_bit_exact_across_thread_counts() {
        let (m, k, n) = (37, 48, 50); // m*k*n > PAR_MIN_FLOPS, m not divisible
        assert!(m * k * n >= PAR_MIN_FLOPS);
        let a = seq(m * k);
        let b = seq(k * n);
        let a_km = seq(k * m);
        let b_nk = seq(n * k);
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c1 = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c1);
            let mut c2 = vec![0.5; m * n];
            sgemm_at_b_acc(m, k, n, &a_km, &b, &mut c2);
            let mut c3 = vec![0.5; m * n];
            sgemm_a_bt_acc(m, k, n, &a, &b_nk, &mut c3);
            (c1, c2, c3)
        };
        let serial = run(1);
        for t in [2, 3, 8] {
            assert_eq!(run(t), serial, "threads={t}");
        }
        set_num_threads(1);
    }
}
