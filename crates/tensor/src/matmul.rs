//! Blocked SGEMM kernels: a packed, register-tiled microkernel (default)
//! plus the original branchy reference kernel for tolerance tests.
//!
//! ## Packed kernel architecture (see DESIGN.md §9)
//!
//! The hot path is a BLIS-style three-level blocking scheme:
//!
//! * **B packing** — for each `KC x NC` block of `b`, columns are packed
//!   into contiguous `KC x NR` panels so the microkernel streams them
//!   linearly regardless of the original row stride (or transposition).
//! * **A packing** — each `MR x KC` tile of `a` is packed column-major
//!   (`p`-major), so one microkernel step reads `MR` consecutive floats.
//! * **Microkernel** — an `MR x NR` register block accumulates
//!   `kc` rank-1 updates with fixed-size inner loops that LLVM unrolls
//!   and vectorizes; there is no data-dependent branching (the old
//!   kernel's `aik == 0.0` skip is gone).
//!
//! Packing buffers live in thread-local scratch, so steady-state GEMM
//! calls are allocation-free.
//!
//! The kernels can fan the M dimension (rows of `c`) out over the worker
//! pool: each worker owns a contiguous slab of `c` rows and runs the
//! unchanged serial kernel on it. Within the kernel, every output element
//! accumulates its `k` terms in increasing-`k` order (blocked only by the
//! fixed `KC` boundary, which does not depend on the slab split), so
//! results are **bit-exact at any thread count**. Threading is off by
//! default ([`set_num_threads`]\(1\)) because the training workloads here
//! multiply small panels where a fork/join per GEMM costs more than it
//! saves; benches and large workloads opt in explicitly.

// The internal packing/slab routines take the full block geometry as
// scalars; bundling them into structs would only obscure the BLIS shape.
#![allow(clippy::too_many_arguments)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for the M-dimension fan-out. `1` = serial (default);
/// `0` = follow the pool-wide default ([`yoso_pool::num_threads`]).
static MATMUL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Minimum `m * k * n` before threading is worth a fork/join.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// Which SGEMM implementation the public entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The packed, register-tiled microkernel (default).
    Packed,
    /// The original branchy `ikj` loop. Kept for tolerance tests and as
    /// the baseline the `kernels` bench measures speedups against.
    Reference,
}

/// `0` = Packed, `1` = Reference (atomic-friendly encoding).
static KERNEL_KIND: AtomicUsize = AtomicUsize::new(0);

/// Selects the kernel implementation used by [`sgemm_acc`] and friends.
/// Intended for benches and comparison tests; the default is
/// [`KernelKind::Packed`].
pub fn set_kernel(kind: KernelKind) {
    KERNEL_KIND.store(
        match kind {
            KernelKind::Packed => 0,
            KernelKind::Reference => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected kernel implementation.
pub fn kernel_kind() -> KernelKind {
    match KERNEL_KIND.load(Ordering::Relaxed) {
        0 => KernelKind::Packed,
        _ => KernelKind::Reference,
    }
}

/// Sets the worker count for the SGEMM kernels in this module.
///
/// `1` (the default) keeps every kernel serial; `0` defers to the
/// pool-wide default. Results are bit-exact at any setting.
pub fn set_num_threads(n: usize) {
    MATMUL_THREADS.store(n, Ordering::Relaxed);
}

/// The configured SGEMM worker count (resolving `0` to the pool default).
pub fn num_threads() -> usize {
    match MATMUL_THREADS.load(Ordering::Relaxed) {
        0 => yoso_pool::num_threads(),
        n => n,
    }
}

/// Workers actually used for an `m x k x n` product: the knob, capped by
/// rows and floored at 1, with small products kept serial.
fn resolve_threads(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) < PAR_MIN_FLOPS {
        return 1;
    }
    num_threads().clamp(1, m.max(1))
}

// ---------------------------------------------------------------------------
// Packed microkernel
// ---------------------------------------------------------------------------

/// Microkernel tile height (rows of `c` held in registers).
pub const MR: usize = 8;
/// Microkernel tile width (columns of `c` held in registers).
pub const NR: usize = 16;
/// Depth blocking: `KC x NR` B panels stay cache-resident while every
/// row tile of the current slab visits them.
const KC: usize = 128;
/// Column blocking: B is packed `NC` columns at a time.
const NC: usize = 256;

thread_local! {
    /// Per-thread packing scratch `(a_tile, b_block)`; reused across every
    /// GEMM call on this thread, so steady state allocates nothing.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Fused multiply-add `a * b + c` when the build target has hardware FMA
/// (one rounding, one instruction — the whole point of the register
/// tile); plain multiply-add otherwise, where `mul_add` would fall back
/// to a slow libm call. Which branch is taken is a build-wide constant,
/// so every code path in the process — packed kernel, any thread count —
/// rounds identically.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// `MR x NR` register-block microkernel: `acc += A_tile * B_panel` over a
/// depth of `kc`, where `a` is packed `p`-major (`MR` floats per step) and
/// `b` is packed panel-major (`NR` floats per step). The fixed-size inner
/// loops vectorize without any data-dependent branches: each depth step
/// is `MR` broadcast-FMAs against one `NR`-wide vector load.
#[inline(always)]
fn microkernel<'b>(
    kc: usize,
    a: &[f32],
    brows: impl Iterator<Item = &'b [f32]>,
    acc: &mut [[f32; NR]; MR],
) {
    // Each row's accumulator is an independent local so the compiler
    // treats every `for c` loop below as its own straight-line NR-lane
    // vector op (broadcast-FMAs per row per depth step) instead of
    // merging rows into one tangle it then scalarizes. `brows` yields
    // one `>= NR`-float row per depth step — a packed panel's chunks or
    // `n`-strided rows of an unpacked row-major B.
    let [mut acc0, mut acc1, mut acc2, mut acc3, mut acc4, mut acc5, mut acc6, mut acc7] = *acc;
    for (arow, brow) in a.chunks_exact(MR).take(kc).zip(brows) {
        let bv: &[f32; NR] = brow[..NR].try_into().expect("NR-wide row");
        let a0 = arow[0];
        for c in 0..NR {
            acc0[c] = fmadd(a0, bv[c], acc0[c]);
        }
        let a1 = arow[1];
        for c in 0..NR {
            acc1[c] = fmadd(a1, bv[c], acc1[c]);
        }
        let a2 = arow[2];
        for c in 0..NR {
            acc2[c] = fmadd(a2, bv[c], acc2[c]);
        }
        let a3 = arow[3];
        for c in 0..NR {
            acc3[c] = fmadd(a3, bv[c], acc3[c]);
        }
        let a4 = arow[4];
        for c in 0..NR {
            acc4[c] = fmadd(a4, bv[c], acc4[c]);
        }
        let a5 = arow[5];
        for c in 0..NR {
            acc5[c] = fmadd(a5, bv[c], acc5[c]);
        }
        let a6 = arow[6];
        for c in 0..NR {
            acc6[c] = fmadd(a6, bv[c], acc6[c]);
        }
        let a7 = arow[7];
        for c in 0..NR {
            acc7[c] = fmadd(a7, bv[c], acc7[c]);
        }
    }
    *acc = [acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7];
}

/// How the packing routines read the source operand.
#[derive(Clone, Copy)]
enum Layout {
    /// Operand stored row-major as `rows x cols` with logical element
    /// `(r, c)` at `data[r * cols + c]`.
    Normal,
    /// Operand stored row-major as `cols x rows` (the logical matrix is
    /// its transpose); logical `(r, c)` is at `data[c * rows + r]`.
    Transposed,
}

/// Packs the `[k0..k1) x [j0..j1)` block of logical `b` (`k x n`) into
/// `KC x NR` panels laid out panel-after-panel in `buf`. Columns past
/// `j1` in the final panel are zero-filled.
fn pack_b(
    b: &[f32],
    layout: Layout,
    n: usize,
    k_dim: usize,
    k0: usize,
    k1: usize,
    j0: usize,
    j1: usize,
    buf: &mut Vec<f32>,
) -> usize {
    let kc = k1 - k0;
    let panels = (j1 - j0).div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, 0.0);
    for pj in 0..panels {
        let jb = j0 + pj * NR;
        let jw = NR.min(j1 - jb);
        let panel = &mut buf[pj * kc * NR..(pj + 1) * kc * NR];
        match layout {
            Layout::Normal => {
                for p in 0..kc {
                    let src = &b[(k0 + p) * n + jb..(k0 + p) * n + jb + jw];
                    panel[p * NR..p * NR + jw].copy_from_slice(src);
                }
            }
            Layout::Transposed => {
                // Logical (k, j) lives at b[j * k_dim + k].
                for (jj, col) in (jb..jb + jw).enumerate() {
                    let src = &b[col * k_dim + k0..col * k_dim + k1];
                    for (p, v) in src.iter().enumerate() {
                        panel[p * NR + jj] = *v;
                    }
                }
            }
        }
    }
    panels
}

/// Packs the `[i0..i1) x [k0..k1)` tile of logical `a` (`m x k`) into
/// `p`-major order (`MR` consecutive rows per depth step). Rows past `i1`
/// are zero-filled.
fn pack_a(
    a: &[f32],
    layout: Layout,
    k_dim: usize,
    m_dim: usize,
    i0: usize,
    i1: usize,
    k0: usize,
    k1: usize,
    buf: &mut Vec<f32>,
) {
    let kc = k1 - k0;
    let rows = i1 - i0;
    buf.clear();
    buf.resize(kc * MR, 0.0);
    match layout {
        Layout::Normal => {
            for r in 0..rows {
                let src = &a[(i0 + r) * k_dim + k0..(i0 + r) * k_dim + k1];
                for (p, v) in src.iter().enumerate() {
                    buf[p * MR + r] = *v;
                }
            }
        }
        Layout::Transposed => {
            // Logical (i, k) lives at a[k * m_dim + i]: one depth step is
            // a contiguous run of rows.
            for p in 0..kc {
                let src = &a[(k0 + p) * m_dim + i0..(k0 + p) * m_dim + i0 + rows];
                buf[p * MR..p * MR + rows].copy_from_slice(src);
            }
        }
    }
}

/// Packed GEMM over a contiguous slab of `c` rows: `c_slab += op(a) * op(b)`
/// where `op` resolves the layouts. `r0` is the slab's starting row in the
/// full `m`-row product (used only when `a` is transposed, i.e. stored
/// whole); a `Normal` `a` must already be sliced to the slab's rows.
/// Adds the valid `(i1-i0) x jw` corner of a register tile into `c_slab`.
#[inline(always)]
fn writeback(
    acc: &[[f32; NR]; MR],
    c_slab: &mut [f32],
    n: usize,
    i0: usize,
    i1: usize,
    jb: usize,
    jw: usize,
) {
    for (r, arow) in acc.iter().enumerate().take(i1 - i0) {
        let crow = &mut c_slab[(i0 + r) * n + jb..(i0 + r) * n + jb + jw];
        for (cv, av) in crow.iter_mut().zip(arow.iter()) {
            *cv += av;
        }
    }
}

fn sgemm_packed_slab(
    r0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: Layout,
    a_m_dim: usize,
    b: &[f32],
    b_layout: Layout,
    c_slab: &mut [f32],
) {
    if n == 0 || k == 0 {
        return;
    }
    let rows = c_slab.len() / n;
    let (mut packed, mut reused) = (0u64, 0u64);
    PACK_SCRATCH.with(|scratch| {
        let (a_buf, b_buf) = &mut *scratch.borrow_mut();
        let mut acc = [[0.0f32; NR]; MR];
        let pack_a_tile =
            |i0: usize, i1: usize, k0: usize, k1: usize, buf: &mut Vec<f32>| match a_layout {
                Layout::Normal => pack_a(a, a_layout, k, a_m_dim, i0, i1, k0, k1, buf),
                Layout::Transposed => {
                    pack_a(a, a_layout, k, a_m_dim, r0 + i0, r0 + i1, k0, k1, buf);
                }
            };
        match b_layout {
            // Row-major B already has each depth step's NR-wide group
            // contiguous: full panels are read in place (`n`-strided
            // rows), and only the ragged edge panel (`n % NR` columns)
            // is packed — once per depth block, reused by every row
            // tile.
            Layout::Normal => {
                let mut k0 = 0;
                while k0 < k {
                    let k1 = (k0 + KC).min(k);
                    let kc = k1 - k0;
                    let mut edge_packed = false;
                    let mut i0 = 0;
                    while i0 < rows {
                        let i1 = (i0 + MR).min(rows);
                        pack_a_tile(i0, i1, k0, k1, a_buf);
                        let mut jb = 0;
                        while jb < n {
                            let jw = NR.min(n - jb);
                            for row in acc.iter_mut() {
                                *row = [0.0; NR];
                            }
                            if jw == NR {
                                microkernel(kc, a_buf, b[k0 * n + jb..].chunks(n), &mut acc);
                            } else {
                                if edge_packed {
                                    reused += 1;
                                } else {
                                    pack_b(b, b_layout, n, k, k0, k1, jb, n, b_buf);
                                    edge_packed = true;
                                    packed += 1;
                                }
                                microkernel(kc, a_buf, b_buf.chunks_exact(NR), &mut acc);
                            }
                            writeback(&acc, c_slab, n, i0, i1, jb, jw);
                            jb += NR;
                        }
                        i0 = i1;
                    }
                    k0 = k1;
                }
            }
            // Transposed B (stored n x k): depth steps stride the
            // operand column-wise, so packing into KC x NR panels is
            // what makes the microkernel's loads contiguous at all.
            Layout::Transposed => {
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + NC).min(n);
                    let mut k0 = 0;
                    while k0 < k {
                        let k1 = (k0 + KC).min(k);
                        let kc = k1 - k0;
                        let panels = pack_b(b, b_layout, n, k, k0, k1, j0, j1, b_buf);
                        packed += panels as u64;
                        reused += (panels as u64) * (rows.div_ceil(MR) as u64).saturating_sub(1);
                        let mut i0 = 0;
                        while i0 < rows {
                            let i1 = (i0 + MR).min(rows);
                            pack_a_tile(i0, i1, k0, k1, a_buf);
                            for pj in 0..panels {
                                for row in acc.iter_mut() {
                                    *row = [0.0; NR];
                                }
                                let panel = &b_buf[pj * kc * NR..(pj + 1) * kc * NR];
                                microkernel(kc, a_buf, panel.chunks_exact(NR), &mut acc);
                                let jb = j0 + pj * NR;
                                let jw = NR.min(j1 - jb);
                                writeback(&acc, c_slab, n, i0, i1, jb, jw);
                            }
                            i0 = i1;
                        }
                        k0 = k1;
                    }
                    j0 = j1;
                }
            }
        }
    });
    if yoso_trace::enabled() {
        yoso_trace::counter_add("matmul.b_panels_packed", packed);
        yoso_trace::counter_add("matmul.b_panel_reuses", reused);
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Computes `c += a * b` for row-major matrices:
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths do not match the given
/// dimensions.
pub fn sgemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = resolve_threads(m, k, n);
    let packed = kernel_kind() == KernelKind::Packed;
    if threads <= 1 {
        if packed {
            sgemm_packed_slab(0, k, n, a, Layout::Normal, m, b, Layout::Normal, c);
        } else {
            sgemm_reference(m, k, n, a, b, c);
        }
        return;
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        let rows = c_slab.len() / n;
        let a_slab = &a[r0 * k..(r0 + rows) * k];
        if packed {
            sgemm_packed_slab(
                r0,
                k,
                n,
                a_slab,
                Layout::Normal,
                m,
                b,
                Layout::Normal,
                c_slab,
            );
        } else {
            sgemm_reference(rows, k, n, a_slab, b, c_slab);
        }
    });
}

/// The original serial kernel (`c += a * b`): a `KB`-blocked `ikj` loop
/// with a data-dependent zero skip. Retained as the comparison baseline
/// for tolerance tests and the `kernels` bench.
pub fn sgemm_reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // Block over k to keep the b panel in cache for consecutive rows of a.
    const KB: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aik * bv;
                }
            }
        }
        k0 = k1;
    }
}

/// Computes `c = a * b` (overwriting `c`).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for v in c.iter_mut() {
        *v = 0.0;
    }
    sgemm_acc(m, k, n, a, b, c);
}

/// Computes `c += a^T * b` where `a` is `k x m` (so `a^T` is `m x k`),
/// `b` is `k x n`, `c` is `m x n`.
pub fn sgemm_at_b_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = resolve_threads(m, k, n);
    let packed = kernel_kind() == KernelKind::Packed;
    if threads <= 1 {
        if packed {
            sgemm_packed_slab(0, k, n, a, Layout::Transposed, m, b, Layout::Normal, c);
        } else {
            sgemm_at_b_reference_slab(0, m, k, n, a, b, c);
        }
        return;
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        if packed {
            sgemm_packed_slab(
                r0,
                k,
                n,
                a,
                Layout::Transposed,
                m,
                b,
                Layout::Normal,
                c_slab,
            );
        } else {
            sgemm_at_b_reference_slab(r0, m, k, n, a, b, c_slab);
        }
    });
}

/// Reference `a^T * b` kernel for the `c_slab.len() / n` rows of `c`
/// starting at row `r0` (`a` stays the full `k x m` matrix; `c_slab`
/// holds just those rows).
fn sgemm_at_b_reference_slab(
    r0: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_slab: &mut [f32],
) {
    if n == 0 {
        return;
    }
    let rows = c_slab.len() / n;
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for i in 0..rows {
            let aik = arow[r0 + i];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c_slab[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aik * bv;
            }
        }
    }
}

/// Computes `c += a * b^T` where `a` is `m x k`, `b` is `n x k`
/// (so `b^T` is `k x n`), `c` is `m x n`.
pub fn sgemm_a_bt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let threads = resolve_threads(m, k, n);
    let packed = kernel_kind() == KernelKind::Packed;
    if threads <= 1 {
        if packed {
            sgemm_packed_slab(0, k, n, a, Layout::Normal, m, b, Layout::Transposed, c);
        } else {
            sgemm_a_bt_reference_slab(m, k, n, a, b, c);
        }
        return;
    }
    let rows_per = m.div_ceil(threads);
    yoso_pool::for_each_chunk_mut(c, rows_per * n, threads, |ci, c_slab| {
        let r0 = ci * rows_per;
        let rows = c_slab.len() / n;
        let a_slab = &a[r0 * k..(r0 + rows) * k];
        if packed {
            sgemm_packed_slab(
                r0,
                k,
                n,
                a_slab,
                Layout::Normal,
                m,
                b,
                Layout::Transposed,
                c_slab,
            );
        } else {
            sgemm_a_bt_reference_slab(rows, k, n, a_slab, b, c_slab);
        }
    });
}

/// Reference `a * b^T` kernel over a contiguous slab of `m` rows.
fn sgemm_a_bt_reference_slab(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (av, bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            crow[j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (17, 65, 9), (8, 128, 8)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            assert_eq!(c, naive(m, k, n, &a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn sgemm_acc_accumulates() {
        let a = seq(6);
        let b = seq(6);
        let mut c = vec![1.0; 4];
        sgemm_acc(2, 3, 2, &a, &b, &mut c);
        let expected: Vec<f32> = naive(2, 3, 2, &a, &b).iter().map(|v| v + 1.0).collect();
        assert_eq!(c, expected);
    }

    #[test]
    fn at_b_matches_naive_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = seq(k * m); // k x m
        let b = seq(k * n);
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_at_b_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &at, &b));
    }

    #[test]
    fn a_bt_matches_naive_transpose() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let b = seq(n * k); // n x k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_a_bt_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &a, &bt));
    }

    /// The packed kernel agrees exactly with the reference kernel on
    /// integer-valued inputs (every partial sum is exactly representable,
    /// so any summation order yields identical bits), across shapes that
    /// exercise all the edge paths: tiny, non-multiples of `MR`/`NR`,
    /// multiple `KC`/`NC` blocks.
    #[test]
    fn packed_matches_reference_on_exact_inputs() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 5),
            (13, 200, 300),
            (2, 300, 2),
        ] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c_ref = vec![0.25; m * n];
            sgemm_reference(m, k, n, &a, &b, &mut c_ref);
            let mut c_packed = vec![0.25; m * n];
            set_kernel(KernelKind::Packed);
            sgemm_acc(m, k, n, &a, &b, &mut c_packed);
            assert_eq!(c_packed, c_ref, "({m},{k},{n})");
        }
    }

    /// Kernel selection dispatches all three entry points.
    #[test]
    fn reference_kernel_selectable() {
        let (m, k, n) = (5, 9, 6);
        let a = seq(m * k);
        let b = seq(k * n);
        set_kernel(KernelKind::Reference);
        assert_eq!(kernel_kind(), KernelKind::Reference);
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        set_kernel(KernelKind::Packed);
        assert_eq!(kernel_kind(), KernelKind::Packed);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    /// All three kernels, at sizes past the serial cutoff, produce
    /// bit-identical output at 1, 2, 3 and 8 workers: each worker's slab
    /// accumulates every element's terms in the serial order.
    #[test]
    fn parallel_sgemm_bit_exact_across_thread_counts() {
        let (m, k, n) = (37, 48, 50); // m*k*n > PAR_MIN_FLOPS, m not divisible
        assert!(m * k * n >= PAR_MIN_FLOPS);
        let a = seq(m * k);
        let b = seq(k * n);
        let a_km = seq(k * m);
        let b_nk = seq(n * k);
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c1 = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c1);
            let mut c2 = vec![0.5; m * n];
            sgemm_at_b_acc(m, k, n, &a_km, &b, &mut c2);
            let mut c3 = vec![0.5; m * n];
            sgemm_a_bt_acc(m, k, n, &a, &b_nk, &mut c3);
            (c1, c2, c3)
        };
        let serial = run(1);
        for t in [2, 3, 8] {
            assert_eq!(run(t), serial, "threads={t}");
        }
        set_num_threads(1);
    }

    /// Same bit-exactness property for the reference kernel dispatch.
    #[test]
    fn parallel_reference_bit_exact_across_thread_counts() {
        let (m, k, n) = (37, 48, 50);
        let a = seq(m * k);
        let b = seq(k * n);
        set_kernel(KernelKind::Reference);
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c = vec![0.5; m * n];
            sgemm_acc(m, k, n, &a, &b, &mut c);
            c
        };
        let serial = run(1);
        for t in [2, 4] {
            assert_eq!(run(t), serial, "threads={t}");
        }
        set_num_threads(1);
        set_kernel(KernelKind::Packed);
    }
}
