//! Small blocked SGEMM kernels.
//!
//! These are deliberately dependency-free: a register-blocked `ikj` loop
//! order that LLVM auto-vectorizes well at the sizes YOSO uses (im2col
//! panels of a few hundred rows/columns).

/// Computes `c += a * b` for row-major matrices:
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths do not match the given
/// dimensions.
pub fn sgemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Block over k to keep the b panel in cache for consecutive rows of a.
    const KB: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aik * bv;
                }
            }
        }
        k0 = k1;
    }
}

/// Computes `c = a * b` (overwriting `c`).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for v in c.iter_mut() {
        *v = 0.0;
    }
    sgemm_acc(m, k, n, a, b, c);
}

/// Computes `c += a^T * b` where `a` is `k x m` (so `a^T` is `m x k`),
/// `b` is `k x n`, `c` is `m x n`.
pub fn sgemm_at_b_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for i in 0..m {
            let aik = arow[i];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aik * bv;
            }
        }
    }
}

/// Computes `c += a * b^T` where `a` is `m x k`, `b` is `n x k`
/// (so `b^T` is `k x n`), `c` is `m x n`.
pub fn sgemm_a_bt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (av, bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            crow[j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (17, 65, 9), (8, 128, 8)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            assert_eq!(c, naive(m, k, n, &a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn sgemm_acc_accumulates() {
        let a = seq(6);
        let b = seq(6);
        let mut c = vec![1.0; 4];
        sgemm_acc(2, 3, 2, &a, &b, &mut c);
        let expected: Vec<f32> = naive(2, 3, 2, &a, &b).iter().map(|v| v + 1.0).collect();
        assert_eq!(c, expected);
    }

    #[test]
    fn at_b_matches_naive_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = seq(k * m); // k x m
        let b = seq(k * n);
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_at_b_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &at, &b));
    }

    #[test]
    fn a_bt_matches_naive_transpose() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let b = seq(n * k); // n x k
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_a_bt_acc(m, k, n, &a, &b, &mut c1);
        assert_eq!(c1, naive(m, k, n, &a, &bt));
    }
}
