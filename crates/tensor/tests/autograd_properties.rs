//! Property-based tests of the autograd engine: analytic gradients match
//! finite differences on randomized shapes and data, and algebraic
//! identities hold.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_tensor::{ConvGeom, Graph, ParamStore, Tensor};

/// Builds the scalar loss sum(relu(conv(x, w))) and returns it.
fn conv_relu_loss(
    store: &ParamStore,
    w: yoso_tensor::ParamId,
    x_data: &Tensor,
    geom: ConvGeom,
) -> (Graph, yoso_tensor::Var) {
    let mut g = Graph::new();
    let x = g.input(x_data.clone());
    let wv = g.param(store, w);
    let c = g.conv2d(x, wv, geom);
    let r = g.relu(c);
    let p = g.global_avg_pool(r);
    let ones = g.input(Tensor::ones(&[g.value(p).shape()[1], 1]));
    let s = g.matmul(p, ones);
    (g, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Finite-difference gradient check for conv+relu+pool chains on
    /// random shapes, seeds and strides.
    #[test]
    fn conv_chain_gradcheck(
        seed in 0u64..1000,
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 4usize..7,
        stride in 1usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w = store.add(Tensor::randn(&[cout, cin, 3, 3], 0.5, &mut rng));
        let x = Tensor::randn(&[1, cin, hw, hw], 1.0, &mut rng);
        let geom = ConvGeom::same(3, stride);

        let (g, loss) = conv_relu_loss(&store, w, &x, geom);
        store.zero_grads();
        g.backward(loss, &mut store);
        let analytic = store.grad(w).clone();

        let eps = 1e-2f32;
        // Probe three indices.
        for idx in [0, analytic.len() / 2, analytic.len() - 1] {
            let orig = store.value(w).data()[idx];
            store.value_mut(w).data_mut()[idx] = orig + eps;
            let (g1, l1) = conv_relu_loss(&store, w, &x, geom);
            let f1 = g1.value(l1).data()[0];
            store.value_mut(w).data_mut()[idx] = orig - eps;
            let (g2, l2) = conv_relu_loss(&store, w, &x, geom);
            let f2 = g2.value(l2).data()[0];
            store.value_mut(w).data_mut()[idx] = orig;
            let num = (f1 - f2) / (2.0 * eps);
            let ana = analytic.data()[idx];
            // ReLU kinks can perturb FD slightly; tolerate 5%.
            prop_assert!(
                (num - ana).abs() <= 0.05 * (1.0 + num.abs().max(ana.abs())),
                "idx {}: fd {} vs analytic {}", idx, num, ana
            );
        }
    }

    /// Softmax cross-entropy is minimized (to ~0) by a one-hot-favoring
    /// logit and equals ln(k) for uniform logits.
    #[test]
    fn softmax_ce_bounds(k in 2usize..8, label in 0usize..8) {
        let label = label % k;
        let mut g = Graph::new();
        let uniform = g.input(Tensor::zeros(&[1, k]));
        let l_uniform = g.softmax_cross_entropy(uniform, &[label]);
        prop_assert!((g.value(l_uniform).data()[0] - (k as f32).ln()).abs() < 1e-5);

        let mut g2 = Graph::new();
        let mut data = vec![-20.0f32; k];
        data[label] = 20.0;
        let peaked = g2.input(Tensor::from_vec(&[1, k], data));
        let l_peaked = g2.softmax_cross_entropy(peaked, &[label]);
        prop_assert!(g2.value(l_peaked).data()[0] < 1e-3);
    }

    /// concat(channels) then global pool equals channel-wise pooling of
    /// the parts (linearity of pooling).
    #[test]
    fn concat_pool_consistency(seed in 0u64..500, c1 in 1usize..4, c2 in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[1, c1, 4, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[1, c2, 4, 4], 1.0, &mut rng);
        let mut g = Graph::new();
        let va = g.input(a.clone());
        let vb = g.input(b.clone());
        let cat = g.concat_channels(&[va, vb]);
        let pooled = g.global_avg_pool(cat);
        let out = g.value(pooled);
        prop_assert_eq!(out.shape(), &[1, c1 + c2]);
        // First channel of the concat equals first channel mean of `a`.
        let mean_a0: f32 = a.data()[..16].iter().sum::<f32>() / 16.0;
        prop_assert!((out.data()[0] - mean_a0).abs() < 1e-5);
        let mean_b0: f32 = b.data()[..16].iter().sum::<f32>() / 16.0;
        prop_assert!((out.data()[c1] - mean_b0).abs() < 1e-5);
    }

    /// Batch norm output has (near) zero mean and unit variance per
    /// channel when gamma=1, beta=0.
    #[test]
    fn batchnorm_normalizes(seed in 0u64..500, c in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gamma = store.add(Tensor::ones(&[c]));
        let beta = store.add(Tensor::zeros(&[c]));
        let x = Tensor::randn(&[4, c, 5, 5], 3.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x);
        let gv = g.param(&store, gamma);
        let bv = g.param(&store, beta);
        let y = g.batch_norm(xv, gv, bv);
        let out = g.value(y);
        let per = 4 * 25;
        for ch in 0..c {
            let mut vals = Vec::with_capacity(per);
            for n in 0..4 {
                let base = (n * c + ch) * 25;
                vals.extend_from_slice(&out.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / per as f32;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / per as f32;
            prop_assert!(mean.abs() < 1e-4, "mean {}", mean);
            prop_assert!((var - 1.0).abs() < 1e-2, "var {}", var);
        }
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributive(seed in 0u64..500, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, k], 1.0, &mut rng);
        let c = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut g = Graph::new();
        let (va, vb, vc) = (g.input(a), g.input(b), g.input(c));
        let sum = g.add(va, vb);
        let left = g.matmul(sum, vc);
        let ac = g.matmul(va, vc);
        let bc = g.matmul(vb, vc);
        let right = g.add(ac, bc);
        for (l, r) in g.value(left).data().iter().zip(g.value(right).data()) {
            prop_assert!((l - r).abs() < 1e-4 * (1.0 + l.abs()));
        }
    }
}
