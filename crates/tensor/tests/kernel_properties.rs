//! Property tests pinning the packed register-tiled SGEMM to the
//! reference blocked kernel: the optimized path must stay within 1e-4
//! relative tolerance on arbitrary float inputs and shapes, including
//! the transposed-operand entry points the conv backward pass uses.
//!
//! The oracle is `sgemm_reference` called directly (not via the global
//! kernel selector), so these tests never mutate process-global state
//! and cannot race with each other.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yoso_tensor::matmul::{sgemm, sgemm_a_bt_acc, sgemm_at_b_acc, sgemm_reference};

fn random_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn transpose(rows: usize, cols: usize, m: &[f32]) -> Vec<f32> {
    let mut t = vec![0.0f32; m.len()];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = m[r * cols + c];
        }
    }
    t
}

fn assert_close(got: &[f32], want: &[f32]) -> Result<(), TestCaseError> {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
            "c[{i}]: packed {g} vs reference {w}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Packed `sgemm` matches the reference kernel on shapes straddling
    /// every tile boundary (m, n around MR=8 / NR=16 multiples, k
    /// around the KC=128 depth block).
    #[test]
    fn packed_sgemm_matches_reference(
        seed in 0u64..1000,
        m in 1usize..40,
        k in 1usize..200,
        n in 1usize..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        sgemm(m, k, n, &a, &b, &mut got);
        sgemm_reference(m, k, n, &a, &b, &mut want);
        assert_close(&got, &want)?;
    }

    /// `c += a^T b` entry point (weight-gradient GEMM) against an
    /// explicit transpose fed to the reference kernel.
    #[test]
    fn packed_at_b_matches_reference(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..64,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let at = random_vec(k * m, &mut rng); // stored k x m
        let b = random_vec(k * n, &mut rng);
        let init = random_vec(m * n, &mut rng);
        let mut got = init.clone();
        sgemm_at_b_acc(m, k, n, &at, &b, &mut got);
        let a = transpose(k, m, &at);
        let mut want = vec![0.0f32; m * n];
        sgemm_reference(m, k, n, &a, &b, &mut want);
        for (w, i) in want.iter_mut().zip(&init) {
            *w += i;
        }
        assert_close(&got, &want)?;
    }

    /// `c += a b^T` entry point (input-gradient GEMM) against an
    /// explicit transpose fed to the reference kernel.
    #[test]
    fn packed_a_bt_matches_reference(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..64,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_vec(m * k, &mut rng);
        let bt = random_vec(n * k, &mut rng); // stored n x k
        let init = random_vec(m * n, &mut rng);
        let mut got = init.clone();
        sgemm_a_bt_acc(m, k, n, &a, &bt, &mut got);
        let b = transpose(n, k, &bt);
        let mut want = vec![0.0f32; m * n];
        sgemm_reference(m, k, n, &a, &b, &mut want);
        for (w, i) in want.iter_mut().zip(&init) {
            *w += i;
        }
        assert_close(&got, &want)?;
    }
}
