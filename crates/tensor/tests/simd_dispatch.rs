//! Bit-exactness contracts of the runtime-dispatched kernels: the SIMD
//! tiers and the threaded NC-panel path must be *identical* to their
//! scalar / single-threaded counterparts, not merely close, and the int8
//! quantization round-trip must respect its analytic error bound.
//!
//! These tests mutate process-global dispatch state (`set_simd_tier`,
//! `set_matmul_threads`, `set_quant_tier`), so every stateful check
//! lives in one `#[test]` body per global, restores the default on exit,
//! and tolerates the sibling property tests in this directory (they run
//! in a separate test binary and never force a tier).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Mutex;
use yoso_tensor::matmul::sgemm;
use yoso_tensor::quant::{
    dequantize, im2col_u8, im2col_u8_batch, quantize_activations, ZERO_POINT,
};
use yoso_tensor::{set_matmul_threads, set_simd_tier, ConvGeom, SimdTier};

/// Serializes the tests that force dispatch globals; cargo runs `#[test]`
/// fns of one binary on concurrent threads.
static GLOBAL_DISPATCH: Mutex<()> = Mutex::new(());

fn random_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.random_range(-1.0..1.0)).collect()
}

/// Small-integer matrices: every product and partial sum is exactly
/// representable in f32, so FMA contraction (no intermediate rounding)
/// and separate mul+add agree bit for bit and any summation *grouping*
/// is exact — differences between kernels can only come from bugs.
fn integer_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len)
        .map(|_| rng.random_range(-8i32..=8) as f32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The auto-detected SIMD tier computes bit-identical results to the
    /// forced-scalar packed kernel on exactly representable inputs,
    /// across shapes straddling the MR=8 / NR=16 / KC=128 tile edges.
    #[test]
    fn simd_tiers_bit_exact_on_integer_inputs(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..150,
        n in 1usize..40,
    ) {
        let _g = GLOBAL_DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(seed);
        let a = integer_vec(m * k, &mut rng);
        let b = integer_vec(k * n, &mut rng);
        let mut auto = vec![0.0f32; m * n];
        let mut scalar = vec![0.0f32; m * n];
        set_simd_tier(None);
        sgemm(m, k, n, &a, &b, &mut auto);
        set_simd_tier(Some(SimdTier::Scalar));
        sgemm(m, k, n, &a, &b, &mut scalar);
        set_simd_tier(None);
        for (i, (x, y)) in auto.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "c[{}]: simd {} != scalar {}", i, x, y
            );
        }
    }

    /// The quantize -> dequantize round trip stays within half a
    /// quantization step per element (round-to-nearest), and the scale
    /// is exactly `max_abs / 127`.
    #[test]
    fn quantize_round_trip_bound(
        seed in 0u64..1000,
        len in 1usize..600,
        relu in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..len).map(|_| rng.random_range(-4.0..4.0)).collect();
        let mut q = Vec::new();
        let scale = quantize_activations(&x, relu, &mut q);
        prop_assert_eq!(q.len(), x.len());
        let max_abs = x.iter().fold(0.0f32, |m, v| {
            m.max(if relu { v.max(0.0) } else { v.abs() })
        });
        if max_abs > 0.0 {
            prop_assert_eq!(scale, max_abs / 127.0);
        } else {
            prop_assert_eq!(scale, 1.0);
        }
        for (v, &qv) in x.iter().zip(&q) {
            let want = if relu { v.max(0.0) } else { *v };
            let back = dequantize(i32::from(qv) - ZERO_POINT, 1.0, scale);
            // Half a step of rounding plus one ulp of the f32 arithmetic.
            prop_assert!(
                (back - want).abs() <= 0.5 * scale + want.abs() * 1e-6,
                "x {} -> q {} -> {} (scale {})", want, qv, back, scale
            );
        }
    }

    /// The batched channel-major im2col (flat-shift fast path included)
    /// produces byte-identical columns to the per-sample reference
    /// lowering, across kernel sizes, strides and paddings.
    #[test]
    fn im2col_u8_batch_matches_per_sample(
        seed in 0u64..1000,
        n in 1usize..4,
        c in 1usize..4,
        h in 1usize..9,
        k in (0usize..3).prop_map(|i| [1usize, 3, 5][i]),
        stride in 1usize..3,
    ) {
        let w = h; // square images, like every conv in the network
        let pad = k / 2;
        let g = ConvGeom::new(k, stride, pad);
        let hout = g.out_dim(h);
        let wout = g.out_dim(w);
        prop_assume!(hout > 0 && wout > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let nchw: Vec<u8> = (0..n * c * h * w).map(|_| rng.random_range(0..=255)).collect();
        // Channel-major view for the batched entry point.
        let mut cm = vec![0u8; nchw.len()];
        for i in 0..n {
            for ch in 0..c {
                cm[(ch * n + i) * h * w..(ch * n + i + 1) * h * w]
                    .copy_from_slice(&nchw[(i * c + ch) * h * w..(i * c + ch + 1) * h * w]);
            }
        }
        let cols_n = n * hout * wout;
        let mut got = vec![0u8; c * k * k * cols_n];
        im2col_u8_batch(&cm, n, c, h, w, g, hout, wout, &mut got);
        let mut want = vec![0u8; c * k * k * cols_n];
        for i in 0..n {
            im2col_u8(
                &nchw[i * c * h * w..(i + 1) * c * h * w],
                c, h, w, g, hout, wout,
                &mut want, cols_n, i * hout * wout,
            );
        }
        prop_assert_eq!(got, want);
    }
}

/// One GEMM, every thread count: the fixed NC-panel task grid assigns
/// each output column to exactly one task regardless of worker count, so
/// results are bit-identical at 1, 2, 4 and 8 threads — on arbitrary
/// (not just exactly representable) floats.
#[test]
fn threaded_sgemm_bit_exact_across_thread_counts() {
    let _g = GLOBAL_DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(99);
    // Wide enough (n > NC = 256) to actually split into several panels.
    let (m, k, n) = (17, 130, 700);
    let a = random_vec(m * k, &mut rng);
    let b = random_vec(k * n, &mut rng);
    let mut reference = vec![0.0f32; m * n];
    set_matmul_threads(1);
    sgemm(m, k, n, &a, &b, &mut reference);
    for threads in [2usize, 4, 8] {
        let mut c = vec![0.0f32; m * n];
        set_matmul_threads(threads);
        sgemm(m, k, n, &a, &b, &mut c);
        for (i, (x, y)) in c.iter().zip(&reference).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "c[{i}] differs at {threads} threads: {x} vs {y}"
            );
        }
    }
    set_matmul_threads(0);
}
