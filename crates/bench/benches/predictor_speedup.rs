//! §III-E speedup claim: Gaussian-process prediction vs exact simulation.
//!
//! The paper reports ~2000x speedup over its Python `nn_dataflow`
//! simulator at <4% error. Our Rust analytical simulator is itself fast,
//! so the measured ratio is smaller — EXPERIMENTS.md records both numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yoso_accel::Simulator;
use yoso_arch::{DesignPoint, NetworkSkeleton};
use yoso_predictor::perf::{collect_samples, PerfPredictor};

fn bench_predictor_speedup(c: &mut Criterion) {
    let skeleton = NetworkSkeleton::paper_default();
    let exact = Simulator::exact();
    let fast = Simulator::fast();
    let train = collect_samples(&skeleton, &exact, 600, 0);
    let predictor = PerfPredictor::train(&skeleton, &train).expect("fit");
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<DesignPoint> = (0..32).map(|_| DesignPoint::random(&mut rng)).collect();
    let plans: Vec<_> = points
        .iter()
        .map(|p| skeleton.compile(&p.genotype))
        .collect();

    let mut group = c.benchmark_group("perf_oracle");
    group.bench_function("exact_simulation", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = exact.simulate_plan(&plans[i % 32], &points[i % 32].hw);
            i += 1;
            black_box(r.energy_mj)
        })
    });
    group.bench_function("fast_simulation", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = fast.simulate_plan(&plans[i % 32], &points[i % 32].hw);
            i += 1;
            black_box(r.energy_mj)
        })
    });
    group.bench_function("gp_prediction", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = predictor.predict(&points[i % 32]);
            i += 1;
            black_box(r.1)
        })
    });
    group.bench_function("gp_prediction_incl_compile", |b| {
        let mut i = 0;
        b.iter(|| {
            // End-to-end cost as seen by the search loop: compile + predict.
            let p = &points[i % 32];
            let _plan = skeleton.compile(&p.genotype);
            let r = predictor.predict(p);
            i += 1;
            black_box(r.0)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_predictor_speedup
}
criterion_main!(benches);
