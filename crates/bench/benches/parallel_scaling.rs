//! Scaling of the evaluation pipeline's parallel and memoized paths:
//! worker-pool sample collection (cold vs warm simulator cache), batched
//! vs per-point GP prediction, and the threaded SGEMM kernels.
//!
//! `cargo bench -p yoso-bench --bench parallel_scaling`. The checked-in
//! `BENCH_parallel.json` snapshot comes from the `bench_parallel` bin,
//! which measures the same paths at a larger sample count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yoso_accel::Simulator;
use yoso_arch::{DesignPoint, NetworkSkeleton};
use yoso_predictor::perf::{collect_samples, PerfPredictor};

fn bench_parallel_scaling(c: &mut Criterion) {
    let skeleton = NetworkSkeleton::paper_default();
    let exact = Simulator::exact();
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    // Worker-pool fan-out of sample collection; a fresh seed per
    // iteration keeps the simulator cache cold.
    for threads in [1usize, 0] {
        group.bench_with_input(
            BenchmarkId::new("collect_samples_cold", threads),
            &threads,
            |b, &t| {
                yoso_pool::set_num_threads(t);
                let mut seed = 1u64;
                b.iter(|| {
                    yoso_accel::cache::clear();
                    seed += 1;
                    black_box(collect_samples(&skeleton, &exact, 100, seed))
                })
            },
        );
    }
    // Same seed every iteration: every layer simulation is a cache hit.
    group.bench_function("collect_samples_warm", |b| {
        yoso_pool::set_num_threads(0);
        let _ = collect_samples(&skeleton, &exact, 100, 999);
        b.iter(|| black_box(collect_samples(&skeleton, &exact, 100, 999)))
    });
    yoso_pool::set_num_threads(0);

    // Batched vs per-point GP prediction over one rollout-sized batch.
    let train = collect_samples(&skeleton, &Simulator::fast(), 400, 0);
    let predictor = PerfPredictor::train(&skeleton, &train).expect("fit");
    let mut rng = StdRng::seed_from_u64(2);
    let points: Vec<DesignPoint> = (0..64).map(|_| DesignPoint::random(&mut rng)).collect();
    group.bench_function("gp_predict_per_point_x64", |b| {
        b.iter(|| {
            black_box(
                points
                    .iter()
                    .map(|p| predictor.predict(p))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("gp_predict_batch_x64", |b| {
        b.iter(|| black_box(predictor.predict_batch(&points)))
    });

    // Threaded SGEMM (M-dimension slabs; bit-exact at any worker count).
    let (m, k, n) = (256usize, 256usize, 256usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.25 - 1.0).collect();
    let bmat: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5 - 1.5).collect();
    let mut cbuf = vec![0.0f32; m * n];
    for threads in [1usize, 0] {
        group.bench_with_input(BenchmarkId::new("sgemm_256", threads), &threads, |b, &t| {
            yoso_tensor::set_matmul_threads(t);
            b.iter(|| {
                yoso_tensor::matmul::sgemm(m, k, n, &a, &bmat, &mut cbuf);
                black_box(cbuf[0])
            })
        });
    }
    yoso_tensor::set_matmul_threads(1);
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
