//! Compute-kernel microbenchmarks: packed vs reference SGEMM on real
//! im2col panel shapes, conv2d forward/backward layers, and GP
//! fit/append/predict at search-realistic training-set sizes.
//!
//! The checked-in speedup snapshot comes from the `bench_kernels` binary
//! (`BENCH_kernels.json`); this harness is for profiling regressions on
//! individual kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use yoso_predictor::{GaussianProcess, Regressor};
use yoso_tensor::conv::{conv2d_backward_scratch, conv2d_forward_scratch};
use yoso_tensor::matmul::sgemm;
use yoso_tensor::{set_kernel, ConvGeom, KernelKind, Scratch, Tensor};

/// im2col panel shapes from a HyperNet training step on the paper
/// skeleton: `cout x (cin*k*k) x (hout*wout)` per sample.
const GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("cell_conv3x3_16c", 16, 144, 256),
    ("reduction_conv3x3_32c", 32, 288, 64),
    ("wide_conv3x3_64c", 64, 576, 64),
];

fn bench_gemm(c: &mut Criterion) {
    yoso_tensor::set_matmul_threads(1);
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("gemm");
    for &(name, m, k, n) in GEMM_SHAPES {
        let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut out = vec![0.0f32; m * n];
        for kind in [KernelKind::Packed, KernelKind::Reference] {
            let label = match kind {
                KernelKind::Packed => format!("{name}/packed"),
                KernelKind::Reference => format!("{name}/reference"),
            };
            group.bench_function(&label, |bch| {
                set_kernel(kind);
                bch.iter(|| {
                    sgemm(m, k, n, &a, &b, &mut out);
                    black_box(&out);
                })
            });
        }
    }
    set_kernel(KernelKind::Packed);
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    yoso_tensor::set_matmul_threads(1);
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[8, 16, 16, 16], 1.0, &mut rng);
    let w = Tensor::he_normal(&[16, 16, 3, 3], 16 * 9, &mut rng);
    let geom = ConvGeom::same(3, 1);
    let dout = Tensor::randn(&[8, 16, 16, 16], 1.0, &mut rng);
    let mut group = c.benchmark_group("conv2d");
    group.bench_function("forward_scratch", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            let (y, cols) = conv2d_forward_scratch(&x, &w, geom, false, &mut scratch);
            scratch.give(cols);
            black_box(y)
        })
    });
    group.bench_function("forward_backward_scratch", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            let (y, cols) = conv2d_forward_scratch(&x, &w, geom, false, &mut scratch);
            let (dx, dw) = conv2d_backward_scratch(&x, &w, geom, &cols, &dout, &mut scratch);
            scratch.give(cols);
            black_box((y, dx, dw))
        })
    });
    group.finish();
}

fn gp_data(n: usize, dims: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| v.sin()).sum::<f64>())
        .collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let (xs, ys) = gp_data(n, 16, 2);
        group.bench_function(format!("fit/n{n}"), |b| {
            b.iter(|| {
                let mut gp = GaussianProcess::with_hyperparams(2.0, 1e-2).with_max_train(n);
                gp.fit(&xs, &ys).expect("fit");
                black_box(gp.train_len())
            })
        });
        // One chunk-of-50 append onto an (n-50)-point factor.
        let mut base = GaussianProcess::with_hyperparams(2.0, 1e-2).with_max_train(n);
        base.fit(&xs[..n - 50], &ys[..n - 50]).expect("fit");
        group.bench_function(format!("append50/n{n}"), |b| {
            b.iter(|| {
                let mut gp = base.clone();
                gp.append(&xs[n - 50..], &ys[n - 50..]).expect("append");
                black_box(gp.train_len())
            })
        });
        let mut fitted = GaussianProcess::with_hyperparams(2.0, 1e-2).with_max_train(n);
        fitted.fit(&xs, &ys).expect("fit");
        let (queries, _) = gp_data(64, 16, 3);
        group.bench_function(format!("predict_batch64/n{n}"), |b| {
            b.iter(|| black_box(fitted.predict_batch(&queries)))
        });
        group.bench_function(format!("predict_batch64_variance/n{n}"), |b| {
            b.iter(|| black_box(fitted.predict_batch_with_variance(&queries)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gemm, bench_conv, bench_gp
}
criterion_main!(benches);
