//! RL controller throughput: rollout sampling and REINFORCE updates over
//! the 44-step YOSO action space (LSTM-120, as in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yoso_arch::ActionSpace;
use yoso_controller::{Controller, ControllerConfig, Rollout};

fn bench_controller(c: &mut Criterion) {
    let space = ActionSpace::new();
    let cfg = ControllerConfig::paper_default(space.vocab_sizes().to_vec());
    let controller = Controller::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(0);

    c.bench_function("controller_sample", |b| {
        b.iter(|| black_box(controller.sample(&mut rng).actions[0]))
    });

    c.bench_function("controller_update_batch8", |b| {
        let mut ctrl = Controller::new(cfg.clone());
        b.iter(|| {
            let batch: Vec<(Rollout, f64)> = (0..8)
                .map(|i| {
                    let r = ctrl.sample(&mut rng);
                    let reward = (i as f64) / 8.0;
                    (r, reward)
                })
                .collect();
            black_box(ctrl.update(&batch).mean_reward)
        })
    });

    c.bench_function("decode_actions", |b| {
        let rollout = controller.sample(&mut rng);
        b.iter(|| black_box(space.decode(&rollout.actions).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_controller
}
criterion_main!(benches);
