//! Simulator throughput per dataflow and fidelity: quantifies the cost of
//! the exhaustive tiling search (Exact) vs the greedy heuristic (Fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yoso_accel::Simulator;
use yoso_arch::{Dataflow, Genotype, HwConfig, NetworkSkeleton, PeArray};

fn bench_simulator(c: &mut Criterion) {
    let skeleton = NetworkSkeleton::paper_default();
    let mut rng = StdRng::seed_from_u64(0);
    let plan = skeleton.compile(&Genotype::random(&mut rng));

    let mut group = c.benchmark_group("simulate_network");
    for df in Dataflow::ALL {
        let hw = HwConfig {
            pe: PeArray { rows: 16, cols: 16 },
            gbuf_kb: 256,
            rbuf_bytes: 256,
            dataflow: df,
        };
        group.bench_with_input(BenchmarkId::new("exact", df.to_string()), &hw, |b, hw| {
            let sim = Simulator::exact();
            b.iter(|| black_box(sim.simulate_plan(&plan, hw).energy_mj))
        });
        group.bench_with_input(BenchmarkId::new("fast", df.to_string()), &hw, |b, hw| {
            let sim = Simulator::fast();
            b.iter(|| black_box(sim.simulate_plan(&plan, hw).energy_mj))
        });
    }
    group.finish();

    // Genotype compilation cost (plan building + shape inference).
    c.bench_function("compile_genotype", |b| {
        let g = Genotype::random(&mut rng);
        b.iter(|| black_box(skeleton.compile(&g).stats.total_macs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_simulator
}
criterion_main!(benches);
